// Reproduces Figure 7: scalability of the three join algorithms with the
// dataset size — now recorded as BENCH_fig07.json runs (variant = filter
// method, num_records = dataset size) alongside the printed table.
//
// Expected shape (paper): all grow roughly linearly (not quadratically);
// AU-DP scales best, U-Filter worst.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "harness.h"
#include "join/join.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  auto sizes = flags.GetIntList("sizes", {300, 600, 900, 1200});
  double theta = flags.GetDouble("theta", 0.90);
  int tau = static_cast<int>(flags.GetInt("tau", 3));
  std::string out = flags.GetString("out", "BENCH_fig07.json");

  PrintBanner("E7 scalability", "Figure 7",
              "join time grows near-linearly; AU-DP < AU-heuristic < "
              "U-Filter");
  std::printf("theta=%.2f tau=%d\n", theta, tau);
  std::printf("%-8s | %12s %14s %12s\n", "size", "U-Filter",
              "AU-heuristic", "AU-DP");

  // Multi-size sweep: the top-level num_records stays 0; each run
  // carries its own corpus size.
  BenchReport report;
  report.name = "fig07";
  report.profile = "med";

  constexpr struct {
    FilterMethod method;
    const char* label;
  } kMethods[] = {
      {FilterMethod::kUFilter, "U-Filter"},
      {FilterMethod::kAuHeuristic, "AU-heuristic"},
      {FilterMethod::kAuDp, "AU-DP"},
  };

  for (int64_t size : sizes) {
    auto world = BuildWorld("med", static_cast<size_t>(size), size / 10);
    JoinContext context(world->knowledge(), MsimOptions{.q = 3});
    context.Prepare(world->corpus.records, nullptr);
    std::printf("%-8lld |", static_cast<long long>(size));
    for (const auto& entry : kMethods) {
      JoinOptions options;
      options.theta = theta;
      options.tau = entry.method == FilterMethod::kUFilter ? 1 : tau;
      options.method = entry.method;
      WallTimer timer;
      JoinResult result = UnifiedJoin(context, options);
      double seconds = timer.Seconds();
      double w = entry.method == FilterMethod::kAuHeuristic ? 14 : 12;
      std::printf(" %*.3f", static_cast<int>(w), seconds);

      BenchRun run;
      run.algorithm = "unified";
      run.variant = entry.label;
      run.measures = "TJS";
      run.theta = theta;
      run.tau = options.tau;
      run.threads = 1;
      run.num_records = world->corpus.records.size();
      run.ok = true;
      run.stats = result.stats;
      run.total_seconds = seconds;
      run.wall_seconds = seconds;
      run.peak_rss_bytes = CurrentPeakRssBytes();
      report.runs.push_back(std::move(run));
    }
    std::printf("\n");
  }
  if (!report.WriteJsonFile(out)) {
    std::fprintf(stderr, "FAILED to write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s (%zu runs)\n", out.c_str(), report.runs.size());
  return 0;
}
