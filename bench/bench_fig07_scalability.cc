// Reproduces Figure 7: scalability of the three join algorithms with the
// dataset size.
//
// Expected shape (paper): all grow roughly linearly (not quadratically);
// AU-DP scales best, U-Filter worst.

#include <cstdio>

#include "bench_common.h"
#include "join/join.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  auto sizes = flags.GetIntList("sizes", {300, 600, 900, 1200});
  double theta = flags.GetDouble("theta", 0.90);
  int tau = static_cast<int>(flags.GetInt("tau", 3));

  PrintBanner("E7 scalability", "Figure 7",
              "join time grows near-linearly; AU-DP < AU-heuristic < "
              "U-Filter");
  std::printf("theta=%.2f tau=%d\n", theta, tau);
  std::printf("%-8s | %12s %14s %12s\n", "size", "U-Filter",
              "AU-heuristic", "AU-DP");
  for (int64_t size : sizes) {
    auto world = BuildWorld("med", static_cast<size_t>(size), size / 10);
    JoinContext context(world->knowledge(), MsimOptions{.q = 3});
    context.Prepare(world->corpus.records, nullptr);
    std::printf("%-8lld |", static_cast<long long>(size));
    for (FilterMethod method :
         {FilterMethod::kUFilter, FilterMethod::kAuHeuristic,
          FilterMethod::kAuDp}) {
      JoinOptions options;
      options.theta = theta;
      options.tau = method == FilterMethod::kUFilter ? 1 : tau;
      options.method = method;
      WallTimer timer;
      UnifiedJoin(context, options);
      double w = method == FilterMethod::kAuHeuristic ? 14 : 12;
      std::printf(" %*.3f", static_cast<int>(w), timer.Seconds());
    }
    std::printf("\n");
  }
  return 0;
}
