// Reproduces Table 13: join effectiveness (P/R/F against labelled ground
// truth) of K-Join, AdaptJoin, PKduck, their Combination, and our unified
// join (TJS) — every method driven through the Engine facade by a loop
// over the algorithm registry, so newly registered algorithms show up in
// the table automatically.
//
// Expected shape (paper): each baseline captures only one similarity type
// (low recall); Combination improves recall but still loses to Ours,
// which can mix measures inside a single pair.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"

namespace aujoin {
namespace {

// The paper's row order; algorithms registered by extensions sort last.
int PaperRank(const std::string& name) {
  if (name == "kjoin") return 0;
  if (name == "adaptjoin") return 1;
  if (name == "pkduck") return 2;
  if (name == "combination") return 3;
  if (name == "unified") return 4;
  return 5;
}

const char* PaperLabel(const std::string& name) {
  if (name == "kjoin") return "K-Join";
  if (name == "adaptjoin") return "AdaptJoin";
  if (name == "pkduck") return "PKduck";
  if (name == "combination") return "Combination";
  if (name == "unified") return "Ours(TJS)";
  return name.c_str();
}

void PrintRow(const char* name, const PrfScore& score) {
  std::printf("%-12s | %6.2f %6.2f %6.2f\n", name, score.precision,
              score.recall, score.f_measure);
}

void RunDataset(const std::string& dataset, size_t n, size_t pairs,
                double theta) {
  auto world = BuildWorld(dataset, n, pairs);
  const auto& records = world->corpus.records;
  const auto& truth = world->corpus.truth_pairs;

  std::printf("\n[%s-like] strings=%zu theta=%.2f\n", dataset.c_str(),
              records.size(), theta);
  std::printf("%-12s | %6s %6s %6s\n", "method", "P", "R", "F");

  Engine engine = EngineBuilder()
                      .SetKnowledge(world->knowledge())
                      .SetMeasures("TJS")
                      .SetQ(3)
                      .SetThreads(0)  // quality-only bench: use all cores
                      .Build();
  engine.SetRecords(records);

  // Each algorithm runs independently, which re-executes the three
  // single-measure baselines inside "combination" — the price of rows
  // being uniform registry entries; acceptable for a quality-only bench.
  std::vector<std::string> names = AlgorithmRegistry::Global().Names();
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              int ra = PaperRank(a), rb = PaperRank(b);
              return ra != rb ? ra < rb : a < b;
            });
  for (const std::string& name : names) {
    EngineJoinOptions options;
    options.theta = theta;
    options.tau = 2;
    options.method = FilterMethod::kAuDp;
    Result<JoinResult> result = engine.Join(name, options);
    if (!result.ok()) {
      std::printf("%-12s | error: %s\n", PaperLabel(name),
                  result.status().ToString().c_str());
      continue;
    }
    PrintRow(PaperLabel(name), ComputePrf(result->pairs, truth));
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 120));
  auto thetas = flags.GetDoubleList("theta", {0.70, 0.75});
  aujoin::PrintBanner("E12 effectiveness vs baselines", "Table 13",
                      "baselines low recall; Combination better; Ours(TJS) "
                      "best F");
  for (double theta : thetas) {
    aujoin::RunDataset("med", n, pairs, theta);
    aujoin::RunDataset("wiki", n, pairs, theta);
  }
  return 0;
}
