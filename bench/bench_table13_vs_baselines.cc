// Reproduces Table 13: join effectiveness (P/R/F against labelled ground
// truth) of K-Join, AdaptJoin, PKduck, their Combination, and our unified
// join (TJS) — every method driven through the benchmark harness by a
// grid over the algorithm registry, so newly registered algorithms show
// up in the table (and in BENCH_table13.json) automatically.
//
// Expected shape (paper): each baseline captures only one similarity type
// (low recall); Combination improves recall but still loses to Ours,
// which can mix measures inside a single pair.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness.h"

namespace aujoin {
namespace {

// The paper's row order; algorithms registered by extensions sort last.
int PaperRank(const std::string& name) {
  if (name == "kjoin") return 0;
  if (name == "adaptjoin") return 1;
  if (name == "pkduck") return 2;
  if (name == "combination") return 3;
  if (name == "unified") return 4;
  return 5;
}

const char* PaperLabel(const std::string& name) {
  if (name == "kjoin") return "K-Join";
  if (name == "adaptjoin") return "AdaptJoin";
  if (name == "pkduck") return "PKduck";
  if (name == "combination") return "Combination";
  if (name == "unified") return "Ours(TJS)";
  return name.c_str();
}

void RunDataset(const std::string& dataset, size_t n, size_t pairs,
                double theta, BenchReport* report) {
  auto world = BuildWorld(dataset, n, pairs);
  const auto& records = world->corpus.records;
  const auto& truth = world->corpus.truth_pairs;

  std::printf("\n[%s-like] strings=%zu theta=%.2f\n", dataset.c_str(),
              records.size(), theta);
  std::printf("%-12s | %6s %6s %6s\n", "method", "P", "R", "F");

  // Each algorithm runs independently, which re-executes the three
  // single-measure baselines inside "combination" — the price of rows
  // being uniform registry entries; acceptable for a quality-only bench.
  BenchGrid grid;
  grid.thetas = {theta};
  grid.taus = {2};
  grid.threads = {0};  // quality-only bench: use all cores
  grid.measures = "TJS";
  grid.q = 3;
  BenchHarness harness(world->knowledge(), &records);
  std::vector<BenchRun> runs = harness.RunGrid(grid, &truth);
  std::sort(runs.begin(), runs.end(),
            [](const BenchRun& a, const BenchRun& b) {
              int ra = PaperRank(a.algorithm), rb = PaperRank(b.algorithm);
              return ra != rb ? ra < rb : a.algorithm < b.algorithm;
            });
  for (BenchRun& run : runs) {
    if (!run.ok) {
      std::printf("%-12s | error: %s\n", PaperLabel(run.algorithm),
                  run.error.c_str());
    } else {
      std::printf("%-12s | %6.2f %6.2f %6.2f\n", PaperLabel(run.algorithm),
                  run.prf.precision, run.prf.recall, run.prf.f_measure);
    }
    run.variant = dataset;
    report->runs.push_back(std::move(run));
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 120));
  auto thetas = flags.GetDoubleList("theta", {0.70, 0.75});
  std::string out = flags.GetString("out", "BENCH_table13.json");
  aujoin::PrintBanner("E12 effectiveness vs baselines", "Table 13",
                      "baselines low recall; Combination better; Ours(TJS) "
                      "best F");
  aujoin::BenchReport report;
  report.name = "table13";
  report.profile = "med+wiki";
  report.num_records = n + pairs;
  report.num_truth_pairs = pairs;
  for (double theta : thetas) {
    aujoin::RunDataset("med", n, pairs, theta, &report);
    aujoin::RunDataset("wiki", n, pairs, theta, &report);
  }
  if (!report.WriteJsonFile(out)) {
    std::fprintf(stderr, "FAILED to write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s (%zu runs)\n", out.c_str(), report.runs.size());
  return 0;
}
