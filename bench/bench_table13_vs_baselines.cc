// Reproduces Table 13: join effectiveness (P/R/F against labelled ground
// truth) of K-Join, AdaptJoin, PKduck, their Combination, and our unified
// join (TJS).
//
// Expected shape (paper): each baseline captures only one similarity type
// (low recall); Combination improves recall but still loses to Ours,
// which can mix measures inside a single pair.

#include <cstdio>

#include "baselines/combination.h"
#include "bench_common.h"
#include "join/join.h"

namespace aujoin {
namespace {

void PrintRow(const char* name, const PrfScore& score) {
  std::printf("%-12s | %6.2f %6.2f %6.2f\n", name, score.precision,
              score.recall, score.f_measure);
}

void RunDataset(const std::string& dataset, size_t n, size_t pairs,
                double theta) {
  auto world = BuildWorld(dataset, n, pairs);
  const auto& records = world->corpus.records;
  const auto& truth = world->corpus.truth_pairs;
  Knowledge knowledge = world->knowledge();

  std::printf("\n[%s-like] strings=%zu theta=%.2f\n", dataset.c_str(),
              records.size(), theta);
  std::printf("%-12s | %6s %6s %6s\n", "method", "P", "R", "F");

  KJoin kjoin(knowledge, {.theta = theta});
  BaselineResult k = kjoin.SelfJoin(records);
  PrintRow("K-Join", ComputePrf(k.pairs, truth));

  AdaptJoin adaptjoin({.theta = theta});
  BaselineResult a = adaptjoin.SelfJoin(records);
  PrintRow("AdaptJoin", ComputePrf(a.pairs, truth));

  PkduckJoin pkduck(knowledge, {.theta = theta});
  BaselineResult p = pkduck.SelfJoin(records);
  PrintRow("PKduck", ComputePrf(p.pairs, truth));

  BaselineResult combo;
  combo.pairs = UnionPairs({&k.pairs, &a.pairs, &p.pairs});
  PrintRow("Combination", ComputePrf(combo.pairs, truth));

  JoinContext context(knowledge, MsimOptions{.q = 3});
  context.Prepare(records, nullptr);
  JoinOptions options;
  options.theta = theta;
  options.tau = 2;
  options.method = FilterMethod::kAuDp;
  options.num_threads = 0;  // quality-only bench: use all cores
  JoinResult ours = UnifiedJoin(context, options);
  PrintRow("Ours(TJS)", ComputePrf(ours.pairs, truth));
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 120));
  auto thetas = flags.GetDoubleList("theta", {0.70, 0.75});
  aujoin::PrintBanner("E12 effectiveness vs baselines", "Table 13",
                      "baselines low recall; Combination better; Ours(TJS) "
                      "best F");
  for (double theta : thetas) {
    aujoin::RunDataset("med", n, pairs, theta);
    aujoin::RunDataset("wiki", n, pairs, theta);
  }
  return 0;
}
