// Reproduces Table 14: join time of our algorithm vs the specialised
// baselines, grouped so each comparison uses the same single measure
// (K-Join vs Ours(T); AdaptJoin vs Ours(J); PKduck vs Ours(S);
// Combination vs Ours(TJS)). Both sides of every group run through the
// benchmark harness: the baseline by its registry name, ours as
// "unified" with the group's measure selection — and every cell lands in
// BENCH_table14.json for trend tracking.
//
// Times are JoinStats::TotalSeconds(include_prepare = true), so our
// pebble preparation is charged the same way the baselines' own index
// construction is (it used to be silently dropped).
//
// Expected shape (paper): Ours is competitive with or faster than each
// specialised baseline in most settings.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness.h"

namespace aujoin {
namespace {

// One Table-14 comparison group: a registry baseline and the measure
// combination that makes "unified" its apples-to-apples counterpart.
struct Group {
  const char* baseline;        // registry name
  const char* baseline_label;  // paper row label
  const char* measures;        // Ours(X) measure string
};

constexpr Group kGroups[] = {
    {"kjoin", "K-Join", "T"},
    {"adaptjoin", "AdaptJoin", "J"},
    {"pkduck", "PKduck", "S"},
    {"combination", "Combination", "TJS"},
};

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.85, 0.95});
  std::string out = flags.GetString("out", "BENCH_table14.json");

  PrintBanner("E13 join time vs baselines (seconds)", "Table 14",
              "Ours(X) competitive with the X-specialised baseline in each "
              "group");
  auto world = BuildWorld("med", n, n / 10);
  const auto& records = world->corpus.records;
  BenchHarness harness(world->knowledge(), &records);

  BenchReport report;
  report.name = "table14";
  report.profile = "med";
  report.num_records = records.size();
  report.num_truth_pairs = world->corpus.truth_pairs.size();

  std::printf("%-14s", "method");
  for (double theta : thetas) std::printf(" %9.2f", theta);
  std::printf("\n");

  // Each row is one harness grid: one registry algorithm across the
  // theta sweep with the group's measure selection.
  auto row = [&](const char* label, const std::string& algorithm,
                 const char* measures) {
    BenchGrid grid;
    grid.algorithms = {algorithm};
    grid.thetas = thetas;
    grid.taus = {2};
    grid.threads = {1};
    grid.measures = measures;
    grid.q = 3;
    std::vector<BenchRun> runs = harness.RunGrid(grid);
    std::printf("%-14s", label);
    for (BenchRun& run : runs) {
      if (!run.ok) {
        std::printf(" %9s", "err");
      } else {
        std::printf(" %9.3f", run.total_seconds);
      }
      run.variant = label;
      report.runs.push_back(std::move(run));
    }
    std::printf("\n");
  };

  for (const Group& group : kGroups) {
    row(group.baseline_label, group.baseline, group.measures);
    std::string ours_label = std::string("Ours(") + group.measures + ")";
    row(ours_label.c_str(), "unified", group.measures);
  }
  if (!report.WriteJsonFile(out)) {
    std::fprintf(stderr, "FAILED to write %s\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s (%zu runs)\n", out.c_str(), report.runs.size());
  return 0;
}
