// Reproduces Table 14: join time of our algorithm vs the specialised
// baselines, grouped so each comparison uses the same single measure
// (K-Join vs Ours(T); AdaptJoin vs Ours(J); PKduck vs Ours(S);
// Combination vs Ours(TJS)).
//
// Expected shape (paper): Ours is competitive with or faster than each
// specialised baseline in most settings.

#include <cstdio>

#include "baselines/combination.h"
#include "bench_common.h"
#include "join/join.h"
#include "util/timer.h"

namespace aujoin {
namespace {

double OursTime(const Knowledge& knowledge,
                const std::vector<Record>& records, const char* measures,
                double theta) {
  MsimOptions msim;
  msim.q = 3;
  msim.measures = ParseMeasures(measures);
  JoinContext context(knowledge, msim);
  context.Prepare(records, nullptr);
  JoinOptions options;
  options.theta = theta;
  options.tau = 2;
  options.method = FilterMethod::kAuDp;
  WallTimer timer;
  UnifiedJoin(context, options);
  return timer.Seconds();
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.85, 0.95});

  PrintBanner("E13 join time vs baselines (seconds)", "Table 14",
              "Ours(X) competitive with the X-specialised baseline in each "
              "group");
  auto world = BuildWorld("med", n, n / 10);
  const auto& records = world->corpus.records;
  Knowledge knowledge = world->knowledge();

  std::printf("%-14s", "method");
  for (double theta : thetas) std::printf(" %9.2f", theta);
  std::printf("\n");

  auto row = [&](const char* name, auto&& fn) {
    std::printf("%-14s", name);
    for (double theta : thetas) std::printf(" %9.3f", fn(theta));
    std::printf("\n");
  };

  row("K-Join", [&](double theta) {
    KJoin j(knowledge, {.theta = theta});
    WallTimer t;
    j.SelfJoin(records);
    return t.Seconds();
  });
  row("Ours(T)", [&](double theta) {
    return OursTime(knowledge, records, "T", theta);
  });
  row("AdaptJoin", [&](double theta) {
    AdaptJoin j({.theta = theta});
    WallTimer t;
    j.SelfJoin(records);
    return t.Seconds();
  });
  row("Ours(J)", [&](double theta) {
    return OursTime(knowledge, records, "J", theta);
  });
  row("PKduck", [&](double theta) {
    PkduckJoin j(knowledge, {.theta = theta});
    WallTimer t;
    j.SelfJoin(records);
    return t.Seconds();
  });
  row("Ours(S)", [&](double theta) {
    return OursTime(knowledge, records, "S", theta);
  });
  row("Combination", [&](double theta) {
    CombinationOptions o;
    o.kjoin.theta = theta;
    o.adaptjoin.theta = theta;
    o.pkduck.theta = theta;
    WallTimer t;
    CombinationJoin(knowledge, records, o);
    return t.Seconds();
  });
  row("Ours(TJS)", [&](double theta) {
    return OursTime(knowledge, records, "TJS", theta);
  });
  return 0;
}
