// Reproduces Table 8: precision / recall / F-measure of the unified join
// under every measure combination (J, T, S, TJ, TS, JS, TJS) on MED-like
// and WIKI-like corpora at theta in {0.70, 0.75}.
//
// Expected shape (paper): single measures have low recall; pairs of
// measures improve F; TJS achieves the best F-measure on both datasets.

#include <cstdio>

#include "bench_common.h"
#include "join/join.h"

namespace aujoin {
namespace {

void RunDataset(const std::string& dataset, size_t num_strings,
                size_t num_pairs, const std::vector<double>& thetas) {
  auto world = BuildWorld(dataset, num_strings, num_pairs);
  const char* combos[] = {"J", "T", "S", "TJ", "TS", "JS", "TJS"};

  std::printf("\n[%s-like] strings=%zu truth_pairs=%zu\n", dataset.c_str(),
              world->corpus.records.size(), world->corpus.truth_pairs.size());
  std::printf("%-8s", "measure");
  for (double theta : thetas) {
    std::printf("  | theta=%.2f: P      R      F   ", theta);
  }
  std::printf("\n");

  for (const char* combo : combos) {
    MsimOptions msim;
    msim.q = 3;
    msim.measures = ParseMeasures(combo);
    JoinContext context(world->knowledge(), msim);
    context.Prepare(world->corpus.records, nullptr);
    std::printf("%-8s", combo);
    for (double theta : thetas) {
      JoinOptions options;
      options.theta = theta;
      options.tau = 2;
      options.method = FilterMethod::kAuDp;
      options.num_threads = 0;  // quality-only bench: use all cores
      JoinResult result = UnifiedJoin(context, options);
      PrfScore score = ComputePrf(result.pairs, world->corpus.truth_pairs);
      std::printf("  |             %.2f   %.2f   %.2f", score.precision,
                  score.recall, score.f_measure);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 700));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 150));
  auto thetas = flags.GetDoubleList("theta", {0.70, 0.75});
  aujoin::PrintBanner("E1 effectiveness by measure combination", "Table 8",
                      "TJS best F on both datasets; single measures low "
                      "recall; MED favours JS, WIKI favours TJ");
  aujoin::RunDataset("med", n, pairs, thetas);
  aujoin::RunDataset("wiki", n, pairs, thetas);
  return 0;
}
