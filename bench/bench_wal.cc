// Write-ahead-log bench: durable-append throughput and crash-recovery
// replay cost for the staged-append path (storage/wal_*.h). Two phases:
//
//   append    — GenerationalIndex over the corpus minus a --append_pct
//               tail, with a WAL attached: every AppendDurable logs one
//               checksummed record and fsyncs before acknowledging
//               (records/sec is the price of the durability contract)
//   recover   — replay the log --repeat times: read + checksum-verify
//               every record, re-tokenise its text, and stage it on a
//               fresh index over the base (the cold-start after a crash)
//
// The recovered index must answer a full query sweep identically to a
// from-scratch build over the union corpus, and replay must recover
// EXACTLY the appended records — the bench exits non-zero otherwise,
// so it doubles as an end-to-end recovery parity check. The report
// lands in BENCH_<name>.json with the wal_* fields documented in
// docs/bench-schema.md.
//
// Typical invocation:
//   bench_wal --name=wal --profile=med --strings=300 --theta=0.7 \
//     --append_pct=20 --repeat=5

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "index/prepared_index.h"
#include "join/search.h"
#include "storage/env.h"
#include "storage/generational_index.h"
#include "storage/wal_format.h"
#include "storage/wal_reader.h"
#include "storage/wal_writer.h"
#include "util/timer.h"

namespace aujoin {
namespace {

std::vector<std::vector<GenerationalIndex::Match>> Sweep(
    const GenerationalIndex& index, const std::vector<Record>& queries,
    double theta, int tau) {
  GenerationalIndex::SearchOptions options;
  options.theta = theta;
  options.tau = tau;
  std::vector<std::vector<GenerationalIndex::Match>> out;
  out.reserve(queries.size());
  for (const Record& q : queries) out.push_back(index.Search(q, options));
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "wal");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 300));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 1));
  int repeat = static_cast<int>(flags.GetInt("repeat", 5));
  int append_pct = static_cast<int>(flags.GetInt("append_pct", 20));
  double min_append_rps = flags.GetDouble("min_append_rps", 0.0);
  std::string wal_path = flags.GetString("wal_path", "bench_wal.wal");
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("write-ahead-log bench", "staged-append durability",
              "fsync-per-append throughput and crash-recovery replay");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d "
              "append_pct=%d repeat=%d\n",
              profile.c_str(), strings, theta, tau, append_pct, repeat);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;
  const Knowledge knowledge = world->knowledge();
  const MsimOptions msim{.q = 3};
  Env* env = Env::Default();

  size_t tail = records.size() * static_cast<size_t>(append_pct) / 100;
  if (tail == 0) tail = 1;
  size_t base_count = records.size() - tail;
  std::vector<Record> base(records.begin(), records.begin() + base_count);

  // --- phase 1: durable appends (one fsynced WAL record each) ----------
  GenerationalIndex live(knowledge, msim, base);
  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(env, wal_path, /*truncate=*/true);
  if (!wal.ok()) {
    std::fprintf(stderr, "FAILED to open %s: %s\n", wal_path.c_str(),
                 wal.status().ToString().c_str());
    return 2;
  }
  live.AttachWal(wal->get());
  WallTimer timer;
  for (size_t i = base_count; i < records.size(); ++i) {
    Result<uint32_t> id = live.AppendDurable(records[i]);
    if (!id.ok() || *id != i) {
      std::fprintf(stderr, "FAILED durable append %zu: %s\n", i,
                   id.ok() ? "wrong id" : id.status().ToString().c_str());
      return 2;
    }
  }
  double append_seconds = timer.Seconds();
  uint64_t wal_bytes = (*wal)->size();

  // --- phase 2: crash-recovery replay ----------------------------------
  // A recovering process reads the log, re-tokenises every payload and
  // stages it over the base — measured from a fresh index each round so
  // the cost includes the staging side, not just the file scan.
  double recovery_seconds = 0.0;
  uint64_t recovered = 0;
  std::unique_ptr<GenerationalIndex> cold;
  for (int r = 0; r < repeat; ++r) {
    timer.Restart();
    cold = std::make_unique<GenerationalIndex>(
        knowledge, msim, std::vector<Record>(base));
    Result<WalReplay> replay = WalReader::ReadAll(env, wal_path);
    if (!replay.ok()) {
      std::fprintf(stderr, "FAILED to replay %s: %s\n", wal_path.c_str(),
                   replay.status().ToString().c_str());
      return 2;
    }
    recovered = 0;
    for (const std::string& payload : replay->records) {
      uint32_t id = 0;
      std::string_view text;
      if (!DecodeWalAppend(payload, &id, &text)) {
        std::fprintf(stderr, "FAILED: malformed WAL append payload\n");
        return 2;
      }
      cold->Append(MakeRecord(id, std::string(text), &world->vocab));
      ++recovered;
    }
    // The first query pays the staging mini-index build; recovery isn't
    // over until the index can serve.
    GenerationalIndex::SearchOptions options;
    options.theta = theta;
    options.tau = tau;
    cold->Search(records[0], options);
    recovery_seconds += timer.Seconds();
  }
  recovery_seconds /= repeat;
  std::remove(wal_path.c_str());

  if (recovered != tail) {
    std::fprintf(stderr,
                 "RECOVERY FAILURE: %llu records replayed, %zu were "
                 "acknowledged durable\n",
                 static_cast<unsigned long long>(recovered), tail);
    return 2;
  }
  // Parity: the recovered index serves exactly like the index that
  // never crashed (and both like a scratch build over the union).
  GenerationalIndex scratch(knowledge, msim, records);
  if (Sweep(*cold, records, theta, tau) !=
          Sweep(scratch, records, theta, tau) ||
      Sweep(live, records, theta, tau) !=
          Sweep(scratch, records, theta, tau)) {
    std::fprintf(stderr,
                 "PARITY FAILURE: recovered serving differs from the "
                 "never-crashed index\n");
    return 2;
  }

  // --- report -----------------------------------------------------------
  double append_rps =
      append_seconds > 0.0 ? static_cast<double>(tail) / append_seconds : 0.0;
  BenchRun run;
  run.algorithm = "wal";
  run.variant = "durable-append";
  run.measures = "TJS";
  run.theta = theta;
  run.tau = tau;
  run.threads = 1;
  run.num_records = records.size();
  run.ok = true;
  run.total_seconds = append_seconds + recovery_seconds;
  run.wall_seconds = run.total_seconds;
  run.has_wal = true;
  run.wal_append_records_per_sec = append_rps;
  run.wal_recovery_seconds = recovery_seconds;
  run.wal_recovered_records = recovered;
  run.wal_bytes = wal_bytes;
  run.peak_rss_bytes = CurrentPeakRssBytes();

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  report.runs.push_back(run);

  std::printf("durable appends: %zu in %.4fs (%.0f rec/s, one fsync "
              "each; log %llu bytes)\n",
              tail, append_seconds, append_rps,
              static_cast<unsigned long long>(wal_bytes));
  std::printf("recovery (%d reps): replay + re-tokenise + stage %llu "
              "records in %.4fs\n",
              repeat, static_cast<unsigned long long>(recovered),
              recovery_seconds);

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), report.runs.size());

  if (min_append_rps > 0.0 && append_rps < min_append_rps) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: %.0f durable appends/sec below the "
                 "--min_append_rps=%.0f gate\n",
                 append_rps, min_append_rps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
