// Write-ahead-log bench: durable-append throughput and crash-recovery
// replay cost for the staged-append path (storage/wal_*.h). Two phases:
//
//   append    — GenerationalIndex over the corpus minus a --append_pct
//               tail, with a WAL attached: every AppendDurable logs one
//               checksummed record and fsyncs before acknowledging
//               (records/sec is the price of the durability contract)
//   recover   — replay the log --repeat times: read + checksum-verify
//               every record, re-tokenise its text, and stage it on a
//               fresh index over the base (the cold-start after a crash)
//   mt append — the same durable appends issued from --append_threads
//               concurrent threads against a fresh index + log: the
//               group-commit path batches queued appends behind one
//               fsync, so syncs-per-append drops below 1 while every
//               caller keeps the acknowledged-means-durable contract
//
// The recovered index must answer a full query sweep identically to a
// from-scratch build over the union corpus, and replay must recover
// EXACTLY the appended records — the bench exits non-zero otherwise,
// so it doubles as an end-to-end recovery parity check. The report
// lands in BENCH_<name>.json with the wal_* fields documented in
// docs/bench-schema.md.
//
// Typical invocation:
//   bench_wal --name=wal --profile=med --strings=300 --theta=0.7 \
//     --append_pct=20 --repeat=5

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "index/prepared_index.h"
#include "join/search.h"
#include "storage/env.h"
#include "storage/generational_index.h"
#include "storage/wal_format.h"
#include "storage/wal_reader.h"
#include "storage/wal_writer.h"
#include "util/timer.h"

namespace aujoin {
namespace {

std::vector<std::vector<GenerationalIndex::Match>> Sweep(
    const GenerationalIndex& index, const std::vector<Record>& queries,
    double theta, int tau) {
  GenerationalIndex::SearchOptions options;
  options.theta = theta;
  options.tau = tau;
  std::vector<std::vector<GenerationalIndex::Match>> out;
  out.reserve(queries.size());
  for (const Record& q : queries) out.push_back(index.Search(q, options));
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "wal");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 300));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 1));
  int repeat = static_cast<int>(flags.GetInt("repeat", 5));
  int append_pct = static_cast<int>(flags.GetInt("append_pct", 20));
  int append_threads = static_cast<int>(flags.GetInt("append_threads", 4));
  double min_append_rps = flags.GetDouble("min_append_rps", 0.0);
  std::string wal_path = flags.GetString("wal_path", "bench_wal.wal");
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("write-ahead-log bench", "staged-append durability",
              "fsync-per-append throughput and crash-recovery replay");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d "
              "append_pct=%d repeat=%d\n",
              profile.c_str(), strings, theta, tau, append_pct, repeat);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;
  const Knowledge knowledge = world->knowledge();
  const MsimOptions msim{.q = 3};
  Env* env = Env::Default();

  size_t tail = records.size() * static_cast<size_t>(append_pct) / 100;
  if (tail == 0) tail = 1;
  size_t base_count = records.size() - tail;
  std::vector<Record> base(records.begin(), records.begin() + base_count);

  // --- phase 1: durable appends (one fsynced WAL record each) ----------
  GenerationalIndex live(knowledge, msim, base);
  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(env, wal_path, /*truncate=*/true);
  if (!wal.ok()) {
    std::fprintf(stderr, "FAILED to open %s: %s\n", wal_path.c_str(),
                 wal.status().ToString().c_str());
    return 2;
  }
  live.AttachWal(wal->get());
  WallTimer timer;
  for (size_t i = base_count; i < records.size(); ++i) {
    Result<uint32_t> id = live.AppendDurable(records[i]);
    if (!id.ok() || *id != i) {
      std::fprintf(stderr, "FAILED durable append %zu: %s\n", i,
                   id.ok() ? "wrong id" : id.status().ToString().c_str());
      return 2;
    }
  }
  double append_seconds = timer.Seconds();
  uint64_t wal_bytes = (*wal)->size();

  // --- phase 2: crash-recovery replay ----------------------------------
  // A recovering process reads the log, re-tokenises every payload and
  // stages it over the base — measured from a fresh index each round so
  // the cost includes the staging side, not just the file scan.
  double recovery_seconds = 0.0;
  uint64_t recovered = 0;
  std::unique_ptr<GenerationalIndex> cold;
  for (int r = 0; r < repeat; ++r) {
    timer.Restart();
    cold = std::make_unique<GenerationalIndex>(
        knowledge, msim, std::vector<Record>(base));
    Result<WalReplay> replay = WalReader::ReadAll(env, wal_path);
    if (!replay.ok()) {
      std::fprintf(stderr, "FAILED to replay %s: %s\n", wal_path.c_str(),
                   replay.status().ToString().c_str());
      return 2;
    }
    recovered = 0;
    for (const std::string& payload : replay->records) {
      uint32_t id = 0;
      std::string_view text;
      if (!DecodeWalAppend(payload, &id, &text)) {
        std::fprintf(stderr, "FAILED: malformed WAL append payload\n");
        return 2;
      }
      cold->Append(MakeRecord(id, std::string(text), &world->vocab));
      ++recovered;
    }
    // The first query pays the staging mini-index build; recovery isn't
    // over until the index can serve.
    GenerationalIndex::SearchOptions options;
    options.theta = theta;
    options.tau = tau;
    cold->Search(records[0], options);
    recovery_seconds += timer.Seconds();
  }
  recovery_seconds /= repeat;
  std::remove(wal_path.c_str());

  if (recovered != tail) {
    std::fprintf(stderr,
                 "RECOVERY FAILURE: %llu records replayed, %zu were "
                 "acknowledged durable\n",
                 static_cast<unsigned long long>(recovered), tail);
    return 2;
  }
  // Parity: the recovered index serves exactly like the index that
  // never crashed (and both like a scratch build over the union).
  GenerationalIndex scratch(knowledge, msim, records);
  if (Sweep(*cold, records, theta, tau) !=
          Sweep(scratch, records, theta, tau) ||
      Sweep(live, records, theta, tau) !=
          Sweep(scratch, records, theta, tau)) {
    std::fprintf(stderr,
                 "PARITY FAILURE: recovered serving differs from the "
                 "never-crashed index\n");
    return 2;
  }

  // --- phase 3: concurrent durable appends (group commit) --------------
  // The same tail appended from several threads against a fresh index
  // and log. Arrival order — and so which record gets which id — is
  // nondeterministic; the checks are set-based: every append
  // acknowledged with a unique in-range id, and the log's replay
  // agreeing with the staged state record by record.
  double mt_seconds = 0.0;
  uint64_t mt_syncs = 0;
  if (append_threads > 1) {
    std::string mt_path = wal_path + ".mt";
    GenerationalIndex mt(knowledge, msim, base);
    Result<std::unique_ptr<WalWriter>> mt_wal =
        WalWriter::Open(env, mt_path, /*truncate=*/true);
    if (!mt_wal.ok()) {
      std::fprintf(stderr, "FAILED to open %s: %s\n", mt_path.c_str(),
                   mt_wal.status().ToString().c_str());
      return 2;
    }
    mt.AttachWal(mt_wal->get());
    std::vector<std::vector<uint32_t>> ids(append_threads);
    std::vector<int> failed(append_threads, 0);
    timer.Restart();
    std::vector<std::thread> workers;
    for (int w = 0; w < append_threads; ++w) {
      workers.emplace_back([&, w] {
        for (size_t i = base_count + w; i < records.size();
             i += append_threads) {
          Result<uint32_t> id = mt.AppendDurable(records[i]);
          if (!id.ok()) {
            failed[w] = 1;
            return;
          }
          ids[w].push_back(*id);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    mt_seconds = timer.Seconds();
    mt_syncs = (*mt_wal)->sync_count();

    std::vector<uint32_t> all_ids;
    for (const auto& per_thread : ids) {
      all_ids.insert(all_ids.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all_ids.begin(), all_ids.end());
    bool ids_ok = all_ids.size() == tail;
    for (size_t i = 0; ids_ok && i < all_ids.size(); ++i) {
      ids_ok = all_ids[i] == base_count + i;
    }
    if (std::count(failed.begin(), failed.end(), 0) != append_threads ||
        !ids_ok) {
      std::fprintf(stderr,
                   "GROUP-COMMIT FAILURE: concurrent appends did not yield "
                   "one unique in-range id each\n");
      return 2;
    }
    Result<WalReplay> mt_replay = WalReader::ReadAll(env, mt_path);
    if (!mt_replay.ok() || mt_replay->records.size() != tail) {
      std::fprintf(stderr, "GROUP-COMMIT FAILURE: replay of %s\n",
                   mt_path.c_str());
      return 2;
    }
    for (const std::string& payload : mt_replay->records) {
      uint32_t id = 0;
      std::string_view text;
      if (!DecodeWalAppend(payload, &id, &text) || mt.TextOf(id) != text) {
        std::fprintf(stderr,
                     "GROUP-COMMIT FAILURE: replayed record disagrees with "
                     "the staged state\n");
        return 2;
      }
    }
    std::remove(mt_path.c_str());
  }

  // --- report -----------------------------------------------------------
  double append_rps =
      append_seconds > 0.0 ? static_cast<double>(tail) / append_seconds : 0.0;
  BenchRun run;
  run.algorithm = "wal";
  run.variant = "durable-append";
  run.measures = "TJS";
  run.theta = theta;
  run.tau = tau;
  run.threads = 1;
  run.num_records = records.size();
  run.ok = true;
  run.total_seconds = append_seconds + recovery_seconds;
  run.wall_seconds = run.total_seconds;
  run.has_wal = true;
  run.wal_append_records_per_sec = append_rps;
  run.wal_recovery_seconds = recovery_seconds;
  run.wal_recovered_records = recovered;
  run.wal_bytes = wal_bytes;
  if (append_threads > 1) {
    run.wal_mt_threads = static_cast<uint64_t>(append_threads);
    run.wal_mt_append_records_per_sec =
        mt_seconds > 0.0 ? static_cast<double>(tail) / mt_seconds : 0.0;
    run.wal_mt_syncs_per_append =
        tail > 0 ? static_cast<double>(mt_syncs) / static_cast<double>(tail)
                 : 0.0;
  }
  run.peak_rss_bytes = CurrentPeakRssBytes();

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  report.runs.push_back(run);

  std::printf("durable appends: %zu in %.4fs (%.0f rec/s, one fsync "
              "each; log %llu bytes)\n",
              tail, append_seconds, append_rps,
              static_cast<unsigned long long>(wal_bytes));
  std::printf("recovery (%d reps): replay + re-tokenise + stage %llu "
              "records in %.4fs\n",
              repeat, static_cast<unsigned long long>(recovered),
              recovery_seconds);
  if (append_threads > 1) {
    std::printf("group commit: %zu appends from %d threads in %.4fs "
                "(%.0f rec/s, %llu fsyncs = %.2f per append)\n",
                tail, append_threads, mt_seconds,
                run.wal_mt_append_records_per_sec,
                static_cast<unsigned long long>(mt_syncs),
                run.wal_mt_syncs_per_append);
  }

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), report.runs.size());

  if (min_append_rps > 0.0 && append_rps < min_append_rps) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: %.0f durable appends/sec below the "
                 "--min_append_rps=%.0f gate\n",
                 append_rps, min_append_rps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
