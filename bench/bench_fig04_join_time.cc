// Reproduces Figure 4: total join time of the three proposed algorithms
// (U-Filter, AU-Filter heuristics, AU-Filter DP) as the join threshold
// varies, on MED-like and WIKI-like corpora. The AU filters run with the
// tau recommended by Algorithm 7, as in the paper.
//
// Expected shape (paper): AU-DP <= AU-heuristics <= U-Filter, with the
// gap widest at low thresholds.

#include <cstdio>

#include "bench_common.h"
#include "tuner/recommend.h"
#include "util/timer.h"

namespace aujoin {
namespace {

void RunDataset(const std::string& dataset, size_t n,
                const std::vector<double>& thetas) {
  auto world = BuildWorld(dataset, n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);

  std::printf("\n[%s-like] strings=%zu\n", dataset.c_str(),
              world->corpus.records.size());
  std::printf("%-6s | %12s %18s %12s\n", "theta", "U-Filter", "AU-heuristic",
              "AU-DP");
  for (double theta : thetas) {
    std::printf("%-6.2f |", theta);
    for (FilterMethod method :
         {FilterMethod::kUFilter, FilterMethod::kAuHeuristic,
          FilterMethod::kAuDp}) {
      JoinOptions options;
      options.theta = theta;
      options.method = method;
      WallTimer timer;
      if (method == FilterMethod::kUFilter) {
        options.tau = 1;
        UnifiedJoin(context, options);
      } else {
        TunerOptions tuner;
        tuner.theta = theta;
        tuner.method = method;
        tuner.sample_prob_s = 0.05;
        tuner.min_iterations = 5;
        tuner.max_iterations = 25;
        JoinWithSuggestedTau(context, options, tuner);
      }
      double field_width = method == FilterMethod::kAuHeuristic ? 18 : 12;
      std::printf(" %*.3f", static_cast<int>(field_width), timer.Seconds());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.80, 0.85, 0.90, 0.95});
  aujoin::PrintBanner("E4 join time by filter", "Figure 4",
                      "AU-DP fastest, U-Filter slowest; gap widest at low "
                      "theta");
  aujoin::RunDataset("med", n, thetas);
  aujoin::RunDataset("wiki", n, thetas);
  return 0;
}
