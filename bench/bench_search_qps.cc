// Online-serving throughput bench: builds a shared immutable
// PreparedIndex over a generated corpus once, then hammers
// Engine::Search from concurrent worker threads and reports sustained
// QPS plus p50/p95/p99 per-query latency into BENCH_<name>.json — the
// serving-side counterpart of bench_harness's join grid.
//
// Queries are corpus records (optionally subsampled), so every
// configuration is guaranteed self-hits and --require_nonzero can gate
// regressions that silently empty the serving path.
//
// Typical invocations:
//   bench_search_qps --name=search_qps --profile=med --strings=400 \
//     --queries=200 --theta=0.7,0.8 --topk=10 --threads=1,0 \
//     --require_nonzero
//   bench_search_qps --name=search_nightly --strings=5000 \
//     --queries=2000 --theta=0.8 --threads=1,4,0

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "dataset/manifest.h"
#include "harness.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "search_qps");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 400));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 200));
  size_t topk = static_cast<size_t>(flags.GetInt("topk", 10));
  int tau = static_cast<int>(flags.GetInt("tau", 1));
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");
  bool require_nonzero = flags.GetBool("require_nonzero", false);
  std::vector<double> thetas = flags.GetDoubleList("theta", {0.7, 0.8});
  std::vector<int> thread_counts;
  for (int64_t t : flags.GetIntList("threads", {1, 0})) {
    thread_counts.push_back(static_cast<int>(t));
  }

  PrintBanner("online search serving throughput", "serving subsystem",
              "QPS scales with worker threads; prepare/index paid once");
  std::printf("corpus: profile=%s strings=%zu queries=%zu topk=%zu\n",
              profile.c_str(), strings, num_queries, topk);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;

  // Query workload: an even subsample of the corpus itself.
  std::vector<Record> queries;
  size_t stride = num_queries == 0 ? 1 : std::max<size_t>(
      1, records.size() / num_queries);
  for (size_t i = 0; i < records.size() && queries.size() < num_queries;
       i += stride) {
    queries.push_back(records[i]);
  }

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  DatasetManifest manifest = BuildManifest(records, world->vocab,
                                           &world->rules, &world->taxonomy);
  manifest.source = "datagen:" + profile;
  manifest.format = "generated";
  report.dataset_manifest_json = manifest.ToJson();

  uint64_t total_results = 0;
  for (int num_threads : thread_counts) {
    Engine engine = EngineBuilder()
                        .SetKnowledge(world->knowledge())
                        .SetMeasures("TJS")
                        .SetQ(3)
                        .SetThreads(num_threads)
                        .Build();
    engine.SetRecords(records);
    for (double theta : thetas) {
      EngineSearchOptions options;
      options.theta = theta;
      options.tau = tau;
      options.k = topk;

      BenchRun run;
      run.algorithm = "search";
      char variant[64];
      std::snprintf(variant, sizeof(variant), "topk=%zu", topk);
      run.variant = variant;
      run.measures = "TJS";
      run.theta = theta;
      run.tau = tau;
      run.threads = num_threads;
      run.num_records = records.size();

      // Pay preparation + serving-index build before timing the query
      // stream; their costs are reported separately.
      auto index = engine.ServingIndex();
      if (!index.ok()) {
        run.error = index.status().ToString();
        report.runs.push_back(std::move(run));
        continue;
      }
      double index_built_seconds = 0.0;
      (*index)->ServingIndex(&index_built_seconds);
      run.stats.prepare_seconds = (*index)->prepare_seconds();
      run.stats.index_seconds = index_built_seconds;

      // The measured serving loop: workers own disjoint query slices
      // and time each Engine::Search call individually (the engine is
      // shared and probed concurrently — that is the point).
      std::vector<double> latencies(queries.size(), 0.0);
      std::atomic<uint64_t> results{0};
      std::atomic<uint64_t> candidates{0};
      WallTimer wall;
      ParallelFor(queries.size(), num_threads,
                  [&](size_t begin, size_t end, int /*worker*/) {
                    uint64_t local_results = 0;
                    uint64_t local_candidates = 0;
                    for (size_t q = begin; q < end; ++q) {
                      SearchStats stats;
                      WallTimer query_timer;
                      auto matches =
                          engine.Search(queries[q], options, &stats);
                      latencies[q] = query_timer.Seconds();
                      if (matches.ok()) {
                        local_results += matches->size();
                        local_candidates += stats.query_candidates;
                      }
                    }
                    results.fetch_add(local_results);
                    candidates.fetch_add(local_candidates);
                  });
      double wall_seconds = wall.Seconds();

      run.ok = true;
      run.wall_seconds = wall_seconds;
      run.total_seconds = run.stats.prepare_seconds +
                          run.stats.index_seconds + wall_seconds;
      run.stats.queries = queries.size();
      run.stats.query_candidates = candidates.load();
      run.stats.results = results.load();
      run.has_latency = true;
      run.qps = wall_seconds > 0.0
                    ? static_cast<double>(queries.size()) / wall_seconds
                    : 0.0;
      LatencySummary latency = SummarizeLatencySeconds(latencies);
      run.p50_ms = latency.p50_ms;
      run.p95_ms = latency.p95_ms;
      run.p99_ms = latency.p99_ms;
      run.peak_rss_bytes = CurrentPeakRssBytes();
      total_results += results.load();

      std::printf(
          "search th=%.2f thr=%d topk=%zu qps=%-8.1f p50=%.3fms "
          "p95=%.3fms p99=%.3fms results=%llu\n",
          theta, num_threads, topk, run.qps, run.p50_ms, run.p95_ms,
          run.p99_ms, static_cast<unsigned long long>(results.load()));
      report.runs.push_back(std::move(run));
    }
  }

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(),
              report.runs.size());

  if (require_nonzero && total_results == 0) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: no search configuration found matches "
                 "(queries are corpus records — self-hits must exist)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
