#ifndef AUJOIN_BENCH_HARNESS_H_
#define AUJOIN_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "datagen/corpus_gen.h"

namespace aujoin {

/// Process-wide peak resident set size in bytes (0 where unsupported).
/// Monotone over the process lifetime, so per-run values record the
/// high-water mark up to that run, not the run's own footprint.
uint64_t CurrentPeakRssBytes();

/// One benchmark grid: the cross product of every listed dimension. The
/// tau dimension only configures the unified join's AU filters, so the
/// harness collapses it to its first value for the four baselines rather
/// than re-running identical work.
struct BenchGrid {
  /// Registry names; empty = every registered algorithm.
  std::vector<std::string> algorithms;
  std::vector<double> thetas = {0.7};
  std::vector<int> taus = {2};
  /// EngineOptions::num_threads values (0 = all hardware threads).
  std::vector<int> threads = {1};
  /// EngineOptions::max_partition_records values (0 = monolithic).
  std::vector<size_t> partition_limits = {0};
  /// Measure-combination string and gram length for every engine.
  std::string measures = "TJS";
  int q = 3;
};

/// One grid cell's outcome: the configuration, the normalized JoinStats,
/// and optional quality scores against labelled truth pairs.
struct BenchRun {
  std::string algorithm;
  /// Free-form sub-configuration label (e.g. a filter-method name) for
  /// benches that sweep dimensions outside the standard grid.
  std::string variant;
  std::string measures;
  double theta = 0.0;
  int tau = 0;
  int threads = 0;
  size_t max_partition_records = 0;
  size_t num_records = 0;

  bool ok = false;
  std::string error;
  JoinStats stats;
  /// TotalSeconds(include_prepare = true): comparable across algorithms
  /// that do their own indexing. On partitioned runs the per-stage times
  /// are summed across blocks, so this is aggregate work, not elapsed
  /// time — use wall_seconds to judge thread scaling.
  double total_seconds = 0.0;
  /// Elapsed wall-clock seconds of the whole Join call.
  double wall_seconds = 0.0;
  uint64_t peak_rss_bytes = 0;

  bool has_prf = false;
  PrfScore prf;

  /// Serving-bench extras (bench_search_qps, or any run that answers
  /// queries): sustained throughput and per-query latency percentiles.
  /// Emitted to JSON only when has_latency is set.
  bool has_latency = false;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// Micro-index extras (bench_micro_index): one candidate-generation
  /// variant's one-time index build cost and probe throughput (probe
  /// records driven per second, raw postings scanned per second), plus
  /// which dispatched kernel (src/kernels/) the variant probed with
  /// and — on the run racing that kernel against the scalar fallback —
  /// the measured probe speedup over it. Emitted to JSON only when
  /// has_index_micro is set (kernel/probe_speedup only when non-empty
  /// / non-zero).
  bool has_index_micro = false;
  double index_build_seconds = 0.0;
  double probe_records_per_sec = 0.0;
  double probe_postings_per_sec = 0.0;
  std::string kernel;
  double probe_speedup = 0.0;

  /// Micro-verify extras (bench_micro_verify): one kernel variant's
  /// sorted-set-intersection and weight-accumulation throughput
  /// (elements processed per second), plus — on the run racing the
  /// best vector kernel against the scalar fallback — the measured
  /// intersection speedup. Reuses `kernel` for the variant name.
  /// Emitted to JSON only when has_verify_micro is set.
  bool has_verify_micro = false;
  double intersect_elems_per_sec = 0.0;
  double accumulate_elems_per_sec = 0.0;
  double verify_speedup = 0.0;

  /// Serving provenance (aujoin query --stats_out): whether the run's
  /// prepared index was "rebuilt" in-process or loaded from a
  /// "snapshot", and the load cost in the latter case. Emitted to JSON
  /// only when index_source is non-empty.
  std::string index_source;
  double snapshot_load_ms = 0.0;

  /// Snapshot-bench extras (bench_snapshot): cold-start from a
  /// snapshot vs a full rebuild, the write cost, and generational
  /// append/refreeze throughput. Emitted only when has_snapshot.
  bool has_snapshot = false;
  double rebuild_seconds = 0.0;         // cold start by rebuilding
  double snapshot_write_seconds = 0.0;  // Save() wall time
  double snapshot_load_seconds = 0.0;   // cold start from the snapshot
  double cold_start_speedup = 0.0;      // rebuild / load
  uint64_t snapshot_bytes = 0;
  double append_records_per_sec = 0.0;
  double refreeze_seconds = 0.0;

  /// Shard-bench extras (bench_shard): the scatter-gather race —
  /// the same join/serving workload run monolithically and sharded,
  /// and the measured speedup (monolithic / sharded wall time). The
  /// run's shard count and placement policy live in stats.shards and
  /// shard_by. Emitted to JSON only when has_shard is set.
  bool has_shard = false;
  std::string shard_by;  // "range" | "hash"
  double monolithic_seconds = 0.0;
  double sharded_seconds = 0.0;
  double scatter_gather_speedup = 0.0;  // monolithic / sharded

  /// Write-ahead-log extras (bench_wal, aujoin append/query --wal):
  /// durable-append throughput (one fsynced WAL record per append),
  /// crash-recovery replay cost and the records/bytes it recovered.
  /// Emitted to JSON only when has_wal.
  bool has_wal = false;
  double wal_append_records_per_sec = 0.0;
  double wal_recovery_seconds = 0.0;
  uint64_t wal_recovered_records = 0;
  uint64_t wal_bytes = 0;
  /// Group-commit extras (bench_wal's multi-threaded append phase):
  /// concurrent durable-append throughput and the fsyncs each append
  /// actually paid (< 1 once leaders batch followers into one Sync).
  /// Emitted only when wal_mt_threads is non-zero.
  uint64_t wal_mt_threads = 0;
  double wal_mt_append_records_per_sec = 0.0;
  double wal_mt_syncs_per_append = 0.0;
};

/// Per-query latency percentiles in milliseconds. Takes the latencies
/// by value (sorts its copy); empty input yields all zeros.
struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};
LatencySummary SummarizeLatencySeconds(std::vector<double> seconds);

/// A machine-readable benchmark report, serialised as BENCH_<name>.json
/// so CI (and later PRs) can track the perf trajectory. Schema documented
/// in README.md ("Benchmark harness" section).
struct BenchReport {
  std::string name;
  std::string profile;
  size_t num_records = 0;
  size_t num_truth_pairs = 0;
  /// Optional corpus manifest (DatasetManifest::ToJson()); embedded
  /// verbatim as the report's "dataset" object when non-empty, so a
  /// result always names the corpus it ran on. The aujoin CLI and
  /// bench_harness both fill this.
  std::string dataset_manifest_json;
  std::vector<BenchRun> runs;

  std::string ToJson() const;
  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  /// Sum of results over every successful run of `algorithm` — the CI
  /// smoke job fails when this is zero for an algorithm the parity tests
  /// expect to find matches.
  uint64_t TotalResults(const std::string& algorithm) const;

  /// Per-configuration smoke gate: labels of every (algorithm ×
  /// partitioning × threads) group whose successful runs all returned
  /// zero matches. Grouping per configuration (not a grand total per
  /// algorithm) means a regression that empties only the partitioned or
  /// only the threaded cells still trips the gate.
  std::vector<std::string> ZeroResultConfigurations() const;
};

/// Runs benchmark grids over one bound corpus through the Engine facade.
/// Engines are rebuilt per (threads × partition limit) combination and
/// reused across algorithms and thetas, so prepared-context reuse matches
/// how a sweeping caller would drive the engine.
class BenchHarness {
 public:
  BenchHarness(const Knowledge& knowledge, const std::vector<Record>* records)
      : knowledge_(knowledge), records_(records) {}

  /// Runs every cell of `grid`; with `truth` given, scores each run's
  /// pair set against it (precision / recall / F).
  std::vector<BenchRun> RunGrid(
      const BenchGrid& grid,
      const std::vector<std::pair<uint32_t, uint32_t>>* truth = nullptr);

 private:
  Knowledge knowledge_;
  const std::vector<Record>* records_;
};

}  // namespace aujoin

#endif  // AUJOIN_BENCH_HARNESS_H_
