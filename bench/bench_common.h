#ifndef AUJOIN_BENCH_BENCH_COMMON_H_
#define AUJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "util/flags.h"

namespace aujoin {

/// A fully-materialised synthetic evaluation world: knowledge sources plus
/// a labelled corpus. Stand-in for the paper's MED/WIKI datasets (see
/// DESIGN.md substitution table); scale is controlled by flags so the same
/// binary reproduces the paper's shape at any size.
struct BenchWorld {
  Vocabulary vocab;
  Taxonomy taxonomy;
  RuleSet rules;
  Corpus corpus;

  Knowledge knowledge() const { return Knowledge{&vocab, &rules, &taxonomy}; }
};

/// Builds a world. `profile_name` is "med" or "wiki".
inline std::unique_ptr<BenchWorld> BuildWorld(const std::string& profile_name,
                                              size_t num_strings,
                                              size_t num_truth_pairs,
                                              uint64_t seed = 1) {
  auto world = std::make_unique<BenchWorld>();
  TaxonomyGenOptions tax;
  tax.num_nodes = profile_name == "wiki" ? 4000 : 2000;
  tax.seed = seed;
  world->taxonomy = GenerateTaxonomy(tax, &world->vocab);
  SynonymGenOptions syn;
  syn.num_rules = profile_name == "wiki" ? 2500 : 3000;
  syn.seed = seed + 1;
  world->rules = GenerateSynonyms(syn, world->taxonomy, &world->vocab);

  CorpusProfile profile = profile_name == "wiki"
                              ? CorpusProfile::Wiki(num_strings)
                              : CorpusProfile::Med(num_strings);
  profile.seed += seed;
  GroundTruthOptions truth;
  truth.num_pairs = num_truth_pairs;
  truth.seed = seed + 2;
  CorpusGenerator gen(&world->vocab, &world->taxonomy, &world->rules);
  world->corpus = gen.Generate(profile, truth);
  return world;
}

// Benches construct their MsimOptions with q = 3: on the synthetic
// corpora the syllable-built words have a compressed 2-gram space, so
// 3-grams restore realistic signature selectivity (see EXPERIMENTS.md).

/// Prints the standard bench banner.
inline void PrintBanner(const char* experiment, const char* paper_ref,
                        const char* expectation) {
  std::printf("=== %s (%s) ===\n", experiment, paper_ref);
  std::printf("paper expectation: %s\n", expectation);
}

}  // namespace aujoin

#endif  // AUJOIN_BENCH_BENCH_COMMON_H_
