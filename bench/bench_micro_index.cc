// Candidate-generation micro-bench: legacy hash-map inverted index vs
// the frozen CSR index (index/csr_index.h). Builds one PreparedIndex
// over a generated corpus, selects every record's signature once, then
// measures the two halves of the hot path separately for each variant:
//
//   build  — staging the postings (and, for CSR, freezing them)
//   probe  — candidate generation for every record, repeated --repeat
//            times: per-key posting lookups + hash-map overlap counting
//            (legacy) vs sequential posting scans + epoch-stamped
//            count merging (CSR)
//
// Both variants must produce identical candidate counts (the bench
// exits non-zero otherwise — it doubles as a parity check), and the
// report lands in BENCH_<name>.json with the index_build_seconds /
// probe_records_per_sec / probe_postings_per_sec fields documented in
// docs/bench-schema.md. --min_speedup=<x> gates CI on the CSR probe
// being at least x times the legacy throughput.
//
// Typical invocation:
//   bench_micro_index --name=micro_index --profile=med --strings=300 \
//     --theta=0.7 --tau=2 --repeat=20 --min_speedup=1.5

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "index/csr_index.h"
#include "index/inverted_index.h"
#include "index/prepared_index.h"
#include "join/signature.h"
#include "util/timer.h"

namespace aujoin {
namespace {

struct ProbeOutcome {
  uint64_t candidates = 0;       // per sweep over every record
  uint64_t postings_visited = 0;  // per sweep, before the self-pair skip
  double seconds = 0.0;           // total over every repeat
};

/// The pre-CSR candidate generation, kept verbatim as the baseline: an
/// unordered_map posting index probed key by key, overlaps deduped and
/// counted through a second per-record unordered_map.
ProbeOutcome ProbeLegacy(const std::vector<Signature>& sigs,
                         const InvertedIndex& index, int repeat) {
  ProbeOutcome out;
  std::unordered_map<uint32_t, const Signature*> sig_by_id;
  sig_by_id.reserve(sigs.size());
  for (uint32_t j = 0; j < sigs.size(); ++j) sig_by_id.emplace(j, &sigs[j]);
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    uint64_t candidates = 0, visited = 0;
    std::unordered_map<uint32_t, int> overlap;
    for (uint32_t s_id = 0; s_id < sigs.size(); ++s_id) {
      overlap.clear();
      for (uint64_t key : sigs[s_id].keys) {
        const std::vector<uint32_t>* postings = index.Find(key);
        if (postings == nullptr) continue;
        for (uint32_t t_id : *postings) {
          if (t_id <= s_id) continue;  // self-join pair dedup
          ++visited;
          ++overlap[t_id];
        }
      }
      for (const auto& [t_id, count] : overlap) {
        if (count >= MergeRequiredOverlap(sigs[s_id], *sig_by_id.at(t_id))) {
          ++candidates;
        }
      }
    }
    out.candidates = candidates;
    out.postings_visited = visited;
  }
  out.seconds = timer.Seconds();
  return out;
}

/// The shipped path: frozen CSR posting runs merged through the
/// epoch-stamped CandidateAccumulator.
ProbeOutcome ProbeCsr(const std::vector<Signature>& sigs,
                      const CsrIndex& index, int repeat) {
  ProbeOutcome out;
  WallTimer timer;
  CandidateAccumulator overlap;
  for (int r = 0; r < repeat; ++r) {
    uint64_t candidates = 0, visited = 0;
    for (uint32_t s_id = 0; s_id < sigs.size(); ++s_id) {
      overlap.Begin(sigs.size());
      for (uint64_t key : sigs[s_id].keys) {
        for (uint32_t t_id : index.Find(key)) {
          if (t_id <= s_id) continue;  // self-join pair dedup
          ++visited;
          overlap.Bump(t_id);
        }
      }
      for (uint32_t t_id : overlap.touched()) {
        int required = MergeRequiredOverlap(sigs[s_id], sigs[t_id]);
        if (overlap.count(t_id) >= static_cast<uint32_t>(required)) {
          ++candidates;
        }
      }
    }
    out.candidates = candidates;
    out.postings_visited = visited;
  }
  out.seconds = timer.Seconds();
  return out;
}

BenchRun MakeRun(const char* variant, const ProbeOutcome& probe,
                 double build_seconds, size_t num_records, double theta,
                 int tau, int repeat) {
  BenchRun run;
  run.algorithm = "index_probe";
  run.variant = variant;
  run.measures = "TJS";
  run.theta = theta;
  run.tau = tau;
  run.threads = 1;
  run.num_records = num_records;
  run.ok = true;
  run.stats.candidates = probe.candidates;
  run.stats.processed_pairs = probe.postings_visited;
  run.stats.filter_seconds = probe.seconds;
  run.wall_seconds = probe.seconds;
  run.total_seconds = build_seconds + probe.seconds;
  run.has_index_micro = true;
  run.index_build_seconds = build_seconds;
  double per_sweep = probe.seconds / repeat;
  if (per_sweep > 0.0) {
    run.probe_records_per_sec = static_cast<double>(num_records) / per_sweep;
    run.probe_postings_per_sec =
        static_cast<double>(probe.postings_visited) / per_sweep;
  }
  run.peak_rss_bytes = CurrentPeakRssBytes();
  return run;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "micro_index");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 300));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 2));
  int repeat = static_cast<int>(flags.GetInt("repeat", 20));
  double min_speedup = flags.GetDouble("min_speedup", 0.0);
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("candidate-index micro-bench", "hot path of Algorithms 3/6",
              "frozen CSR probes beat the pointer-chasing map");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d repeat=%d\n",
              profile.c_str(), strings, theta, tau, repeat);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;
  auto prepared = PreparedIndex::Build(world->knowledge(),
                                       MsimOptions{.q = 3}, records, nullptr);

  SignatureOptions sig_options;
  sig_options.theta = theta;
  sig_options.tau = tau;
  std::vector<Signature> sigs(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const PreparedRecord& pr = prepared->s_prepared()[i];
    sigs[i] = SelectSignature(pr.pebbles, pr.num_tokens, sig_options);
  }

  // Build both indexes over the same signatures, timed separately. The
  // CSR build honestly includes its staging pass — freezing is not free
  // and the bench exists to show the probe side pays it back.
  WallTimer build_timer;
  InvertedIndex legacy;
  for (uint32_t j = 0; j < sigs.size(); ++j) legacy.Add(j, sigs[j].keys);
  double legacy_build = build_timer.Seconds();

  build_timer.Restart();
  InvertedIndex staging;
  for (uint32_t j = 0; j < sigs.size(); ++j) staging.Add(j, sigs[j].keys);
  CsrIndex csr = CsrIndex::Freeze(staging);
  double csr_build = build_timer.Seconds();

  ProbeOutcome legacy_probe = ProbeLegacy(sigs, legacy, repeat);
  ProbeOutcome csr_probe = ProbeCsr(sigs, csr, repeat);

  if (legacy_probe.candidates != csr_probe.candidates ||
      legacy_probe.postings_visited != csr_probe.postings_visited) {
    std::fprintf(stderr,
                 "PARITY FAILURE: legacy candidates=%llu postings=%llu vs "
                 "csr candidates=%llu postings=%llu\n",
                 static_cast<unsigned long long>(legacy_probe.candidates),
                 static_cast<unsigned long long>(legacy_probe.postings_visited),
                 static_cast<unsigned long long>(csr_probe.candidates),
                 static_cast<unsigned long long>(csr_probe.postings_visited));
    return 2;
  }

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  report.runs.push_back(MakeRun("legacy-map", legacy_probe, legacy_build,
                                records.size(), theta, tau, repeat));
  report.runs.push_back(MakeRun("csr", csr_probe, csr_build, records.size(),
                                theta, tau, repeat));

  double speedup = csr_probe.seconds > 0.0
                       ? legacy_probe.seconds / csr_probe.seconds
                       : 0.0;
  std::printf("index build: legacy=%.4fs csr=%.4fs (csr bytes=%zu)\n",
              legacy_build, csr_build, csr.memory_bytes());
  std::printf(
      "probe (%d sweeps, %llu candidates/sweep): legacy=%.4fs csr=%.4fs "
      "-> speedup %.2fx\n",
      repeat, static_cast<unsigned long long>(csr_probe.candidates),
      legacy_probe.seconds, csr_probe.seconds, speedup);

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(),
              report.runs.size());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: csr probe speedup %.2fx below the "
                 "--min_speedup=%.2f gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
