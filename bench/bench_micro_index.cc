// Candidate-generation micro-bench: legacy hash-map inverted index vs
// the frozen CSR index (index/csr_index.h), and — within the CSR
// path — the scalar probe kernel vs the best vector kernel the host
// supports (src/kernels/). Builds one PreparedIndex over a generated
// corpus, selects every record's signature once, then measures the two
// halves of the hot path separately for each variant:
//
//   build  — staging the postings (and, for CSR, freezing them)
//   probe  — candidate generation for every record, repeated --repeat
//            times: per-key posting lookups + hash-map overlap counting
//            (legacy) vs sequential posting-run merges + epoch-stamped
//            counting + required-overlap select, forced onto one
//            kernel per CSR variant (csr-scalar, csr-avx2, ...)
//
// Every variant must produce identical candidate and visited-posting
// counts (the bench exits non-zero otherwise — it doubles as a parity
// check), and the report lands in BENCH_<name>.json with the
// index_build_seconds / probe_records_per_sec / probe_postings_per_sec
// / kernel / probe_speedup fields documented in docs/bench-schema.md.
//
// Two independent CI gates:
//   --min_csr_speedup=<x>  the csr-scalar probe must be at least x
//                          times the legacy-map throughput
//   --min_speedup=<x>      the vector-kernel probe must be at least x
//                          times the csr-scalar throughput (fails when
//                          no vector kernel is available, so CI also
//                          asserts SIMD dispatch actually happened)
//
// Typical invocation:
//   bench_micro_index --name=micro_index --profile=med --strings=300 \
//     --theta=0.7 --tau=2 --repeat=20 --min_csr_speedup=1.5 \
//     --min_speedup=1.3

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "index/csr_index.h"
#include "index/inverted_index.h"
#include "index/prepared_index.h"
#include "join/signature.h"
#include "kernels/kernels.h"
#include "util/timer.h"

namespace aujoin {
namespace {

struct ProbeOutcome {
  uint64_t candidates = 0;        // per sweep over every record
  uint64_t postings_visited = 0;  // per sweep, after the self-pair skip
  double seconds = 0.0;           // total over every repeat
};

/// The pre-CSR candidate generation, kept verbatim as the baseline: an
/// unordered_map posting index probed key by key, overlaps deduped and
/// counted through a second per-record unordered_map.
ProbeOutcome ProbeLegacy(const std::vector<Signature>& sigs,
                         const InvertedIndex& index, int repeat) {
  ProbeOutcome out;
  std::unordered_map<uint32_t, const Signature*> sig_by_id;
  sig_by_id.reserve(sigs.size());
  for (uint32_t j = 0; j < sigs.size(); ++j) sig_by_id.emplace(j, &sigs[j]);
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    uint64_t candidates = 0, visited = 0;
    std::unordered_map<uint32_t, int> overlap;
    for (uint32_t s_id = 0; s_id < sigs.size(); ++s_id) {
      overlap.clear();
      for (uint64_t key : sigs[s_id].keys) {
        const std::vector<uint32_t>* postings = index.Find(key);
        if (postings == nullptr) continue;
        for (uint32_t t_id : *postings) {
          if (t_id <= s_id) continue;  // self-join pair dedup
          ++visited;
          ++overlap[t_id];
        }
      }
      for (const auto& [t_id, count] : overlap) {
        if (count >= MergeRequiredOverlap(sigs[s_id], *sig_by_id.at(t_id))) {
          ++candidates;
        }
      }
    }
    out.candidates = candidates;
    out.postings_visited = visited;
  }
  out.seconds = timer.Seconds();
  return out;
}

/// The shipped path on one forced kernel: frozen CSR posting runs (the
/// self-pair prefix dropped with one upper_bound cut, exactly the
/// join's dense self-probe) merged through the epoch-stamped
/// CandidateAccumulator, survivors selected by the merged
/// required-overlap kernel.
ProbeOutcome ProbeCsr(const std::vector<Signature>& sigs,
                      const std::vector<uint32_t>& taus, const CsrIndex& index,
                      const KernelOps* kernel, int repeat) {
  ProbeOutcome out;
  ForceKernelForTesting(kernel);
  WallTimer timer;
  CandidateAccumulator overlap;
  for (int r = 0; r < repeat; ++r) {
    uint64_t candidates = 0, visited = 0;
    for (uint32_t s_id = 0; s_id < sigs.size(); ++s_id) {
      overlap.Begin(sigs.size());
      for (uint64_t key : sigs[s_id].keys) {
        CsrIndex::Postings run = index.Find(key);
        const uint32_t* cut = std::upper_bound(run.begin(), run.end(), s_id);
        const size_t kept = static_cast<size_t>(run.end() - cut);
        visited += kept;
        overlap.BumpRun(cut, kept);
      }
      candidates +=
          overlap
              .SelectMergedGE(taus.data(),
                              static_cast<uint32_t>(sigs[s_id].effective_tau))
              .size();
    }
    out.candidates = candidates;
    out.postings_visited = visited;
  }
  out.seconds = timer.Seconds();
  ForceKernelForTesting(nullptr);
  return out;
}

BenchRun MakeRun(const std::string& variant, const ProbeOutcome& probe,
                 double build_seconds, size_t num_records, double theta,
                 int tau, int repeat, const char* kernel) {
  BenchRun run;
  run.algorithm = "index_probe";
  run.variant = variant;
  run.measures = "TJS";
  run.theta = theta;
  run.tau = tau;
  run.threads = 1;
  run.num_records = num_records;
  run.ok = true;
  run.stats.candidates = probe.candidates;
  run.stats.processed_pairs = probe.postings_visited;
  run.stats.filter_seconds = probe.seconds;
  run.wall_seconds = probe.seconds;
  run.total_seconds = build_seconds + probe.seconds;
  run.has_index_micro = true;
  run.index_build_seconds = build_seconds;
  double per_sweep = probe.seconds / repeat;
  if (per_sweep > 0.0) {
    run.probe_records_per_sec = static_cast<double>(num_records) / per_sweep;
    run.probe_postings_per_sec =
        static_cast<double>(probe.postings_visited) / per_sweep;
  }
  if (kernel != nullptr) run.kernel = kernel;
  run.peak_rss_bytes = CurrentPeakRssBytes();
  return run;
}

bool SameOutcome(const ProbeOutcome& a, const ProbeOutcome& b) {
  return a.candidates == b.candidates &&
         a.postings_visited == b.postings_visited;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "micro_index");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 300));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 2));
  int repeat = static_cast<int>(flags.GetInt("repeat", 20));
  double min_csr_speedup = flags.GetDouble("min_csr_speedup", 0.0);
  double min_speedup = flags.GetDouble("min_speedup", 0.0);
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("candidate-index micro-bench", "hot path of Algorithms 3/6",
              "frozen CSR + vector kernels beat the pointer-chasing map");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d repeat=%d\n",
              profile.c_str(), strings, theta, tau, repeat);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;
  auto prepared = PreparedIndex::Build(world->knowledge(),
                                       MsimOptions{.q = 3}, records, nullptr);

  SignatureOptions sig_options;
  sig_options.theta = theta;
  sig_options.tau = tau;
  std::vector<Signature> sigs(records.size());
  std::vector<uint32_t> taus(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const PreparedRecord& pr = prepared->s_prepared()[i];
    sigs[i] = SelectSignature(pr.pebbles, pr.num_tokens, sig_options);
    taus[i] = static_cast<uint32_t>(sigs[i].effective_tau);
  }

  // Build both indexes over the same signatures, timed separately. The
  // CSR build honestly includes its staging pass — freezing is not free
  // and the bench exists to show the probe side pays it back.
  WallTimer build_timer;
  InvertedIndex legacy;
  for (uint32_t j = 0; j < sigs.size(); ++j) legacy.Add(j, sigs[j].keys);
  double legacy_build = build_timer.Seconds();

  build_timer.Restart();
  InvertedIndex staging;
  for (uint32_t j = 0; j < sigs.size(); ++j) staging.Add(j, sigs[j].keys);
  CsrIndex csr = CsrIndex::Freeze(staging);
  double csr_build = build_timer.Seconds();

  // The kernel race: scalar always, plus the best non-scalar variant
  // this host registers (AvailableKernels lists widest last).
  const KernelOps* scalar = &ScalarKernel();
  const KernelOps* vector_kernel = nullptr;
  for (const KernelOps* kernel : AvailableKernels()) {
    if (kernel->kind != KernelKind::kScalar) vector_kernel = kernel;
  }
  if (ForceScalarEnvRequested()) {
    std::printf("AUJOIN_FORCE_SCALAR set: racing only the scalar kernel\n");
    vector_kernel = nullptr;
  }

  ProbeOutcome legacy_probe = ProbeLegacy(sigs, legacy, repeat);
  ProbeOutcome scalar_probe = ProbeCsr(sigs, taus, csr, scalar, repeat);
  ProbeOutcome vector_probe;
  if (vector_kernel != nullptr) {
    vector_probe = ProbeCsr(sigs, taus, csr, vector_kernel, repeat);
  }

  if (!SameOutcome(legacy_probe, scalar_probe) ||
      (vector_kernel != nullptr && !SameOutcome(scalar_probe, vector_probe))) {
    std::fprintf(
        stderr,
        "PARITY FAILURE: legacy candidates=%llu postings=%llu / "
        "csr-scalar candidates=%llu postings=%llu / "
        "csr-%s candidates=%llu postings=%llu\n",
        static_cast<unsigned long long>(legacy_probe.candidates),
        static_cast<unsigned long long>(legacy_probe.postings_visited),
        static_cast<unsigned long long>(scalar_probe.candidates),
        static_cast<unsigned long long>(scalar_probe.postings_visited),
        vector_kernel != nullptr ? vector_kernel->name : "none",
        static_cast<unsigned long long>(vector_probe.candidates),
        static_cast<unsigned long long>(vector_probe.postings_visited));
    return 2;
  }

  double csr_speedup = scalar_probe.seconds > 0.0
                           ? legacy_probe.seconds / scalar_probe.seconds
                           : 0.0;
  double kernel_speedup =
      vector_kernel != nullptr && vector_probe.seconds > 0.0
          ? scalar_probe.seconds / vector_probe.seconds
          : 0.0;

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  report.runs.push_back(MakeRun("legacy-map", legacy_probe, legacy_build,
                                records.size(), theta, tau, repeat, nullptr));
  report.runs.push_back(MakeRun("csr-scalar", scalar_probe, csr_build,
                                records.size(), theta, tau, repeat,
                                scalar->name));
  if (vector_kernel != nullptr) {
    BenchRun run = MakeRun(std::string("csr-") + vector_kernel->name,
                           vector_probe, csr_build, records.size(), theta,
                           tau, repeat, vector_kernel->name);
    run.probe_speedup = kernel_speedup;
    report.runs.push_back(std::move(run));
  }

  std::printf("index build: legacy=%.4fs csr=%.4fs (csr bytes=%zu)\n",
              legacy_build, csr_build, csr.memory_bytes());
  std::printf(
      "probe (%d sweeps, %llu candidates/sweep): legacy=%.4fs "
      "csr-scalar=%.4fs -> speedup %.2fx\n",
      repeat, static_cast<unsigned long long>(scalar_probe.candidates),
      legacy_probe.seconds, scalar_probe.seconds, csr_speedup);
  if (vector_kernel != nullptr) {
    std::printf("kernel race: csr-scalar=%.4fs csr-%s=%.4fs -> speedup "
                "%.2fx\n",
                scalar_probe.seconds, vector_kernel->name,
                vector_probe.seconds, kernel_speedup);
  } else {
    std::printf("kernel race: skipped (no vector kernel on this host)\n");
  }

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(),
              report.runs.size());

  if (min_csr_speedup > 0.0 && csr_speedup < min_csr_speedup) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: csr probe speedup %.2fx below the "
                 "--min_csr_speedup=%.2f gate\n",
                 csr_speedup, min_csr_speedup);
    return 1;
  }
  if (min_speedup > 0.0) {
    if (vector_kernel == nullptr) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: --min_speedup=%.2f requires a vector "
                   "kernel, but only scalar is available\n",
                   min_speedup);
      return 1;
    }
    if (kernel_speedup < min_speedup) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: csr-%s probe speedup %.2fx over scalar "
                   "below the --min_speedup=%.2f gate\n",
                   vector_kernel->name, kernel_speedup, min_speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
