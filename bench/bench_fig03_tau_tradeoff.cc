// Reproduces Figure 3: how the overlap constraint tau affects (a) average
// signature length, (b) candidate count and (c) total join time, across
// join thresholds, on a MED-like corpus (the paper uses two 20K MED
// subsets).
//
// Expected shape (paper): signatures grow with tau; candidates shrink with
// tau; join time is minimised at an interior tau that depends on theta.

#include <cstdio>

#include "bench_common.h"
#include "join/join.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.85, 0.95});
  auto taus = flags.GetIntList("tau", {1, 2, 3, 4, 5});

  PrintBanner("E3 overlap-constraint trade-off", "Figure 3",
              "signature length grows with tau, candidates shrink, join "
              "time has an interior minimum");
  auto world = BuildWorld("med", n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);

  std::printf("%-6s %-4s | %12s %12s %12s\n", "theta", "tau", "avg_sig_len",
              "candidates", "join_time_s");
  for (double theta : thetas) {
    for (int64_t tau : taus) {
      JoinOptions options;
      options.theta = theta;
      options.tau = static_cast<int>(tau);
      options.method =
          tau == 1 ? FilterMethod::kUFilter : FilterMethod::kAuHeuristic;
      WallTimer timer;
      JoinResult result = UnifiedJoin(context, options);
      double seconds = timer.Seconds();
      std::printf("%-6.2f %-4lld | %12.1f %12llu %12.3f\n", theta,
                  static_cast<long long>(tau),
                  result.stats.avg_signature_pebbles,
                  static_cast<unsigned long long>(result.stats.candidates),
                  seconds);
    }
  }
  return 0;
}
