// Reproduces Figure 8: number of estimation iterations and total
// suggestion time as a function of the Bernoulli sampling probability
// (theta = 0.8, n* = 10, 70% confidence as in the paper's caption).
//
// Expected shape (paper): iterations fall as the probability grows, but
// per-iteration cost rises, so the total time is non-monotone with an
// interior optimum.

#include <cstdio>

#include "bench_common.h"
#include "tuner/recommend.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 1500));
  double theta = flags.GetDouble("theta", 0.80);
  auto probs = flags.GetDoubleList(
      "prob", {0.001, 0.002, 0.005, 0.01, 0.03, 0.08});
  int runs = static_cast<int>(flags.GetInt("runs", 3));

  PrintBanner("E11 sampling probability vs suggestion cost", "Figure 8",
              "iterations decrease with sampling probability; total time "
              "is non-monotone (interior optimum)");
  auto world = BuildWorld("med", n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);
  JoinOptions join_opts;
  join_opts.method = FilterMethod::kAuHeuristic;
  join_opts.theta = theta;
  CostModel model = CalibrateCostModel(context, join_opts);

  std::printf("theta=%.2f n*=10 confidence=70%%\n", theta);
  std::printf("%-10s | %12s %14s\n", "prob", "iterations", "suggest_time_s");
  for (double p : probs) {
    double iters = 0, secs = 0;
    for (int run = 0; run < runs; ++run) {
      TunerOptions tuner;
      tuner.theta = theta;
      tuner.method = FilterMethod::kAuHeuristic;
      tuner.sample_prob_s = p;
      tuner.min_iterations = 10;
      tuner.max_iterations = 3000;
      tuner.confidence = 0.70;
      tuner.seed = 8000 + static_cast<uint64_t>(run) * 131;
      TauRecommendation rec = RecommendTau(context, model, tuner);
      iters += rec.iterations;
      secs += rec.seconds;
    }
    std::printf("%-10.4f | %12.1f %14.3f\n", p, iters / runs, secs / runs);
  }
  return 0;
}
