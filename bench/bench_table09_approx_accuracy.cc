// Reproduces Table 9: approximation accuracy of Algorithm 1 vs the exact
// exponential algorithm, as percentiles of the ratio approx/exact, while
// the maximal rule size k varies. Also prints the no-improvement ablation
// (plain SquareImp) that DESIGN.md calls out.
//
// Instances are adversarial in the style of Example 5 / Figure 2: many
// *overlapping* synonym rules connect random spans of the two strings, so
// segment choices conflict and the w-MIS local search can err. (Pairs
// derived from the corpus generator are too easy — rules rarely overlap —
// and both algorithms score 1.0 everywhere.)
//
// Expected shape (paper): high median accuracy, improving with k; the
// claw-improvement phase never hurts.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/usim.h"
#include "util/rng.h"
#include "util/stats.h"

namespace aujoin {
namespace {

// One adversarial instance: two strings plus a fresh rule set in which
// rule sides are random (mutually overlapping) spans of the strings.
struct Instance {
  Vocabulary vocab;
  RuleSet rules;
  Taxonomy empty_taxonomy;
  Record s;
  Record t;

  Knowledge knowledge() const {
    return Knowledge{&vocab, &rules, &empty_taxonomy};
  }
};

std::unique_ptr<Instance> MakeInstance(int k, Rng* rng) {
  auto inst = std::make_unique<Instance>();
  auto make_tokens = [&](const char* prefix, int count) {
    std::vector<TokenId> ids;
    std::string text;
    for (int i = 0; i < count; ++i) {
      std::string tok = std::string(prefix) + std::to_string(i);
      ids.push_back(inst->vocab.Intern(tok));
      if (!text.empty()) text += ' ';
      text += tok;
    }
    return std::make_pair(ids, text);
  };
  int ls = k + static_cast<int>(rng->Uniform(2, 4));
  int lt = k + static_cast<int>(rng->Uniform(1, 3));
  auto [s_ids, s_text] = make_tokens("s", ls);
  auto [t_ids, t_text] = make_tokens("t", lt);
  inst->s = MakeRecord(0, s_text, &inst->vocab);
  inst->t = MakeRecord(1, t_text, &inst->vocab);

  auto span_of = [&](const std::vector<TokenId>& ids) {
    int len = static_cast<int>(rng->Uniform(1, k));
    len = std::min<int>(len, static_cast<int>(ids.size()));
    int begin = static_cast<int>(
        rng->Uniform(0, static_cast<int64_t>(ids.size()) - len));
    return std::vector<TokenId>(ids.begin() + begin,
                                ids.begin() + begin + len);
  };
  int num_rules = static_cast<int>(rng->Uniform(6, 14));
  for (int r = 0; r < num_rules; ++r) {
    double closeness = 0.1 + 0.9 * rng->UniformReal();
    // Sides overlap with other rules' sides by construction.
    (void)inst->rules.AddRule(span_of(s_ids), span_of(t_ids), closeness);
  }
  return inst;
}

struct Ratios {
  std::vector<double> with_improve;
  std::vector<double> no_improve;
};

Ratios CollectRatios(int k, size_t num_pairs, uint64_t seed) {
  Rng rng(seed);
  Ratios out;
  while (out.with_improve.size() < num_pairs) {
    auto inst = MakeInstance(k, &rng);
    MsimOptions msim;
    msim.measures = kMeasureSynonym;  // isolate the hard rule conflicts
    msim.exact_match = false;

    UsimOptions exact_opts;
    exact_opts.msim = msim;
    UsimComputer exact_computer(inst->knowledge(), exact_opts);
    auto exact =
        exact_computer.Exact(inst->s, inst->t,
                             {.max_partitions_per_string = 512,
                              .max_pairs = 60000});
    if (!exact.exact || exact.value <= 1e-12) continue;

    UsimOptions approx_opts;
    approx_opts.msim = msim;
    approx_opts.squareimp.max_talons = 3;
    UsimComputer approx(inst->knowledge(), approx_opts);
    out.with_improve.push_back(
        std::min(1.0, approx.Approx(inst->s, inst->t) / exact.value));

    UsimOptions ablation_opts;
    ablation_opts.msim = msim;
    ablation_opts.enable_improvement = false;
    UsimComputer ablation(inst->knowledge(), ablation_opts);
    out.no_improve.push_back(
        std::min(1.0, ablation.Approx(inst->s, inst->t) / exact.value));
  }
  return out;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 120));
  auto ks = flags.GetIntList("k", {3, 4, 5, 6, 7, 8, 9, 10});
  aujoin::PrintBanner("E2 approximation accuracy vs rule size k", "Table 9",
                      "high median accuracy improving with k; improvement "
                      "phase never hurts");
  std::printf("%-4s %-6s | %6s %6s %6s %6s %6s | %8s\n", "k", "pairs", "2%",
              "25%", "50%", "75%", "98%", "noimp50%");
  for (int64_t k : ks) {
    auto ratios = aujoin::CollectRatios(static_cast<int>(k), pairs,
                                        900 + static_cast<uint64_t>(k));
    if (ratios.with_improve.empty()) continue;
    std::printf("%-4lld %-6zu | %6.2f %6.2f %6.2f %6.2f %6.2f | %8.2f\n",
                static_cast<long long>(k), ratios.with_improve.size(),
                aujoin::Percentile(ratios.with_improve, 2),
                aujoin::Percentile(ratios.with_improve, 25),
                aujoin::Percentile(ratios.with_improve, 50),
                aujoin::Percentile(ratios.with_improve, 75),
                aujoin::Percentile(ratios.with_improve, 98),
                aujoin::Percentile(ratios.no_improve, 50));
  }
  return 0;
}
