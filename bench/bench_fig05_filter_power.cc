// Reproduces Figure 5: filtering power (average signature length and
// candidate count) of U-Filter / AU-heuristic / AU-DP across overlap
// constraints at theta = 0.85, on MED-like and WIKI-like corpora.
//
// Expected shape (paper): AU-DP produces the shortest signatures and the
// fewest candidates; U-Filter is flat (tau fixed at 1).

#include <cstdio>

#include "bench_common.h"
#include "join/join.h"

namespace aujoin {
namespace {

void RunDataset(const std::string& dataset, size_t n, double theta,
                const std::vector<int64_t>& taus) {
  auto world = BuildWorld(dataset, n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);

  std::printf("\n[%s-like] strings=%zu theta=%.2f\n", dataset.c_str(),
              world->corpus.records.size(), theta);
  std::printf("%-4s | %-10s %-12s | %-10s %-12s | %-10s %-12s\n", "tau",
              "U sig", "U cand", "heur sig", "heur cand", "DP sig",
              "DP cand");
  for (int64_t tau : taus) {
    std::printf("%-4lld |", static_cast<long long>(tau));
    for (FilterMethod method :
         {FilterMethod::kUFilter, FilterMethod::kAuHeuristic,
          FilterMethod::kAuDp}) {
      SignatureOptions sig;
      sig.theta = theta;
      sig.tau = static_cast<int>(tau);
      sig.method = method;
      auto out = context.RunFilter(sig);
      std::printf(" %-10.1f %-12zu %s", out.avg_signature_pebbles,
                  out.candidates.size(),
                  method == FilterMethod::kAuDp ? "" : "|");
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 1500));
  double theta = flags.GetDouble("theta", 0.85);
  auto taus = flags.GetIntList("tau", {1, 2, 4, 6, 8});
  aujoin::PrintBanner("E5 filtering power", "Figure 5",
                      "AU-DP prunes most (70-90% fewer candidate pairs); "
                      "signatures grow with tau");
  aujoin::RunDataset("med", n, theta, taus);
  aujoin::RunDataset("wiki", n, theta, taus);
  return 0;
}
