// Reproduces Table 10: AU-Filter (DP) join time broken into suggestion,
// filtering (incl. signature selection) and verification, as the dataset
// grows.
//
// Expected shape (paper): filtering and verification grow roughly linearly
// with size; the suggestion cost is nearly constant (small samples).

#include <cstdio>

#include "bench_common.h"
#include "tuner/recommend.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  auto sizes = flags.GetIntList("sizes", {500, 1000, 1500, 2000});
  double theta = flags.GetDouble("theta", 0.90);

  PrintBanner("E8 time breakdown (AU-DP + suggestion)", "Table 10",
              "filter/verify grow ~linearly; suggestion cost ~constant and "
              "small");
  std::printf("theta=%.2f\n", theta);
  std::printf("%-8s | %12s %12s %12s | %6s\n", "size", "suggest_s",
              "filter_s", "verify_s", "tau*");
  for (int64_t size : sizes) {
    auto world = BuildWorld("med", static_cast<size_t>(size), size / 10);
    JoinContext context(world->knowledge(), MsimOptions{.q = 3});
    context.Prepare(world->corpus.records, nullptr);
    JoinOptions options;
    options.theta = theta;
    options.method = FilterMethod::kAuDp;
    TunerOptions tuner;
    tuner.theta = theta;
    tuner.method = FilterMethod::kAuDp;
    tuner.sample_prob_s = 0.05;
    tuner.min_iterations = 5;
    tuner.max_iterations = 25;
    TauRecommendation rec;
    JoinResult result = JoinWithSuggestedTau(context, options, tuner, &rec);
    std::printf("%-8lld | %12.3f %12.3f %12.3f | %6d\n",
                static_cast<long long>(size), result.stats.suggest_seconds,
                result.stats.signature_seconds + result.stats.filter_seconds,
                result.stats.verify_seconds, rec.best_tau);
  }
  return 0;
}
