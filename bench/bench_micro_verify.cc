// Verify-stage micro-bench: the two kernels the verification hot path
// dispatches through (src/kernels/) raced scalar vs the best vector
// variant the host supports:
//
//   intersect  — sorted-uint32 set intersection over generated gram-id
//                set pairs shaped like the verify stage's per-string
//                q-gram sets (the Jaccard/Cosine/Dice overlap core and
//                the AdaptJoin verify predicate)
//   accumulate — gathered weight accumulation over PairGraph-style
//                weight arrays (the SquareImp / claw-improvement sums)
//
// Every registered kernel must produce byte-identical intersection
// output and bit-identical accumulation sums (the bench exits non-zero
// otherwise — it doubles as a cross-kernel parity check), and the
// report lands in BENCH_<name>.json with the intersect_elems_per_sec /
// accumulate_elems_per_sec / kernel / verify_speedup fields documented
// in docs/bench-schema.md.
//
// CI gate:
//   --min_speedup=<x>  the best vector kernel's intersection sweep must
//                      be at least x times the scalar throughput (fails
//                      when no vector kernel is available, so CI also
//                      asserts SIMD dispatch actually happened)
//
// Typical invocation:
//   bench_micro_verify --name=micro_verify --pairs=2000 --repeat=20 \
//     --min_speedup=1.2

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "kernels/kernels.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

namespace aujoin {
namespace {

struct IdSetPair {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
};

// Sorted distinct id sets with verify-like shapes: sizes spread across
// [min_len, max_len], draws from a universe sized for a ~30-60% overlap
// between the two sides of a pair.
std::vector<IdSetPair> MakePairs(size_t pairs, size_t min_len, size_t max_len,
                                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> len_dist(min_len, max_len);
  std::vector<IdSetPair> out(pairs);
  for (IdSetPair& p : out) {
    size_t na = len_dist(rng), nb = len_dist(rng);
    uint32_t universe = static_cast<uint32_t>(2 * std::max(na, nb) + 1);
    std::uniform_int_distribution<uint32_t> id_dist(0, universe);
    auto make = [&](size_t n) {
      std::vector<uint32_t> v(n);
      for (uint32_t& x : v) x = id_dist(rng);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };
    p.a = make(na);
    p.b = make(nb);
  }
  return out;
}

struct SweepOutcome {
  uint64_t checksum = 0;  // per sweep; parity across kernels
  uint64_t elems = 0;     // elements touched per sweep
  double seconds = 0.0;   // total over every repeat
};

SweepOutcome IntersectSweep(const std::vector<IdSetPair>& pairs,
                            const KernelOps* kernel, int repeat) {
  SweepOutcome out;
  size_t max_len = 0;
  for (const IdSetPair& p : pairs) max_len = std::max(max_len, p.a.size());
  AlignedBuffer<uint32_t> scratch(max_len + kKernelLaneSlack);
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    uint64_t checksum = 0, elems = 0;
    for (const IdSetPair& p : pairs) {
      uint32_t* end = kernel->intersect_sorted(p.a.data(), p.a.size(),
                                               p.b.data(), p.b.size(),
                                               scratch.data());
      size_t matched = static_cast<size_t>(end - scratch.data());
      // Checksum over values, not just counts: a kernel emitting the
      // wrong elements with the right cardinality still trips parity.
      for (size_t k = 0; k < matched; ++k) checksum += scratch.data()[k] + 1;
      elems += p.a.size() + p.b.size();
    }
    out.checksum = checksum;
    out.elems = elems;
  }
  out.seconds = timer.Seconds();
  return out;
}

SweepOutcome AccumulateSweep(const std::vector<double>& weights,
                             const std::vector<std::vector<uint32_t>>& gathers,
                             const KernelOps* kernel, int repeat) {
  SweepOutcome out;
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    double sum = 0.0;
    uint64_t elems = 0;
    for (const std::vector<uint32_t>& idx : gathers) {
      sum += kernel->accumulate_weights(weights.data(), idx.data(),
                                        idx.size());
      elems += idx.size();
    }
    // The contract is bit-identical doubles, so the bit pattern IS the
    // parity checksum.
    uint64_t bits;
    std::memcpy(&bits, &sum, sizeof(bits));
    out.checksum = bits;
    out.elems = elems;
  }
  out.seconds = timer.Seconds();
  return out;
}

BenchRun MakeRun(const std::string& variant, const char* kernel,
                 const SweepOutcome& intersect, const SweepOutcome& accumulate,
                 int repeat) {
  BenchRun run;
  run.algorithm = "verify_kernels";
  run.variant = variant;
  run.measures = "TJS";
  run.threads = 1;
  run.ok = true;
  run.total_seconds = intersect.seconds + accumulate.seconds;
  run.wall_seconds = run.total_seconds;
  run.has_verify_micro = true;
  run.kernel = kernel;
  double intersect_sweep = intersect.seconds / repeat;
  if (intersect_sweep > 0.0) {
    run.intersect_elems_per_sec =
        static_cast<double>(intersect.elems) / intersect_sweep;
  }
  double accumulate_sweep = accumulate.seconds / repeat;
  if (accumulate_sweep > 0.0) {
    run.accumulate_elems_per_sec =
        static_cast<double>(accumulate.elems) / accumulate_sweep;
  }
  run.peak_rss_bytes = CurrentPeakRssBytes();
  return run;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "micro_verify");
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 2000));
  size_t min_len = static_cast<size_t>(flags.GetInt("min_len", 64));
  size_t max_len = static_cast<size_t>(flags.GetInt("max_len", 512));
  int repeat = static_cast<int>(flags.GetInt("repeat", 20));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  double min_speedup = flags.GetDouble("min_speedup", 0.0);
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("verify-kernel micro-bench", "hot path of the verify stage",
              "vectorized set intersection + weight accumulation");
  std::printf("workload: pairs=%zu len=[%zu,%zu] seed=%llu repeat=%d\n",
              pairs, min_len, max_len,
              static_cast<unsigned long long>(seed), repeat);

  std::vector<IdSetPair> id_pairs = MakePairs(pairs, min_len, max_len, seed);
  // One PairGraph-sized weight array, gathered through index lists of
  // claw-neighbourhood sizes (most are small; a few span the graph).
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_real_distribution<double> w_dist(0.0, 1.0);
  std::vector<double> weights(4096);
  for (double& w : weights) w = w_dist(rng);
  std::uniform_int_distribution<uint32_t> v_dist(
      0, static_cast<uint32_t>(weights.size() - 1));
  std::vector<std::vector<uint32_t>> gathers(pairs);
  for (size_t g = 0; g < gathers.size(); ++g) {
    size_t n = (g % 16 == 0) ? 1024 : 2 + g % 30;
    gathers[g].resize(n);
    for (uint32_t& v : gathers[g]) v = v_dist(rng);
  }

  const KernelOps* scalar = &ScalarKernel();
  const KernelOps* vector_kernel = nullptr;
  for (const KernelOps* kernel : AvailableKernels()) {
    if (kernel->kind != KernelKind::kScalar) vector_kernel = kernel;
  }
  if (ForceScalarEnvRequested()) {
    std::printf("AUJOIN_FORCE_SCALAR set: racing only the scalar kernel\n");
    vector_kernel = nullptr;
  }

  // Cross-kernel parity first (one sweep per registered kernel), then
  // the timed race on scalar vs the widest variant.
  SweepOutcome scalar_intersect = IntersectSweep(id_pairs, scalar, 1);
  SweepOutcome scalar_accumulate = AccumulateSweep(weights, gathers, scalar, 1);
  for (const KernelOps* kernel : AvailableKernels()) {
    SweepOutcome i = IntersectSweep(id_pairs, kernel, 1);
    SweepOutcome a = AccumulateSweep(weights, gathers, kernel, 1);
    if (i.checksum != scalar_intersect.checksum ||
        a.checksum != scalar_accumulate.checksum) {
      std::fprintf(stderr,
                   "PARITY FAILURE: kernel %s disagrees with scalar "
                   "(intersect %llu vs %llu, accumulate bits %llx vs %llx)\n",
                   kernel->name,
                   static_cast<unsigned long long>(i.checksum),
                   static_cast<unsigned long long>(scalar_intersect.checksum),
                   static_cast<unsigned long long>(a.checksum),
                   static_cast<unsigned long long>(scalar_accumulate.checksum));
      return 2;
    }
  }

  scalar_intersect = IntersectSweep(id_pairs, scalar, repeat);
  scalar_accumulate = AccumulateSweep(weights, gathers, scalar, repeat);
  SweepOutcome vector_intersect, vector_accumulate;
  if (vector_kernel != nullptr) {
    vector_intersect = IntersectSweep(id_pairs, vector_kernel, repeat);
    vector_accumulate = AccumulateSweep(weights, gathers, vector_kernel,
                                        repeat);
  }

  double intersect_speedup =
      vector_kernel != nullptr && vector_intersect.seconds > 0.0
          ? scalar_intersect.seconds / vector_intersect.seconds
          : 0.0;

  BenchReport report;
  report.name = name;
  report.runs.push_back(MakeRun("verify-scalar", scalar->name,
                                scalar_intersect, scalar_accumulate, repeat));
  if (vector_kernel != nullptr) {
    BenchRun run = MakeRun(std::string("verify-") + vector_kernel->name,
                           vector_kernel->name, vector_intersect,
                           vector_accumulate, repeat);
    run.verify_speedup = intersect_speedup;
    report.runs.push_back(std::move(run));
  }

  std::printf("intersect (%d sweeps, %llu ids/sweep): scalar=%.4fs",
              repeat, static_cast<unsigned long long>(scalar_intersect.elems),
              scalar_intersect.seconds);
  if (vector_kernel != nullptr) {
    std::printf(" %s=%.4fs -> speedup %.2fx\n", vector_kernel->name,
                vector_intersect.seconds, intersect_speedup);
  } else {
    std::printf(" (no vector kernel on this host)\n");
  }
  std::printf("accumulate (%d sweeps, %llu gathers/sweep): scalar=%.4fs",
              repeat,
              static_cast<unsigned long long>(scalar_accumulate.elems),
              scalar_accumulate.seconds);
  if (vector_kernel != nullptr) {
    double accumulate_speedup =
        vector_accumulate.seconds > 0.0
            ? scalar_accumulate.seconds / vector_accumulate.seconds
            : 0.0;
    std::printf(" %s=%.4fs -> speedup %.2fx\n", vector_kernel->name,
                vector_accumulate.seconds, accumulate_speedup);
  } else {
    std::printf("\n");
  }

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), report.runs.size());

  if (min_speedup > 0.0) {
    if (vector_kernel == nullptr) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: --min_speedup=%.2f requires a vector "
                   "kernel, but only scalar is available\n",
                   min_speedup);
      return 1;
    }
    if (intersect_speedup < min_speedup) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: %s intersection speedup %.2fx over "
                   "scalar below the --min_speedup=%.2f gate\n",
                   vector_kernel->name, intersect_speedup, min_speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
