#include "harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace aujoin {
namespace {

/// Appends a JSON string literal (quotes, backslashes and control bytes
/// escaped).
void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  // %g never emits a decimal point for integral values; keep the output
  // unambiguously numeric JSON either way (1e+06 and 42 are both valid).
  *out += buf;
}

void AppendUint(uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

}  // namespace

uint64_t CurrentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string BenchReport::ToJson() const {
  std::string out;
  out.reserve(1024 + runs.size() * 512);
  out += "{\n  \"schema_version\": 1,\n  \"name\": ";
  AppendJsonString(name, &out);
  out += ",\n  \"profile\": ";
  AppendJsonString(profile, &out);
  out += ",\n  \"num_records\": ";
  AppendUint(num_records, &out);
  out += ",\n  \"num_truth_pairs\": ";
  AppendUint(num_truth_pairs, &out);
  out += ",\n  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& run = runs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"algorithm\": ";
    AppendJsonString(run.algorithm, &out);
    out += ", \"variant\": ";
    AppendJsonString(run.variant, &out);
    out += ", \"measures\": ";
    AppendJsonString(run.measures, &out);
    out += ",\n     \"theta\": ";
    AppendDouble(run.theta, &out);
    out += ", \"tau\": ";
    AppendDouble(run.tau, &out);
    out += ", \"threads\": ";
    AppendDouble(run.threads, &out);
    out += ", \"max_partition_records\": ";
    AppendUint(run.max_partition_records, &out);
    out += ", \"num_records\": ";
    AppendUint(run.num_records, &out);
    out += ",\n     \"ok\": ";
    out += run.ok ? "true" : "false";
    out += ", \"error\": ";
    AppendJsonString(run.error, &out);
    out += ",\n     \"prepare_seconds\": ";
    AppendDouble(run.stats.prepare_seconds, &out);
    out += ", \"signature_seconds\": ";
    AppendDouble(run.stats.signature_seconds, &out);
    out += ", \"filter_seconds\": ";
    AppendDouble(run.stats.filter_seconds, &out);
    out += ", \"verify_seconds\": ";
    AppendDouble(run.stats.verify_seconds, &out);
    out += ", \"suggest_seconds\": ";
    AppendDouble(run.stats.suggest_seconds, &out);
    out += ", \"total_seconds\": ";
    AppendDouble(run.total_seconds, &out);
    out += ", \"wall_seconds\": ";
    AppendDouble(run.wall_seconds, &out);
    out += ",\n     \"processed_pairs\": ";
    AppendUint(run.stats.processed_pairs, &out);
    out += ", \"candidates\": ";
    AppendUint(run.stats.candidates, &out);
    out += ", \"results\": ";
    AppendUint(run.stats.results, &out);
    out += ", \"partitions\": ";
    AppendUint(run.stats.partitions, &out);
    out += ", \"partition_blocks\": ";
    AppendUint(run.stats.partition_blocks, &out);
    out += ", \"peak_rss_bytes\": ";
    AppendUint(run.peak_rss_bytes, &out);
    if (run.has_prf) {
      out += ",\n     \"precision\": ";
      AppendDouble(run.prf.precision, &out);
      out += ", \"recall\": ";
      AppendDouble(run.prf.recall, &out);
      out += ", \"f_measure\": ";
      AppendDouble(run.prf.f_measure, &out);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchReport::WriteJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  bool ok = written == json.size();
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

uint64_t BenchReport::TotalResults(const std::string& algorithm) const {
  uint64_t total = 0;
  for (const BenchRun& run : runs) {
    if (run.ok && run.algorithm == algorithm) total += run.stats.results;
  }
  return total;
}

std::vector<std::string> BenchReport::ZeroResultConfigurations() const {
  std::map<std::string, uint64_t> totals;
  for (const BenchRun& run : runs) {
    char label[160];
    std::snprintf(label, sizeof(label), "%s partition=%zu threads=%d",
                  run.algorithm.c_str(), run.max_partition_records,
                  run.threads);
    // Failed runs seed the group with zero (not skip it), so a
    // configuration that errors on every cell still trips the gate.
    totals[label] += run.ok ? run.stats.results : 0;
  }
  std::vector<std::string> zero;
  for (const auto& [label, total] : totals) {
    if (total == 0) zero.push_back(label);
  }
  return zero;
}

std::vector<BenchRun> BenchHarness::RunGrid(
    const BenchGrid& grid,
    const std::vector<std::pair<uint32_t, uint32_t>>* truth) {
  std::vector<std::string> algorithms = grid.algorithms;
  if (algorithms.empty()) {
    algorithms = AlgorithmRegistry::Global().Names();
  }
  std::vector<int> taus = grid.taus.empty() ? std::vector<int>{1} : grid.taus;
  std::vector<BenchRun> runs;
  for (int num_threads : grid.threads) {
    for (size_t partition_limit : grid.partition_limits) {
      Engine engine = EngineBuilder()
                          .SetKnowledge(knowledge_)
                          .SetMeasures(grid.measures)
                          .SetQ(grid.q)
                          .SetThreads(num_threads)
                          .SetMaxPartitionRecords(partition_limit)
                          .Build();
      engine.SetRecords(*records_);
      if (partition_limit == 0) {
        // Build the lazily-prepared context up front so the first
        // unified cell's wall_seconds measures the join, not the
        // one-time preparation (which stats.prepare_seconds reports
        // separately). Partitioned engines never use this context —
        // blocks prepare their own, charged to every run alike.
        engine.PreparedContext();
      }
      for (const std::string& algorithm : algorithms) {
        // tau only shapes the unified AU filters; one value is enough
        // for everything else.
        size_t tau_count = algorithm == "unified" ? taus.size() : size_t{1};
        for (double theta : grid.thetas) {
          for (size_t t = 0; t < tau_count; ++t) {
            BenchRun run;
            run.algorithm = algorithm;
            run.measures = grid.measures;
            run.theta = theta;
            run.tau = taus[t];
            run.threads = num_threads;
            run.max_partition_records = partition_limit;
            run.num_records = records_->size();

            EngineJoinOptions options;
            options.theta = theta;
            options.tau = taus[t];
            WallTimer wall;
            Result<JoinResult> result = engine.Join(algorithm, options);
            run.wall_seconds = wall.Seconds();
            if (result.ok()) {
              run.ok = true;
              run.stats = result->stats;
              run.total_seconds =
                  result->stats.TotalSeconds(/*include_prepare=*/true);
              if (truth != nullptr) {
                run.has_prf = true;
                run.prf = ComputePrf(result->pairs, *truth);
              }
            } else {
              run.error = result.status().ToString();
            }
            run.peak_rss_bytes = CurrentPeakRssBytes();
            runs.push_back(std::move(run));
          }
        }
      }
    }
  }
  return runs;
}

}  // namespace aujoin
