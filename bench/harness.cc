#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "util/json.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace aujoin {

uint64_t CurrentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string BenchReport::ToJson() const {
  std::string out;
  out.reserve(1024 + runs.size() * 512);
  out += "{\n  \"schema_version\": 1,\n  \"name\": ";
  AppendJsonString(name, &out);
  out += ",\n  \"profile\": ";
  AppendJsonString(profile, &out);
  out += ",\n  \"num_records\": ";
  AppendJsonUint(num_records, &out);
  out += ",\n  \"num_truth_pairs\": ";
  AppendJsonUint(num_truth_pairs, &out);
  if (!dataset_manifest_json.empty()) {
    out += ",\n  \"dataset\": ";
    out += dataset_manifest_json;
  }
  out += ",\n  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& run = runs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"algorithm\": ";
    AppendJsonString(run.algorithm, &out);
    out += ", \"variant\": ";
    AppendJsonString(run.variant, &out);
    out += ", \"measures\": ";
    AppendJsonString(run.measures, &out);
    out += ",\n     \"theta\": ";
    AppendJsonDouble(run.theta, &out);
    out += ", \"tau\": ";
    AppendJsonDouble(run.tau, &out);
    out += ", \"threads\": ";
    AppendJsonDouble(run.threads, &out);
    out += ", \"max_partition_records\": ";
    AppendJsonUint(run.max_partition_records, &out);
    out += ", \"num_records\": ";
    AppendJsonUint(run.num_records, &out);
    out += ",\n     \"ok\": ";
    out += run.ok ? "true" : "false";
    out += ", \"error\": ";
    AppendJsonString(run.error, &out);
    out += ",\n     \"prepare_seconds\": ";
    AppendJsonDouble(run.stats.prepare_seconds, &out);
    out += ", \"signature_seconds\": ";
    AppendJsonDouble(run.stats.signature_seconds, &out);
    out += ", \"filter_seconds\": ";
    AppendJsonDouble(run.stats.filter_seconds, &out);
    out += ", \"verify_seconds\": ";
    AppendJsonDouble(run.stats.verify_seconds, &out);
    out += ", \"suggest_seconds\": ";
    AppendJsonDouble(run.stats.suggest_seconds, &out);
    out += ", \"total_seconds\": ";
    AppendJsonDouble(run.total_seconds, &out);
    out += ", \"wall_seconds\": ";
    AppendJsonDouble(run.wall_seconds, &out);
    out += ",\n     \"processed_pairs\": ";
    AppendJsonUint(run.stats.processed_pairs, &out);
    out += ", \"candidates\": ";
    AppendJsonUint(run.stats.candidates, &out);
    out += ", \"results\": ";
    AppendJsonUint(run.stats.results, &out);
    out += ", \"partitions\": ";
    AppendJsonUint(run.stats.partitions, &out);
    out += ", \"partition_blocks\": ";
    AppendJsonUint(run.stats.partition_blocks, &out);
    out += ",\n     \"shards\": ";
    AppendJsonUint(run.stats.shards, &out);
    out += ", \"spill_runs\": ";
    AppendJsonUint(run.stats.spill_runs, &out);
    out += ", \"spill_pairs\": ";
    AppendJsonUint(run.stats.spill_pairs, &out);
    out += ", \"spill_bytes\": ";
    AppendJsonUint(run.stats.spill_bytes, &out);
    out += ",\n     \"index_seconds\": ";
    AppendJsonDouble(run.stats.index_seconds, &out);
    out += ", \"queries\": ";
    AppendJsonUint(run.stats.queries, &out);
    out += ", \"query_candidates\": ";
    AppendJsonUint(run.stats.query_candidates, &out);
    out += ", \"peak_rss_bytes\": ";
    AppendJsonUint(run.peak_rss_bytes, &out);
    if (run.has_latency) {
      out += ",\n     \"qps\": ";
      AppendJsonDouble(run.qps, &out);
      out += ", \"p50_ms\": ";
      AppendJsonDouble(run.p50_ms, &out);
      out += ", \"p95_ms\": ";
      AppendJsonDouble(run.p95_ms, &out);
      out += ", \"p99_ms\": ";
      AppendJsonDouble(run.p99_ms, &out);
    }
    if (run.has_index_micro) {
      out += ",\n     \"index_build_seconds\": ";
      AppendJsonDouble(run.index_build_seconds, &out);
      out += ", \"probe_records_per_sec\": ";
      AppendJsonDouble(run.probe_records_per_sec, &out);
      out += ", \"probe_postings_per_sec\": ";
      AppendJsonDouble(run.probe_postings_per_sec, &out);
      if (!run.kernel.empty()) {
        out += ", \"kernel\": ";
        AppendJsonString(run.kernel, &out);
      }
      if (run.probe_speedup > 0.0) {
        out += ", \"probe_speedup\": ";
        AppendJsonDouble(run.probe_speedup, &out);
      }
    }
    if (run.has_verify_micro) {
      out += ",\n     \"intersect_elems_per_sec\": ";
      AppendJsonDouble(run.intersect_elems_per_sec, &out);
      out += ", \"accumulate_elems_per_sec\": ";
      AppendJsonDouble(run.accumulate_elems_per_sec, &out);
      if (!run.kernel.empty() && !run.has_index_micro) {
        out += ", \"kernel\": ";
        AppendJsonString(run.kernel, &out);
      }
      if (run.verify_speedup > 0.0) {
        out += ", \"verify_speedup\": ";
        AppendJsonDouble(run.verify_speedup, &out);
      }
    }
    if (!run.index_source.empty()) {
      out += ",\n     \"index_source\": ";
      AppendJsonString(run.index_source, &out);
      out += ", \"snapshot_load_ms\": ";
      AppendJsonDouble(run.snapshot_load_ms, &out);
    }
    if (run.has_snapshot) {
      out += ",\n     \"rebuild_seconds\": ";
      AppendJsonDouble(run.rebuild_seconds, &out);
      out += ", \"snapshot_write_seconds\": ";
      AppendJsonDouble(run.snapshot_write_seconds, &out);
      out += ", \"snapshot_load_seconds\": ";
      AppendJsonDouble(run.snapshot_load_seconds, &out);
      out += ", \"cold_start_speedup\": ";
      AppendJsonDouble(run.cold_start_speedup, &out);
      out += ",\n     \"snapshot_bytes\": ";
      AppendJsonUint(run.snapshot_bytes, &out);
      out += ", \"append_records_per_sec\": ";
      AppendJsonDouble(run.append_records_per_sec, &out);
      out += ", \"refreeze_seconds\": ";
      AppendJsonDouble(run.refreeze_seconds, &out);
    }
    if (run.has_shard) {
      out += ",\n     \"shard_by\": ";
      AppendJsonString(run.shard_by, &out);
      out += ", \"monolithic_seconds\": ";
      AppendJsonDouble(run.monolithic_seconds, &out);
      out += ", \"sharded_seconds\": ";
      AppendJsonDouble(run.sharded_seconds, &out);
      out += ", \"scatter_gather_speedup\": ";
      AppendJsonDouble(run.scatter_gather_speedup, &out);
    }
    if (run.has_wal) {
      out += ",\n     \"wal_append_records_per_sec\": ";
      AppendJsonDouble(run.wal_append_records_per_sec, &out);
      out += ", \"wal_recovery_seconds\": ";
      AppendJsonDouble(run.wal_recovery_seconds, &out);
      out += ", \"wal_recovered_records\": ";
      AppendJsonUint(run.wal_recovered_records, &out);
      out += ", \"wal_bytes\": ";
      AppendJsonUint(run.wal_bytes, &out);
      if (run.wal_mt_threads != 0) {
        out += ",\n     \"wal_mt_threads\": ";
        AppendJsonUint(run.wal_mt_threads, &out);
        out += ", \"wal_mt_append_records_per_sec\": ";
        AppendJsonDouble(run.wal_mt_append_records_per_sec, &out);
        out += ", \"wal_mt_syncs_per_append\": ";
        AppendJsonDouble(run.wal_mt_syncs_per_append, &out);
      }
    }
    if (run.has_prf) {
      out += ",\n     \"precision\": ";
      AppendJsonDouble(run.prf.precision, &out);
      out += ", \"recall\": ";
      AppendJsonDouble(run.prf.recall, &out);
      out += ", \"f_measure\": ";
      AppendJsonDouble(run.prf.f_measure, &out);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchReport::WriteJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  bool ok = written == json.size();
  ok = std::fclose(file) == 0 && ok;
  return ok;
}

LatencySummary SummarizeLatencySeconds(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) return summary;
  std::sort(seconds.begin(), seconds.end());
  // Nearest-rank percentile: the smallest latency with at least p% of
  // the samples at or below it.
  auto percentile = [&seconds](double p) {
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(seconds.size())));
    if (rank == 0) rank = 1;
    return seconds[std::min(rank - 1, seconds.size() - 1)] * 1000.0;
  };
  summary.p50_ms = percentile(50.0);
  summary.p95_ms = percentile(95.0);
  summary.p99_ms = percentile(99.0);
  return summary;
}

uint64_t BenchReport::TotalResults(const std::string& algorithm) const {
  uint64_t total = 0;
  for (const BenchRun& run : runs) {
    if (run.ok && run.algorithm == algorithm) total += run.stats.results;
  }
  return total;
}

std::vector<std::string> BenchReport::ZeroResultConfigurations() const {
  std::map<std::string, uint64_t> totals;
  for (const BenchRun& run : runs) {
    char label[160];
    std::snprintf(label, sizeof(label), "%s partition=%zu threads=%d",
                  run.algorithm.c_str(), run.max_partition_records,
                  run.threads);
    // Failed runs seed the group with zero (not skip it), so a
    // configuration that errors on every cell still trips the gate.
    totals[label] += run.ok ? run.stats.results : 0;
  }
  std::vector<std::string> zero;
  for (const auto& [label, total] : totals) {
    if (total == 0) zero.push_back(label);
  }
  return zero;
}

std::vector<BenchRun> BenchHarness::RunGrid(
    const BenchGrid& grid,
    const std::vector<std::pair<uint32_t, uint32_t>>* truth) {
  std::vector<std::string> algorithms = grid.algorithms;
  if (algorithms.empty()) {
    algorithms = AlgorithmRegistry::Global().Names();
  }
  std::vector<int> taus = grid.taus.empty() ? std::vector<int>{1} : grid.taus;
  std::vector<BenchRun> runs;
  for (int num_threads : grid.threads) {
    for (size_t partition_limit : grid.partition_limits) {
      Engine engine = EngineBuilder()
                          .SetKnowledge(knowledge_)
                          .SetMeasures(grid.measures)
                          .SetQ(grid.q)
                          .SetThreads(num_threads)
                          .SetMaxPartitionRecords(partition_limit)
                          .Build();
      engine.SetRecords(*records_);
      if (partition_limit == 0) {
        // Build the lazily-prepared context up front so the first
        // unified cell's wall_seconds measures the join, not the
        // one-time preparation (which stats.prepare_seconds reports
        // separately). Partitioned engines never use this context —
        // blocks prepare their own, charged to every run alike.
        engine.PreparedContext();
      }
      for (const std::string& algorithm : algorithms) {
        // tau only shapes the unified AU filters; one value is enough
        // for everything else.
        size_t tau_count = algorithm == "unified" ? taus.size() : size_t{1};
        for (double theta : grid.thetas) {
          for (size_t t = 0; t < tau_count; ++t) {
            BenchRun run;
            run.algorithm = algorithm;
            run.measures = grid.measures;
            run.theta = theta;
            run.tau = taus[t];
            run.threads = num_threads;
            run.max_partition_records = partition_limit;
            run.num_records = records_->size();

            EngineJoinOptions options;
            options.theta = theta;
            options.tau = taus[t];
            WallTimer wall;
            Result<JoinResult> result = engine.Join(algorithm, options);
            run.wall_seconds = wall.Seconds();
            if (result.ok()) {
              run.ok = true;
              run.stats = result->stats;
              run.total_seconds =
                  result->stats.TotalSeconds(/*include_prepare=*/true);
              if (truth != nullptr) {
                run.has_prf = true;
                run.prf = ComputePrf(result->pairs, *truth);
              }
            } else {
              run.error = result.status().ToString();
            }
            run.peak_rss_bytes = CurrentPeakRssBytes();
            runs.push_back(std::move(run));
          }
        }
      }
    }
  }
  return runs;
}

}  // namespace aujoin
