// Reproduces Table 12: accuracy of the tau suggestion (fraction of runs
// whose suggested tau matches the true optimum, across random samples)
// and the suggestion time as a fraction of the total join time.
//
// Expected shape (paper): accuracy > 90%, time fraction around or below a
// few percent.

#include <cstdio>

#include "bench_common.h"
#include "tuner/recommend.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.80, 0.85, 0.90, 0.95});
  int runs = static_cast<int>(flags.GetInt("runs", 10));
  std::vector<int64_t> universe = flags.GetIntList("tau", {1, 2, 3, 4, 6});

  PrintBanner("E10 suggestion accuracy", "Table 12",
              ">90% of runs pick a tau whose cost is within 10% of "
              "optimal; suggestion takes ~1% of join time");
  auto world = BuildWorld("med", n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);
  JoinOptions join_opts;
  join_opts.method = FilterMethod::kAuHeuristic;
  CostModel model = CalibrateCostModel(context, join_opts);

  std::printf("%-6s | %9s %12s\n", "theta", "accuracy", "time_frac");
  for (double theta : thetas) {
    // Ground truth: model cost from full-data cardinalities per tau.
    double best_cost = -1;
    std::vector<double> costs;
    double full_join_time;
    {
      JoinOptions options;
      options.theta = theta;
      options.method = FilterMethod::kAuHeuristic;
      options.tau = 2;
      WallTimer timer;
      UnifiedJoin(context, options);
      full_join_time = timer.Seconds();
    }
    for (int64_t tau : universe) {
      SignatureOptions sig;
      sig.theta = theta;
      sig.tau = static_cast<int>(tau);
      sig.method = FilterMethod::kAuHeuristic;
      auto out = context.RunFilter(sig);
      double c = model.Cost(static_cast<double>(out.processed_pairs),
                            static_cast<double>(out.candidates.size()));
      costs.push_back(c);
      if (best_cost < 0 || c < best_cost) best_cost = c;
    }

    int hits = 0;
    double total_suggest = 0;
    for (int run = 0; run < runs; ++run) {
      TunerOptions tuner;
      tuner.theta = theta;
      tuner.method = FilterMethod::kAuHeuristic;
      tuner.tau_universe.assign(universe.begin(), universe.end());
      tuner.sample_prob_s = 0.05;
      tuner.min_iterations = 5;
      tuner.max_iterations = 30;
      tuner.seed = 5000 + static_cast<uint64_t>(run) * 97;
      TauRecommendation rec = RecommendTau(context, model, tuner);
      total_suggest += rec.seconds;
      for (size_t k = 0; k < universe.size(); ++k) {
        if (universe[k] == rec.best_tau &&
            costs[k] <= best_cost * 1.10 + 1e-12) {
          ++hits;
          break;
        }
      }
    }
    double accuracy = static_cast<double>(hits) / runs;
    double frac = (total_suggest / runs) / (full_join_time + 1e-12);
    std::printf("%-6.2f | %8.0f%% %11.2f%%\n", theta, accuracy * 100,
                frac * 100);
  }
  return 0;
}
