// Snapshot cold-start bench: rebuilding the PreparedIndex from records
// vs mounting the versioned on-disk snapshot (storage/snapshot_*.h),
// plus the LSM-style generational append + refreeze path. Three phases:
//
//   rebuild   — PreparedIndex::Build + the CSR freeze, repeated
//               --repeat times (the pre-snapshot cold-start cost)
//   snapshot  — Save() once (write cost + file size), then Load()
//               repeated --repeat times (the mmap cold-start cost)
//   append    — GenerationalIndex over the corpus minus a --append_pct
//               tail, append the tail, serve one query wave from
//               staging + frozen, then Refreeze into generation 1
//
// The loaded index must answer a full query sweep identically to the
// rebuilt one, and the refrozen generational index identically to a
// from-scratch build over the union corpus (the bench exits non-zero
// otherwise — it doubles as a round-trip parity check). The report
// lands in BENCH_<name>.json with the snapshot fields documented in
// docs/bench-schema.md; --min_speedup=<x> gates CI on the snapshot
// cold-start being at least x times faster than the rebuild.
//
// Typical invocation:
//   bench_snapshot --name=snapshot --profile=med --strings=300 \
//     --theta=0.7 --repeat=5 --min_speedup=5

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "index/prepared_index.h"
#include "join/search.h"
#include "storage/generational_index.h"
#include "util/timer.h"

namespace aujoin {
namespace {

/// One full query sweep: every record searched against `index` under
/// the serving contract. The result vector is the parity fingerprint.
std::vector<std::vector<UnifiedSearcher::Match>> Sweep(
    std::shared_ptr<const PreparedIndex> index,
    const std::vector<Record>& queries, double theta, int tau) {
  UnifiedSearcher searcher(std::move(index));
  UnifiedSearcher::SearchOptions options;
  options.theta = theta;
  options.tau = tau;
  std::vector<std::vector<UnifiedSearcher::Match>> out;
  out.reserve(queries.size());
  for (const Record& q : queries) out.push_back(searcher.Search(q, options));
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "snapshot");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 300));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 1));
  int repeat = static_cast<int>(flags.GetInt("repeat", 5));
  int append_pct = static_cast<int>(flags.GetInt("append_pct", 10));
  double min_speedup = flags.GetDouble("min_speedup", 0.0);
  std::string snapshot_path =
      flags.GetString("snapshot_path", "bench_snapshot.aujsnap");
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  PrintBanner("snapshot cold-start bench", "serving-index persistence",
              "mmap snapshot load beats pebble generation + CSR freeze");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d repeat=%d\n",
              profile.c_str(), strings, theta, tau, repeat);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/0);
  const std::vector<Record>& records = world->corpus.records;
  const Knowledge knowledge = world->knowledge();
  const MsimOptions msim{.q = 3};

  // --- phase 1: rebuild cold-start -------------------------------------
  std::shared_ptr<const PreparedIndex> rebuilt;
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    rebuilt = PreparedIndex::Build(knowledge, msim, records, nullptr);
    rebuilt->ServingIndex();  // the cold start isn't over until the CSR is
  }
  double rebuild_seconds = timer.Seconds() / repeat;

  // --- phase 2: snapshot write, then mmap cold-start -------------------
  timer.Restart();
  Status save = rebuilt->Save(snapshot_path);
  double write_seconds = timer.Seconds();
  if (!save.ok()) {
    std::fprintf(stderr, "FAILED to save %s: %s\n", snapshot_path.c_str(),
                 save.ToString().c_str());
    return 2;
  }
  uint64_t snapshot_bytes = 0;
  {
    std::FILE* probe = std::fopen(snapshot_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fseek(probe, 0, SEEK_END);
      snapshot_bytes = static_cast<uint64_t>(std::ftell(probe));
      std::fclose(probe);
    }
  }

  std::shared_ptr<const PreparedIndex> loaded;
  timer.Restart();
  for (int r = 0; r < repeat; ++r) {
    Result<std::shared_ptr<const PreparedIndex>> load =
        PreparedIndex::Load(knowledge, msim, records, nullptr, snapshot_path);
    if (!load.ok()) {
      std::fprintf(stderr, "FAILED to load %s: %s\n", snapshot_path.c_str(),
                   load.status().ToString().c_str());
      return 2;
    }
    loaded = *load;
  }
  double load_seconds = timer.Seconds() / repeat;
  std::remove(snapshot_path.c_str());

  // Parity: the mounted index must serve exactly what the rebuilt one
  // serves, query by query, match by match.
  if (Sweep(rebuilt, records, theta, tau) !=
      Sweep(loaded, records, theta, tau)) {
    std::fprintf(stderr,
                 "PARITY FAILURE: snapshot-served results differ from the "
                 "rebuilt index\n");
    return 2;
  }

  // --- phase 3: generational append + refreeze -------------------------
  size_t tail = records.size() * static_cast<size_t>(append_pct) / 100;
  if (tail == 0) tail = 1;
  size_t base = records.size() - tail;
  std::vector<Record> initial(records.begin(), records.begin() + base);
  GenerationalIndex generational(knowledge, msim, std::move(initial));
  timer.Restart();
  for (size_t i = base; i < records.size(); ++i) {
    generational.Append(records[i]);
  }
  // The first query pays the staging mini-index build; charge it to the
  // append path, where an online serving system would amortise it.
  GenerationalIndex::SearchOptions gen_options;
  gen_options.theta = theta;
  gen_options.tau = tau;
  generational.Search(records[0], gen_options);
  double append_seconds = timer.Seconds();

  timer.Restart();
  generational.Refreeze();
  double refreeze_seconds = timer.Seconds();
  if (generational.generation() != 1 || generational.num_staged() != 0 ||
      generational.num_frozen() != records.size()) {
    std::fprintf(stderr, "FAILED: refreeze left generation=%llu staged=%zu\n",
                 static_cast<unsigned long long>(generational.generation()),
                 generational.num_staged());
    return 2;
  }
  // Parity: the compacted generation equals a from-scratch build over
  // the union corpus.
  if (Sweep(generational.frozen_index(), records, theta, tau) !=
      Sweep(rebuilt, records, theta, tau)) {
    std::fprintf(stderr,
                 "PARITY FAILURE: refrozen generation differs from the "
                 "from-scratch index\n");
    return 2;
  }

  // --- report -----------------------------------------------------------
  double speedup = load_seconds > 0.0 ? rebuild_seconds / load_seconds : 0.0;
  BenchRun run;
  run.algorithm = "snapshot";
  run.variant = "cold-start";
  run.measures = "TJS";
  run.theta = theta;
  run.tau = tau;
  run.threads = 1;
  run.num_records = records.size();
  run.ok = true;
  run.total_seconds = rebuild_seconds + write_seconds + load_seconds;
  run.wall_seconds = run.total_seconds;
  run.has_snapshot = true;
  run.rebuild_seconds = rebuild_seconds;
  run.snapshot_write_seconds = write_seconds;
  run.snapshot_load_seconds = load_seconds;
  run.cold_start_speedup = speedup;
  run.snapshot_bytes = snapshot_bytes;
  run.append_records_per_sec =
      append_seconds > 0.0 ? static_cast<double>(tail) / append_seconds : 0.0;
  run.refreeze_seconds = refreeze_seconds;
  run.peak_rss_bytes = CurrentPeakRssBytes();

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();
  report.runs.push_back(run);

  std::printf("cold start (%d reps): rebuild=%.4fs load=%.4fs -> %.1fx "
              "(snapshot %llu bytes, write=%.4fs)\n",
              repeat, rebuild_seconds, load_seconds, speedup,
              static_cast<unsigned long long>(snapshot_bytes), write_seconds);
  std::printf("generational: %zu appends in %.4fs (%.0f rec/s), "
              "refreeze=%.4fs\n",
              tail, append_seconds, run.append_records_per_sec,
              refreeze_seconds);

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), report.runs.size());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: snapshot cold-start speedup %.2fx below "
                 "the --min_speedup=%.2f gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
