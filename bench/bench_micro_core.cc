// Microbenchmarks (google-benchmark) for the core primitives: Hungarian
// matching, conflict-graph construction + SquareImp, Algorithm 1, pebble
// generation and the three signature-selection algorithms. These quantify
// the per-pair verification cost and the per-record filtering cost that
// the Section 4 cost model treats as the constants c_v and c_f.

#include <benchmark/benchmark.h>

#include "core/hungarian.h"
#include "core/pair_graph.h"
#include "core/squareimp.h"
#include "core/usim.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "index/global_order.h"
#include "join/signature.h"
#include "util/rng.h"

namespace aujoin {
namespace {

// Shared world; built once.
struct MicroWorld {
  Vocabulary vocab;
  Taxonomy taxonomy;
  RuleSet rules;
  Corpus corpus;
  Knowledge knowledge() { return Knowledge{&vocab, &rules, &taxonomy}; }

  MicroWorld() {
    taxonomy = GenerateTaxonomy({.num_nodes = 1000}, &vocab);
    rules = GenerateSynonyms({.num_rules = 800}, taxonomy, &vocab);
    CorpusGenerator gen(&vocab, &taxonomy, &rules);
    corpus = gen.Generate(CorpusProfile::Med(300), {.num_pairs = 100});
  }
};

MicroWorld& World() {
  static auto* world = new MicroWorld();
  return *world;
}

void BM_Hungarian(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w) {
    for (auto& cell : row) cell = rng.UniformReal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightBipartiteMatching(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PairGraphBuild(benchmark::State& state) {
  auto& world = World();
  MsimEvaluator eval(world.knowledge(), {});
  const auto& truth = world.corpus.truth_pairs;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = truth[i++ % truth.size()];
    PairGraph g = BuildPairGraph(world.corpus.records[a],
                                 world.corpus.records[b], &eval);
    benchmark::DoNotOptimize(g.num_vertices());
  }
}
BENCHMARK(BM_PairGraphBuild);

void BM_SquareImp(benchmark::State& state) {
  auto& world = World();
  MsimEvaluator eval(world.knowledge(), {});
  const auto& [a, b] = world.corpus.truth_pairs[0];
  PairGraph g = BuildPairGraph(world.corpus.records[a],
                               world.corpus.records[b], &eval);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquareImp(g));
  }
}
BENCHMARK(BM_SquareImp);

void BM_ApproxUsim(benchmark::State& state) {
  auto& world = World();
  UsimComputer computer(world.knowledge(), {});
  const auto& truth = world.corpus.truth_pairs;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = truth[i++ % truth.size()];
    benchmark::DoNotOptimize(
        computer.Approx(world.corpus.records[a], world.corpus.records[b]));
  }
}
BENCHMARK(BM_ApproxUsim);

void BM_PebbleGeneration(benchmark::State& state) {
  auto& world = World();
  PebbleGenerator gen(world.knowledge(), {});
  Vocabulary gram_dict;
  size_t i = 0;
  for (auto _ : state) {
    const Record& r = world.corpus.records[i++ % world.corpus.records.size()];
    benchmark::DoNotOptimize(gen.Generate(r, &gram_dict));
  }
}
BENCHMARK(BM_PebbleGeneration);

void BM_SignatureSelection(benchmark::State& state) {
  auto& world = World();
  FilterMethod method = static_cast<FilterMethod>(state.range(0));
  PebbleGenerator gen(world.knowledge(), {});
  Vocabulary gram_dict;
  std::vector<RecordPebbles> prepared;
  GlobalOrder order;
  for (const Record& r : world.corpus.records) {
    prepared.push_back(gen.Generate(r, &gram_dict));
  }
  order.CountCollection(prepared);
  order.Finalize();
  for (auto& rp : prepared) order.SortPebbles(&rp);

  SignatureOptions options;
  options.theta = 0.85;
  options.tau = 4;
  options.method = method;
  size_t i = 0;
  for (auto _ : state) {
    size_t idx = i++ % prepared.size();
    benchmark::DoNotOptimize(
        SelectSignature(prepared[idx],
                        world.corpus.records[idx].num_tokens(), options));
  }
}
BENCHMARK(BM_SignatureSelection)
    ->Arg(static_cast<int>(FilterMethod::kUFilter))
    ->Arg(static_cast<int>(FilterMethod::kAuHeuristic))
    ->Arg(static_cast<int>(FilterMethod::kAuDp));

}  // namespace
}  // namespace aujoin

BENCHMARK_MAIN();
