// The machine-readable benchmark harness: runs an
// (algorithm × theta × tau × threads × partitioning) grid over a
// generated corpus and writes BENCH_<name>.json for CI and trend
// tracking. The CI smoke job runs this with --require_nonzero so a
// regression that silently empties an algorithm's match set fails the
// build instead of flattening a curve nobody looks at.
//
// Typical invocations:
//   bench_harness --name=smoke --profile=med --strings=300 --pairs=60 \
//     --theta=0.7 --tau=2 --threads=1,0 --partition=0,100 --require_nonzero
//   bench_harness --name=nightly --strings=5000 --pairs=500 \
//     --theta=0.7,0.8,0.9 --tau=1,2,3 --threads=1,4,0 --partition=0,1000

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dataset/manifest.h"
#include "harness.h"

namespace aujoin {
namespace {

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= value.size()) {
    size_t comma = value.find(',', begin);
    if (comma == std::string::npos) comma = value.size();
    if (comma > begin) out.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

void PrintRun(const BenchRun& run) {
  if (!run.ok) {
    std::printf("%-12s th=%.2f tau=%d thr=%d part=%-6zu error: %s\n",
                run.algorithm.c_str(), run.theta, run.tau, run.threads,
                run.max_partition_records, run.error.c_str());
    return;
  }
  std::printf(
      "%-12s th=%.2f tau=%d thr=%d part=%-6zu %8.3fs wall=%-8.3f "
      "cand=%-8llu res=%-6llu",
      run.algorithm.c_str(), run.theta, run.tau, run.threads,
      run.max_partition_records, run.total_seconds, run.wall_seconds,
      static_cast<unsigned long long>(run.stats.candidates),
      static_cast<unsigned long long>(run.stats.results));
  if (run.stats.partition_blocks > 0) {
    std::printf(" blocks=%llu",
                static_cast<unsigned long long>(run.stats.partition_blocks));
  }
  if (run.has_prf) {
    std::printf(" F=%.2f", run.prf.f_measure);
  }
  std::printf("\n");
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "harness");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 400));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 80));
  std::string out_path =
      flags.GetString("out", "BENCH_" + name + ".json");
  bool require_nonzero = flags.GetBool("require_nonzero", false);

  BenchGrid grid;
  grid.algorithms = SplitCommaList(flags.GetString("algorithms", ""));
  grid.thetas = flags.GetDoubleList("theta", {0.70, 0.80});
  grid.measures = flags.GetString("measures", "TJS");
  grid.q = static_cast<int>(flags.GetInt("q", 3));
  grid.taus.clear();
  for (int64_t tau : flags.GetIntList("tau", {2})) {
    grid.taus.push_back(static_cast<int>(tau));
  }
  grid.threads.clear();
  for (int64_t threads : flags.GetIntList("threads", {1, 0})) {
    grid.threads.push_back(static_cast<int>(threads));
  }
  grid.partition_limits.clear();
  for (int64_t limit : flags.GetIntList("partition", {0})) {
    grid.partition_limits.push_back(static_cast<size_t>(limit));
  }

  PrintBanner("benchmark harness grid", "machine-readable",
              "writes BENCH_<name>.json; see README for the schema");
  std::printf("corpus: profile=%s strings=%zu truth_pairs=%zu\n",
              profile.c_str(), strings, pairs);

  auto world = BuildWorld(profile, strings, pairs);
  BenchHarness harness(world->knowledge(), &world->corpus.records);

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = world->corpus.records.size();
  report.num_truth_pairs = world->corpus.truth_pairs.size();
  DatasetManifest manifest =
      BuildManifest(world->corpus.records, world->vocab, &world->rules,
                    &world->taxonomy);
  manifest.source = "datagen:" + profile;
  manifest.format = "generated";
  report.dataset_manifest_json = manifest.ToJson();
  report.runs = harness.RunGrid(grid, &world->corpus.truth_pairs);

  for (const BenchRun& run : report.runs) PrintRun(run);

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(),
              report.runs.size());

  if (require_nonzero) {
    // The smoke gate: the generated corpus plants truth pairs, so every
    // (algorithm × partitioning × threads) configuration the parity
    // tests cover must find something — a per-configuration check, so a
    // regression that empties only the partitioned or only the threaded
    // cells still fails the job.
    std::vector<std::string> zero = report.ZeroResultConfigurations();
    for (const std::string& label : zero) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: %s returned zero matches across its "
                   "grid cells\n",
                   label.c_str());
    }
    if (!zero.empty()) return 1;
    std::printf(
        "smoke check passed: every configuration found matches\n");
  }
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
