// Reproduces Figure 6: join time of AU-Filter (DP) under each similarity
// measure combination across join thresholds.
//
// Expected shape (paper): TJS remains comparable to single measures —
// the unified measure costs little extra thanks to the DP filter.

#include <cstdio>

#include "bench_common.h"
#include "join/join.h"
#include "util/timer.h"

namespace aujoin {
namespace {

void RunDataset(const std::string& dataset, size_t n,
                const std::vector<double>& thetas) {
  auto world = BuildWorld(dataset, n, n / 10);
  const char* combos[] = {"T", "J", "S", "TJ", "JS", "TS", "TJS"};

  std::printf("\n[%s-like] strings=%zu (seconds per join)\n", dataset.c_str(),
              world->corpus.records.size());
  std::printf("%-8s", "measure");
  for (double theta : thetas) std::printf(" %10.2f", theta);
  std::printf("\n");
  for (const char* combo : combos) {
    MsimOptions msim;
    msim.q = 3;
    msim.measures = ParseMeasures(combo);
    JoinContext context(world->knowledge(), msim);
    context.Prepare(world->corpus.records, nullptr);
    std::printf("%-8s", combo);
    for (double theta : thetas) {
      JoinOptions options;
      options.theta = theta;
      options.tau = 3;
      options.method = FilterMethod::kAuDp;
      WallTimer timer;
      UnifiedJoin(context, options);
      std::printf(" %10.3f", timer.Seconds());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) {
  aujoin::Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 600));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.85, 0.95});
  aujoin::PrintBanner("E6 join time by measure combination (AU-DP)",
                      "Figure 6",
                      "TJS comparable to single measures; time drops as "
                      "theta rises");
  aujoin::RunDataset("med", n, thetas);
  aujoin::RunDataset("wiki", n, thetas);
  return 0;
}
