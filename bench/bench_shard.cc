// Scatter-gather shard bench: the same workload raced monolithic vs
// sharded through the Engine facade, in three phases:
//
//   join   — Engine::Join("unified") with num_shards=0 vs num_shards=N
//            (shard-pair blocks on the shared ThreadPool). Results must
//            be byte-identical; the speedup is wall over wall.
//   serve  — Engine::BatchSearch of a query wave against the monolithic
//            serving index vs the per-shard scatter (similarity values
//            included in the parity fingerprint).
//   spill  — the sharded join re-run with a tiny --spill_budget_bytes,
//            forcing sorted runs to disk and back. Results must still
//            be identical, stats must show spill traffic, and no
//            aujoin-spill temp file may outlive the join.
//
// Any parity failure exits non-zero — the bench doubles as an
// end-to-end determinism check. The report lands in BENCH_<name>.json
// with the shard fields documented in docs/bench-schema.md.
//
// Typical invocation:
//   bench_shard --name=shard --profile=med --strings=400 --shards=4 \
//     --theta=0.7 --tau=2 --threads=0 --spill_budget_bytes=256

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "bench_common.h"
#include "harness.h"
#include "shard/shard_plan.h"
#include "storage/env.h"
#include "util/timer.h"

namespace aujoin {
namespace {

/// One serving parity fingerprint: every (query, match id, similarity)
/// in emission order across a BatchSearch wave.
struct ServeSweep {
  std::vector<std::pair<uint32_t, uint32_t>> hits;
  std::vector<double> sims;
  SearchStats stats;
  double wall_seconds = 0.0;

  bool SameResults(const ServeSweep& other) const {
    return hits == other.hits && sims == other.sims;
  }
};

ServeSweep RunServe(Engine& engine, const std::vector<Record>& queries,
                    const EngineSearchOptions& options, Status* status) {
  ServeSweep sweep;
  WallTimer timer;
  *status = engine.BatchSearch(
      queries, options,
      [&sweep](uint32_t q, const UnifiedSearcher::Match& m) {
        sweep.hits.emplace_back(q, m.id);
        sweep.sims.push_back(m.similarity);
        return true;
      },
      &sweep.stats);
  sweep.wall_seconds = timer.Seconds();
  return sweep;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string name = flags.GetString("name", "shard");
  std::string profile = flags.GetString("profile", "med");
  size_t strings = static_cast<size_t>(flags.GetInt("strings", 400));
  size_t pairs = static_cast<size_t>(flags.GetInt("pairs", 80));
  double theta = flags.GetDouble("theta", 0.7);
  int tau = static_cast<int>(flags.GetInt("tau", 2));
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  std::string shard_by_name = flags.GetString("shard_by", "range");
  // Default budget of 32 buffered pairs: small enough that even smoke
  // corpora spill several runs, which is the point of the phase.
  size_t spill_budget =
      static_cast<size_t>(flags.GetInt("spill_budget_bytes", 256));
  std::string spill_dir = flags.GetString("spill_dir", ".");
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  std::string out_path = flags.GetString("out", "BENCH_" + name + ".json");

  ShardBy shard_by;
  if (!ParseShardBy(shard_by_name, &shard_by)) {
    std::fprintf(stderr, "unknown --shard_by=%s (range|hash)\n",
                 shard_by_name.c_str());
    return 2;
  }

  PrintBanner("scatter-gather shard bench", "first-class shards",
              "shard-pair blocks + per-shard searchers match the "
              "monolithic engine byte for byte");
  std::printf("corpus: profile=%s strings=%zu theta=%.2f tau=%d "
              "shards=%zu shard_by=%s threads=%d\n",
              profile.c_str(), strings, theta, tau, shards,
              shard_by_name.c_str(), threads);

  auto world = BuildWorld(profile, strings, /*num_truth_pairs=*/pairs);
  const std::vector<Record>& records = world->corpus.records;
  const Knowledge knowledge = world->knowledge();

  auto make_engine = [&](size_t num_shards, size_t budget) {
    Engine engine = EngineBuilder()
                        .SetKnowledge(knowledge)
                        .SetMeasures("TJS")
                        .SetQ(3)
                        .SetThreads(threads)
                        .SetNumShards(num_shards)
                        .SetShardBy(shard_by)
                        .SetSpillBudgetBytes(budget)
                        .SetSpillDir(spill_dir)
                        .Build();
    engine.SetRecords(records);
    return engine;
  };

  EngineJoinOptions join_options;
  join_options.theta = theta;
  join_options.tau = tau;

  BenchReport report;
  report.name = name;
  report.profile = profile;
  report.num_records = records.size();

  auto base_run = [&](const char* variant) {
    BenchRun run;
    run.algorithm = "unified";
    run.variant = variant;
    run.measures = "TJS";
    run.theta = theta;
    run.tau = tau;
    run.threads = threads;
    run.num_records = records.size();
    run.shard_by = shard_by_name;
    return run;
  };

  // --- phase 1: the join race ------------------------------------------
  Engine mono = make_engine(0, 0);
  WallTimer timer;
  Result<JoinResult> mono_join = mono.Join("unified", join_options);
  double mono_join_seconds = timer.Seconds();
  if (!mono_join.ok()) {
    std::fprintf(stderr, "FAILED monolithic join: %s\n",
                 mono_join.status().ToString().c_str());
    return 2;
  }

  Engine sharded = make_engine(shards, 0);
  timer.Restart();
  Result<JoinResult> shard_join = sharded.Join("unified", join_options);
  double shard_join_seconds = timer.Seconds();
  if (!shard_join.ok()) {
    std::fprintf(stderr, "FAILED sharded join: %s\n",
                 shard_join.status().ToString().c_str());
    return 2;
  }
  if (mono_join->pairs != shard_join->pairs) {
    std::fprintf(stderr,
                 "PARITY FAILURE: sharded join emitted %zu pairs, "
                 "monolithic %zu — result sets differ\n",
                 shard_join->pairs.size(), mono_join->pairs.size());
    return 2;
  }
  double join_speedup = shard_join_seconds > 0.0
                            ? mono_join_seconds / shard_join_seconds
                            : 0.0;
  std::printf("join: monolithic=%.4fs sharded=%.4fs (%zu blocks) -> %.2fx, "
              "%zu pairs\n",
              mono_join_seconds, shard_join_seconds,
              static_cast<size_t>(shard_join->stats.partition_blocks),
              join_speedup, shard_join->pairs.size());

  {
    BenchRun run = base_run("join-monolithic");
    run.ok = true;
    run.stats = mono_join->stats;
    run.total_seconds = mono_join->stats.TotalSeconds(true);
    run.wall_seconds = mono_join_seconds;
    run.peak_rss_bytes = CurrentPeakRssBytes();
    report.runs.push_back(run);
  }
  {
    BenchRun run = base_run("join-sharded");
    run.ok = true;
    run.stats = shard_join->stats;
    run.total_seconds = shard_join->stats.TotalSeconds(true);
    run.wall_seconds = shard_join_seconds;
    run.peak_rss_bytes = CurrentPeakRssBytes();
    run.has_shard = true;
    run.monolithic_seconds = mono_join_seconds;
    run.sharded_seconds = shard_join_seconds;
    run.scatter_gather_speedup = join_speedup;
    report.runs.push_back(run);
  }

  // --- phase 2: the serving race ---------------------------------------
  if (num_queries > records.size()) num_queries = records.size();
  std::vector<Record> queries(records.begin(),
                              records.begin() + num_queries);
  EngineSearchOptions search_options;
  search_options.theta = theta;
  search_options.tau = tau;

  Status serve_status;
  ServeSweep mono_serve = RunServe(mono, queries, search_options,
                                   &serve_status);
  if (!serve_status.ok()) {
    std::fprintf(stderr, "FAILED monolithic serve: %s\n",
                 serve_status.ToString().c_str());
    return 2;
  }
  ServeSweep shard_serve = RunServe(sharded, queries, search_options,
                                    &serve_status);
  if (!serve_status.ok()) {
    std::fprintf(stderr, "FAILED sharded serve: %s\n",
                 serve_status.ToString().c_str());
    return 2;
  }
  if (!mono_serve.SameResults(shard_serve)) {
    std::fprintf(stderr,
                 "PARITY FAILURE: scatter-gather serving returned %zu "
                 "matches, monolithic %zu — ranked results differ\n",
                 shard_serve.hits.size(), mono_serve.hits.size());
    return 2;
  }
  double serve_speedup = shard_serve.wall_seconds > 0.0
                             ? mono_serve.wall_seconds /
                                   shard_serve.wall_seconds
                             : 0.0;
  std::printf("serve: %zu queries monolithic=%.4fs sharded=%.4fs "
              "(%llu shards) -> %.2fx, %zu matches\n",
              queries.size(), mono_serve.wall_seconds,
              shard_serve.wall_seconds,
              static_cast<unsigned long long>(shard_serve.stats.shards),
              serve_speedup, shard_serve.hits.size());
  {
    BenchRun run = base_run("serve-sharded");
    run.ok = true;
    run.stats.queries = shard_serve.stats.queries;
    run.stats.query_candidates = shard_serve.stats.query_candidates;
    run.stats.results = shard_serve.stats.results;
    run.stats.index_seconds = shard_serve.stats.index_seconds;
    run.stats.shards = shard_serve.stats.shards;
    run.total_seconds = shard_serve.wall_seconds;
    run.wall_seconds = shard_serve.wall_seconds;
    run.peak_rss_bytes = CurrentPeakRssBytes();
    run.has_shard = true;
    run.monolithic_seconds = mono_serve.wall_seconds;
    run.sharded_seconds = shard_serve.wall_seconds;
    run.scatter_gather_speedup = serve_speedup;
    run.has_latency = true;
    run.qps = shard_serve.wall_seconds > 0.0
                  ? static_cast<double>(queries.size()) /
                        shard_serve.wall_seconds
                  : 0.0;
    report.runs.push_back(run);
  }

  // --- phase 3: out-of-core (spill) ------------------------------------
  Engine spilling = make_engine(shards, spill_budget);
  timer.Restart();
  Result<JoinResult> spill_join = spilling.Join("unified", join_options);
  double spill_seconds = timer.Seconds();
  if (!spill_join.ok()) {
    std::fprintf(stderr, "FAILED spilling join: %s\n",
                 spill_join.status().ToString().c_str());
    return 2;
  }
  if (mono_join->pairs != spill_join->pairs) {
    std::fprintf(stderr,
                 "PARITY FAILURE: out-of-core join emitted %zu pairs, "
                 "monolithic %zu — result sets differ\n",
                 spill_join->pairs.size(), mono_join->pairs.size());
    return 2;
  }
  if (spill_join->stats.spill_runs == 0) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: --spill_budget_bytes=%zu produced no "
                 "spill runs (working set never exceeded the budget)\n",
                 spill_budget);
    return 2;
  }
  // Spill files are unlinked the moment they are mapped; any survivor
  // in the spill dir is a leak.
  Env* env = Env::Default();
  for (uint64_t seq = 0; seq < spill_join->stats.spill_runs + 4; ++seq) {
    std::string leak = spill_dir + "/aujoin-spill-" + std::to_string(seq) +
                       ".run";
    if (env->FileExists(leak)) {
      std::fprintf(stderr, "LEAK: spill temp file %s outlived the join\n",
                   leak.c_str());
      return 2;
    }
  }
  std::printf("spill: budget=%zuB -> %llu runs, %llu pairs, %llu bytes "
              "(%.4fs), identical results, no temp files left\n",
              spill_budget,
              static_cast<unsigned long long>(spill_join->stats.spill_runs),
              static_cast<unsigned long long>(spill_join->stats.spill_pairs),
              static_cast<unsigned long long>(spill_join->stats.spill_bytes),
              spill_seconds);
  {
    BenchRun run = base_run("join-spill");
    run.ok = true;
    run.stats = spill_join->stats;
    run.total_seconds = spill_join->stats.TotalSeconds(true);
    run.wall_seconds = spill_seconds;
    run.peak_rss_bytes = CurrentPeakRssBytes();
    run.has_shard = true;
    run.monolithic_seconds = mono_join_seconds;
    run.sharded_seconds = spill_seconds;
    run.scatter_gather_speedup =
        spill_seconds > 0.0 ? mono_join_seconds / spill_seconds : 0.0;
    report.runs.push_back(run);
  }

  if (!report.WriteJsonFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), report.runs.size());
  return 0;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
