// Reproduces Table 11: running time of AU-Filter (heuristics) when tau is
// chosen by Algorithm 7, versus the mean over random choices, versus the
// worst choice in the universe.
//
// Expected shape (paper): suggested <= random mean <= worst at every
// threshold.

#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "tuner/recommend.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace aujoin;
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 500));
  auto thetas = flags.GetDoubleList("theta", {0.75, 0.80, 0.85, 0.90, 0.95});
  auto universe = flags.GetIntList("tau", {1, 2, 3, 4, 5, 6});

  PrintBanner("E9 tau selection policies", "Table 11",
              "suggested tau achieves the best time; worst tau is several "
              "times slower");
  auto world = BuildWorld("med", n, n / 10);
  JoinContext context(world->knowledge(), MsimOptions{.q = 3});
  context.Prepare(world->corpus.records, nullptr);

  std::printf("%-6s | %12s %12s %12s | %9s %9s\n", "theta", "suggested_s",
              "random_mean", "worst_s", "tau*", "tau_worst");
  for (double theta : thetas) {
    // Measure the true join time for every tau in the universe.
    std::vector<double> times;
    for (int64_t tau : universe) {
      JoinOptions options;
      options.theta = theta;
      options.tau = static_cast<int>(tau);
      options.method = FilterMethod::kAuHeuristic;
      WallTimer timer;
      UnifiedJoin(context, options);
      times.push_back(timer.Seconds());
    }
    double mean =
        std::accumulate(times.begin(), times.end(), 0.0) / times.size();
    size_t worst_idx = 0;
    for (size_t i = 0; i < times.size(); ++i) {
      if (times[i] > times[worst_idx]) worst_idx = i;
    }

    // Suggested tau, including the suggestion overhead itself.
    TunerOptions tuner;
    tuner.theta = theta;
    tuner.method = FilterMethod::kAuHeuristic;
    tuner.tau_universe.assign(universe.begin(), universe.end());
    tuner.sample_prob_s = 0.05;
    tuner.min_iterations = 5;
    tuner.max_iterations = 25;
    JoinOptions options;
    options.theta = theta;
    options.method = FilterMethod::kAuHeuristic;
    TauRecommendation rec;
    WallTimer timer;
    JoinWithSuggestedTau(context, options, tuner, &rec);
    double suggested_time = timer.Seconds();

    std::printf("%-6.2f | %12.3f %12.3f %12.3f | %9d %9lld\n", theta,
                suggested_time, mean, times[worst_idx], rec.best_tau,
                static_cast<long long>(universe[worst_idx]));
  }
  return 0;
}
