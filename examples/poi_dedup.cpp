// Data-cleansing scenario: deduplicating a synthetic points-of-interest
// collection whose duplicates mix typos, synonyms and taxonomy variation
// (the paper's motivating use case, Section 1).
//
// Demonstrates the full production path: build knowledge, prepare a join
// context once, let Algorithm 7 pick the overlap constraint, join, and
// group matches into duplicate clusters with union-find.
//
//   ./poi_dedup [--strings=2000] [--theta=0.8]

#include <cstdio>
#include <numeric>
#include <vector>

#include "api/engine.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "util/flags.h"

using namespace aujoin;

namespace {

// Minimal union-find for clustering the matched pairs.
struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 1500));
  double theta = flags.GetDouble("theta", 0.8);

  // Knowledge + corpus with injected duplicates.
  Vocabulary vocab;
  Taxonomy taxonomy = GenerateTaxonomy({.num_nodes = 2000}, &vocab);
  RuleSet rules = GenerateSynonyms({.num_rules = 2000}, taxonomy, &vocab);
  Knowledge knowledge{&vocab, &rules, &taxonomy};
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus =
      gen.Generate(CorpusProfile::Med(n), {.num_pairs = n / 8});
  std::printf("POI collection: %zu records (%zu injected duplicates)\n",
              corpus.records.size(), corpus.truth_pairs.size());

  // Join with the recommended overlap constraint, via the facade's tuner
  // path (Algorithm 7 picks tau on the engine's prepared context).
  Engine engine = EngineBuilder()
                      .SetKnowledge(knowledge)
                      .SetMeasures("TJS")
                      .SetQ(3)
                      .Build();
  engine.SetRecords(corpus.records);
  EngineJoinOptions options;
  options.theta = theta;
  options.method = FilterMethod::kAuDp;
  TunerOptions tuner;
  tuner.theta = theta;
  tuner.method = FilterMethod::kAuDp;
  tuner.sample_prob_s = 0.05;
  TauRecommendation rec;
  Result<JoinResult> joined =
      engine.JoinWithSuggestedTau(options, tuner, &rec);
  if (!joined.ok()) {
    std::fprintf(stderr, "error: %s\n", joined.status().ToString().c_str());
    return 1;
  }
  const JoinResult& result = *joined;

  std::printf("suggested tau=%d (%d sampling iterations, %.3fs)\n",
              rec.best_tau, rec.iterations, rec.seconds);
  std::printf("join: %zu similar pairs, %llu candidates, %.3fs total\n",
              result.pairs.size(),
              static_cast<unsigned long long>(result.stats.candidates),
              result.stats.TotalSeconds());
  PrfScore score = ComputePrf(result.pairs, corpus.truth_pairs);
  std::printf("against injected duplicates: P=%.2f R=%.2f F=%.2f\n",
              score.precision, score.recall, score.f_measure);

  // Cluster into duplicate groups.
  UnionFind uf(corpus.records.size());
  for (const auto& [a, b] : result.pairs) uf.Union(a, b);
  std::vector<int> cluster_size(corpus.records.size(), 0);
  for (uint32_t i = 0; i < corpus.records.size(); ++i) {
    ++cluster_size[uf.Find(i)];
  }
  int clusters = 0;
  for (int c : cluster_size) clusters += c > 1;
  std::printf("duplicate clusters: %d\n", clusters);

  // Show a few example clusters.
  int shown = 0;
  for (uint32_t root = 0; root < corpus.records.size() && shown < 3; ++root) {
    if (cluster_size[root] < 2) continue;
    std::printf("\ncluster #%d:\n", ++shown);
    for (uint32_t i = 0; i < corpus.records.size(); ++i) {
      if (uf.Find(i) == root) {
        std::printf("  [%u] %s\n", i, corpus.records[i].text.c_str());
      }
    }
  }
  return 0;
}
