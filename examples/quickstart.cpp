// Quickstart: the paper's Figure 1 example, end to end.
//
// Builds a tiny taxonomy and synonym dictionary, computes the unified
// similarity of two POI strings with Algorithm 1, and runs similarity
// self-joins through the Engine facade — the canonical entry point:
//
//   Engine engine = EngineBuilder().SetKnowledge(k).Build();
//   engine.SetRecords(records);
//   engine.Join("unified", {.theta = 0.7}, &sink);
//
// Any registered algorithm (see AlgorithmRegistry::Global().Names())
// runs through the same call.
//
//   ./quickstart

#include <cstdio>
#include <vector>

#include "api/engine.h"
#include "core/usim.h"
#include "dataset/dataset.h"

using namespace aujoin;

int main() {
  // 1. Ingest the corpus through the dataset API. MakeDatasetFromLines
  // is the in-memory twin of LoadDataset (which reads CSV/TSV/JSONL
  // files — see examples/file_join.cpp); both give back a Dataset whose
  // vocabulary, records and knowledge slots all share one interner.
  Result<Dataset> ingested = MakeDatasetFromLines(
      {"coffee shop latte helsingki", "espresso cafe helsinki",
       "latte coffee shop", "cake bakery", "gateau bakery",
       "totally different place"});
  if (!ingested.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 ingested.status().ToString().c_str());
    return 1;
  }
  Dataset& dataset = *ingested;

  // Knowledge sources are interned into the same shared vocabulary.
  Vocabulary& vocab = dataset.vocab;
  auto name = [&](std::initializer_list<const char*> words) {
    std::vector<TokenId> ids;
    for (const char* w : words) ids.push_back(vocab.Intern(w));
    return ids;
  };

  // Taxonomy of Figure 1(a):
  //   wikipedia -> food -> coffee -> coffee drinks -> {latte, espresso}
  Taxonomy& taxonomy = dataset.taxonomy;
  NodeId root = taxonomy.AddRoot(name({"wikipedia"})).value();
  NodeId food = taxonomy.AddNode(root, name({"food"})).value();
  NodeId coffee = taxonomy.AddNode(food, name({"coffee"})).value();
  NodeId drinks = taxonomy.AddNode(coffee, name({"coffee", "drinks"})).value();
  taxonomy.AddNode(drinks, name({"latte"})).value();
  taxonomy.AddNode(drinks, name({"espresso"})).value();

  // Synonym rules of Figure 1(b).
  RuleSet& rules = dataset.rules;
  rules.AddRule(name({"coffee", "shop"}), name({"cafe"}), 1.0).value();
  rules.AddRule(name({"cake"}), name({"gateau"}), 1.0).value();

  dataset.RefreshManifest();
  std::printf("dataset: %s\n\n", dataset.manifest.ToJson().c_str());
  Knowledge knowledge = dataset.knowledge();

  // 2. Unified similarity of the two POI strings (Example 3).
  Record s = MakeRecord(0, "coffee shop latte Helsingki", &vocab);
  Record t = MakeRecord(1, "espresso cafe Helsinki", &vocab);

  UsimOptions options;
  options.msim.q = 1;  // Figure 1 scores (Helsingki, Helsinki) with q=1
  UsimComputer computer(knowledge, options);
  std::printf("USIM(\"%s\", \"%s\") = %.3f   (paper: 0.892)\n",
              s.text.c_str(), t.text.c_str(), computer.Approx(s, t));

  // 3. A small self-join through the Engine facade, over the ingested
  // records.
  const std::vector<Record>& pois = dataset.records;

  Engine engine = EngineBuilder()
                      .SetKnowledge(knowledge)
                      .SetMeasures("TJS")
                      .SetQ(1)
                      .Build();
  engine.SetRecords(pois);

  EngineJoinOptions join_options;
  join_options.theta = 0.7;
  join_options.tau = 2;
  join_options.method = FilterMethod::kAuDp;
  Result<JoinResult> result = engine.Join("unified", join_options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nself-join at theta=%.2f found %zu pairs "
              "(candidates=%llu, processed=%llu):\n",
              join_options.theta, result->pairs.size(),
              static_cast<unsigned long long>(result->stats.candidates),
              static_cast<unsigned long long>(result->stats.processed_pairs));
  for (const auto& [a, b] : result->pairs) {
    std::printf("  \"%s\"  <->  \"%s\"\n", pois[a].text.c_str(),
                pois[b].text.c_str());
  }

  // 4. The same corpus through every registered algorithm: one facade,
  // five algorithms (plus anything registered by extensions). Streaming
  // sinks mean nothing is materialised unless you ask for it.
  std::printf("\npairs found per registered algorithm at theta=0.7:\n");
  for (const std::string& algo : AlgorithmRegistry::Global().Names()) {
    CountingSink counter;
    Result<JoinStats> stats = engine.Join(algo, join_options, &counter);
    if (!stats.ok()) continue;
    std::printf("  %-12s %llu\n", algo.c_str(),
                static_cast<unsigned long long>(counter.count()));
  }
  return 0;
}
