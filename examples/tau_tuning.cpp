// Parameter-tuning scenario: watch Algorithm 7 converge. Runs the
// Bernoulli/Monte-Carlo estimator with verbose per-iteration output:
// the per-tau cost estimates, their confidence intervals, and the moment
// the stopping rule (Ineq. 24) fires — then validates the suggestion by
// exhaustively joining with every tau.
//
//   ./tau_tuning [--strings=1500] [--theta=0.8]

#include <cstdio>

#include "api/engine.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace aujoin;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 1500));
  double theta = flags.GetDouble("theta", 0.8);
  std::vector<int64_t> universe = flags.GetIntList("tau", {1, 2, 3, 4, 6});

  Vocabulary vocab;
  Taxonomy taxonomy = GenerateTaxonomy({.num_nodes = 2000}, &vocab);
  RuleSet rules = GenerateSynonyms({.num_rules = 2000}, taxonomy, &vocab);
  Knowledge knowledge{&vocab, &rules, &taxonomy};
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus =
      gen.Generate(CorpusProfile::Med(n), {.num_pairs = n / 8});

  // The engine owns the prepared context; the tracing loop below drives
  // the filter stage on it directly (what PreparedContext() is for).
  Engine engine = EngineBuilder()
                      .SetKnowledge(knowledge)
                      .SetMeasures("TJS")
                      .SetQ(3)
                      .Build();
  engine.SetRecords(corpus.records);
  JoinContext& context = engine.PreparedContext();
  JoinOptions join_opts;
  join_opts.theta = theta;
  join_opts.method = FilterMethod::kAuHeuristic;
  CostModel model = CalibrateCostModel(context, join_opts);
  std::printf("calibrated cost model: c_f=%.3g s/pair  c_v=%.3g s/pair\n\n",
              model.cf, model.cv);

  // Manual iteration loop (same maths as RecommendTau) with tracing.
  Rng rng(42);
  std::vector<TauEstimator> est(universe.size());
  double ps = 0.05;
  SignatureOptions sig;
  sig.theta = theta;
  sig.method = FilterMethod::kAuHeuristic;
  std::printf("iter");
  for (int64_t tau : universe) {
    std::printf("  cost(tau=%lld)", static_cast<long long>(tau));
  }
  std::printf("\n");
  int chosen = -1;
  for (int it = 1; it <= 60; ++it) {
    BernoulliSample sample =
        DrawBernoulliSample(context.s_prepared().size(),
                            context.s_prepared().size(), true, ps, ps, &rng);
    std::printf("%4d", it);
    for (size_t k = 0; k < universe.size(); ++k) {
      sig.tau = static_cast<int>(universe[k]);
      AccumulateSampleEstimate(context, sig, sample, ps, ps, &est[k]);
      std::printf("  %12.4f", est[k].CostMean(model.cf, model.cv));
    }
    std::printf("\n");
    if (it < 10) continue;  // burn-in n*
    double t_star = StudentTQuantile(0.70, it - 1);
    size_t best = 0;
    for (size_t k = 1; k < universe.size(); ++k) {
      if (est[k].CostMean(model.cf, model.cv) <
          est[best].CostMean(model.cf, model.cv)) {
        best = k;
      }
    }
    auto half = [&](size_t k) {
      return t_star *
             std::sqrt(est[k].CostVariance(model.cf, model.cv) / it);
    };
    double upper = est[best].CostMean(model.cf, model.cv) + half(best);
    double lowest_other = 1e300;
    for (size_t k = 0; k < universe.size(); ++k) {
      if (k != best) {
        lowest_other = std::min(
            lowest_other, est[k].CostMean(model.cf, model.cv) - half(k));
      }
    }
    double next_cost = 0;
    for (const auto& e : est) {
      next_cost += model.cf * static_cast<double>(e.last_raw_processed);
    }
    if (upper - lowest_other < next_cost) {
      chosen = static_cast<int>(universe[best]);
      std::printf("stopping rule fired at iteration %d: tau* = %d\n", it,
                  chosen);
      break;
    }
  }
  if (chosen < 0) std::printf("hit the iteration cap without convergence\n");

  // Validate against the true join times, through the facade.
  std::printf("\nvalidation (full joins):\n%-6s %12s\n", "tau", "time_s");
  for (int64_t tau : universe) {
    EngineJoinOptions options;
    options.theta = theta;
    options.method = FilterMethod::kAuHeuristic;
    options.tau = static_cast<int>(tau);
    CountingSink sink;
    WallTimer timer;
    Result<JoinStats> run = engine.Join("unified", options, &sink);
    if (!run.ok()) {
      std::printf("%-6lld %12s  %s\n", static_cast<long long>(tau), "err",
                  run.status().ToString().c_str());
      continue;
    }
    std::printf("%-6lld %12.3f%s\n", static_cast<long long>(tau),
                timer.Seconds(),
                chosen == static_cast<int>(tau) ? "   <= suggested" : "");
  }
  return 0;
}
