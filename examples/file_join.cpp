// File-driven workflow: join your own data with your own knowledge
// sources, end to end through the dataset ingestion layer. A single
// LoadDataset call reads the records file (any supported format), the
// synonym-rule TSV and the taxonomy TSV into one shared vocabulary;
// the join then streams matched pairs straight to an output TSV via a
// MatchSink — the full result is never materialised in memory.
//
//   ./file_join --strings=data.txt --rules=rules.tsv --taxonomy=tax.tsv
//               --out=pairs.tsv [--theta=0.8] [--tau=0] [--threads=0]
//               [--algorithm=unified]
//
// With --tau=0 the overlap constraint is chosen by Algorithm 7.
// --algorithm accepts any registry name (unified, kjoin, pkduck,
// adaptjoin, combination). Run without arguments to see the demo: it
// generates a small world, saves it to temporary files, and joins from
// those files — exercising the exact path an adopter would use. For
// the full-featured driver (CSV/JSONL column selection, stats JSON,
// R x S joins) use the aujoin CLI instead: docs/cli.md.

#include <cstdio>
#include <fstream>
#include <string>

#include "api/engine.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "dataset/dataset.h"
#include "synonym/rule_io.h"
#include "taxonomy/taxonomy_io.h"
#include "util/flags.h"
#include "util/io.h"

using namespace aujoin;

namespace {

// Builds demo input files so the example is runnable with no arguments.
void WriteDemoFiles(const std::string& tax_path, const std::string& rule_path,
                    const std::string& strings_path) {
  Vocabulary vocab;
  Taxonomy taxonomy = GenerateTaxonomy({.num_nodes = 800}, &vocab);
  RuleSet rules = GenerateSynonyms({.num_rules = 800}, taxonomy, &vocab);
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus = gen.Generate(CorpusProfile::Med(400), {.num_pairs = 60});

  SaveTaxonomyToTsv(taxonomy, vocab, tax_path);
  SaveRulesToTsv(rules, vocab, rule_path);
  std::vector<std::string> lines;
  for (const Record& r : corpus.records) lines.push_back(r.text);
  WriteLines(strings_path, lines);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string tax_path = flags.GetString("taxonomy", "");
  std::string rule_path = flags.GetString("rules", "");
  std::string strings_path = flags.GetString("strings", "");
  std::string out_path = flags.GetString("out", "/tmp/aujoin_pairs.tsv");
  double theta = flags.GetDouble("theta", 0.8);
  int tau = static_cast<int>(flags.GetInt("tau", 0));
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  std::string algorithm = flags.GetString("algorithm", "unified");

  if (tax_path.empty() || rule_path.empty() || strings_path.empty()) {
    std::printf("no input files given; running the self-contained demo\n");
    tax_path = "/tmp/aujoin_demo_taxonomy.tsv";
    rule_path = "/tmp/aujoin_demo_rules.tsv";
    strings_path = "/tmp/aujoin_demo_strings.txt";
    WriteDemoFiles(tax_path, rule_path, strings_path);
  }

  // One call ingests everything into one shared vocabulary: records
  // (format resolved from the extension), synonym rules and taxonomy.
  DatasetSpec spec;
  spec.records_path = strings_path;
  spec.rules_path = rule_path;
  spec.taxonomy_path = tax_path;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineBuilder()
                      .SetKnowledge(dataset->knowledge())
                      .SetMeasures("TJS")
                      .SetQ(3)
                      .SetThreads(threads)
                      .Build();
  engine.SetRecords(dataset->records);

  EngineJoinOptions options;
  options.theta = theta;
  options.method = FilterMethod::kAuDp;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "# id_a\tid_b\ttext_a\ttext_b\n";

  // Pairs are written as their verification batch completes — the full
  // result is never materialised in memory.
  const std::vector<Record>& records = dataset->records;
  uint64_t written = 0;
  CallbackSink tsv_sink([&](uint32_t a, uint32_t b) {
    out << a << '\t' << b << '\t' << records[a].text << '\t'
        << records[b].text << '\n';
    ++written;
    return true;
  });

  JoinStats stats;
  if (tau <= 0 && algorithm == "unified") {
    TunerOptions tuner;
    tuner.theta = theta;
    tuner.method = FilterMethod::kAuDp;
    tuner.sample_prob_s = 0.05;
    TauRecommendation rec;
    Result<JoinResult> result =
        engine.JoinWithSuggestedTau(options, tuner, &rec);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("Algorithm 7 suggested tau=%d (%.3fs)\n", rec.best_tau,
                rec.seconds);
    for (const auto& [a, b] : result->pairs) tsv_sink.OnMatch(a, b);
    stats = result->stats;
  } else {
    options.tau = tau > 0 ? tau : 1;
    Result<JoinStats> run = engine.Join(algorithm, options, &tsv_sink);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    stats = *run;
  }

  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: failed writing %s\n", out_path.c_str());
    return 1;
  }
  std::printf("join[%s]: %llu pairs (processed=%llu candidates=%llu) "
              "filter=%.3fs verify=%.3fs\n",
              algorithm.c_str(), static_cast<unsigned long long>(written),
              static_cast<unsigned long long>(stats.processed_pairs),
              static_cast<unsigned long long>(stats.candidates),
              stats.signature_seconds + stats.filter_seconds,
              stats.verify_seconds);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
