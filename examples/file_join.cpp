// File-driven workflow: join your own data with your own knowledge
// sources. Reads a taxonomy TSV, a synonym-rule TSV and a strings file
// (one record per line), runs the unified self-join, and writes matched
// pairs to an output TSV.
//
//   ./file_join --taxonomy=tax.tsv --rules=rules.tsv --strings=data.txt \
//               --out=pairs.tsv [--theta=0.8] [--tau=0] [--threads=0]
//
// With --tau=0 the overlap constraint is chosen by Algorithm 7.
// Run without arguments to see the demo: it generates a small world,
// saves it to temporary files, and joins from those files — exercising
// the exact path an adopter would use.

#include <cstdio>
#include <string>

#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "synonym/rule_io.h"
#include "taxonomy/taxonomy_io.h"
#include "tuner/recommend.h"
#include "util/flags.h"
#include "util/io.h"

using namespace aujoin;

namespace {

// Builds demo input files so the example is runnable with no arguments.
void WriteDemoFiles(const std::string& tax_path, const std::string& rule_path,
                    const std::string& strings_path) {
  Vocabulary vocab;
  Taxonomy taxonomy = GenerateTaxonomy({.num_nodes = 800}, &vocab);
  RuleSet rules = GenerateSynonyms({.num_rules = 800}, taxonomy, &vocab);
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus = gen.Generate(CorpusProfile::Med(400), {.num_pairs = 60});

  SaveTaxonomyToTsv(taxonomy, vocab, tax_path);
  SaveRulesToTsv(rules, vocab, rule_path);
  std::vector<std::string> lines;
  for (const Record& r : corpus.records) lines.push_back(r.text);
  WriteLines(strings_path, lines);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string tax_path = flags.GetString("taxonomy", "");
  std::string rule_path = flags.GetString("rules", "");
  std::string strings_path = flags.GetString("strings", "");
  std::string out_path = flags.GetString("out", "/tmp/aujoin_pairs.tsv");
  double theta = flags.GetDouble("theta", 0.8);
  int tau = static_cast<int>(flags.GetInt("tau", 0));
  int threads = static_cast<int>(flags.GetInt("threads", 0));

  if (tax_path.empty() || rule_path.empty() || strings_path.empty()) {
    std::printf("no input files given; running the self-contained demo\n");
    tax_path = "/tmp/aujoin_demo_taxonomy.tsv";
    rule_path = "/tmp/aujoin_demo_rules.tsv";
    strings_path = "/tmp/aujoin_demo_strings.txt";
    WriteDemoFiles(tax_path, rule_path, strings_path);
  }

  // Load everything into one shared vocabulary.
  Vocabulary vocab;
  auto taxonomy = LoadTaxonomyFromTsv(tax_path, &vocab);
  if (!taxonomy.ok()) {
    std::fprintf(stderr, "error: %s\n", taxonomy.status().ToString().c_str());
    return 1;
  }
  auto rules = LoadRulesFromTsv(rule_path, &vocab);
  if (!rules.ok()) {
    std::fprintf(stderr, "error: %s\n", rules.status().ToString().c_str());
    return 1;
  }
  auto lines = ReadLines(strings_path);
  if (!lines.ok()) {
    std::fprintf(stderr, "error: %s\n", lines.status().ToString().c_str());
    return 1;
  }
  std::vector<Record> records = MakeRecords(*lines, &vocab);
  std::printf("loaded: %zu taxonomy nodes, %zu rules, %zu strings\n",
              taxonomy->num_nodes(), rules->num_rules(), records.size());

  Knowledge knowledge{&vocab, &*rules, &*taxonomy};
  JoinContext context(knowledge, MsimOptions{.q = 3});
  context.Prepare(records, nullptr);

  JoinOptions options;
  options.theta = theta;
  options.method = FilterMethod::kAuDp;
  options.num_threads = threads;

  JoinResult result;
  if (tau <= 0) {
    TunerOptions tuner;
    tuner.theta = theta;
    tuner.method = FilterMethod::kAuDp;
    tuner.sample_prob_s = 0.05;
    TauRecommendation rec;
    result = JoinWithSuggestedTau(context, options, tuner, &rec);
    std::printf("Algorithm 7 suggested tau=%d (%.3fs)\n", rec.best_tau,
                rec.seconds);
  } else {
    options.tau = tau;
    result = UnifiedJoin(context, options);
  }

  std::printf("join: %zu pairs (processed=%llu candidates=%llu) "
              "filter=%.3fs verify=%.3fs\n",
              result.pairs.size(),
              static_cast<unsigned long long>(result.stats.processed_pairs),
              static_cast<unsigned long long>(result.stats.candidates),
              result.stats.signature_seconds + result.stats.filter_seconds,
              result.stats.verify_seconds);

  std::vector<std::string> out_lines;
  out_lines.push_back("# id_a\tid_b\ttext_a\ttext_b");
  for (const auto& [a, b] : result.pairs) {
    out_lines.push_back(std::to_string(a) + "\t" + std::to_string(b) + "\t" +
                        records[a].text + "\t" + records[b].text);
  }
  Status st = WriteLines(out_path, out_lines);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
