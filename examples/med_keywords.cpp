// Information-retrieval scenario: matching research-paper keyword strings
// (the paper's MED dataset) where near-duplicates arise from MeSH aliases
// ("myocardial infarction" vs "heart attack"), taxonomic siblings, and
// typos. Shows how the choice of similarity measures changes what a join
// can find — the paper's Table 8 story on a runnable scale.
//
//   ./med_keywords [--strings=1000] [--theta=0.75]

#include <cstdio>

#include "api/engine.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "util/flags.h"

using namespace aujoin;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t n = static_cast<size_t>(flags.GetInt("strings", 1000));
  double theta = flags.GetDouble("theta", 0.75);

  // MeSH-like taxonomy + alias dictionary + keyword corpus.
  Vocabulary vocab;
  Taxonomy taxonomy = GenerateTaxonomy({.num_nodes = 2000}, &vocab);
  RuleSet rules = GenerateSynonyms({.num_rules = 3000}, taxonomy, &vocab);
  Knowledge knowledge{&vocab, &rules, &taxonomy};
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus =
      gen.Generate(CorpusProfile::Med(n), {.num_pairs = n / 5});
  std::printf("MED-like corpus: %zu keyword strings, %zu labelled similar "
              "pairs, theta=%.2f\n\n",
              corpus.records.size(), corpus.truth_pairs.size(), theta);

  std::printf("%-8s | %6s %6s %6s | %10s %10s\n", "measures", "P", "R", "F",
              "pairs", "time_s");
  for (const char* combo : {"J", "T", "S", "JS", "TJ", "TS", "TJS"}) {
    Engine engine = EngineBuilder()
                        .SetKnowledge(knowledge)
                        .SetMeasures(combo)
                        .SetQ(3)
                        .Build();
    engine.SetRecords(corpus.records);
    EngineJoinOptions options;
    options.theta = theta;
    options.tau = 2;
    options.method = FilterMethod::kAuDp;
    Result<JoinResult> result = engine.Join("unified", options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrfScore score = ComputePrf(result->pairs, corpus.truth_pairs);
    std::printf("%-8s | %6.2f %6.2f %6.2f | %10zu %10.3f\n", combo,
                score.precision, score.recall, score.f_measure,
                result->pairs.size(), result->stats.TotalSeconds());
  }

  std::printf("\nExpected: each single measure misses the pairs whose edits "
              "it cannot see;\nTJS (the unified measure) recovers nearly all "
              "labelled pairs.\n");
  return 0;
}
