#include "api/engine.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "join/pipeline.h"
#include "shard/sharded_index.h"
#include "storage/env.h"
#include "storage/generational_index.h"
#include "storage/index_checkpoint.h"
#include "storage/wal_format.h"
#include "storage/wal_reader.h"
#include "storage/wal_writer.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {
namespace {

Env* ResolveEnv(const EngineOptions& options) {
  return options.env != nullptr ? options.env : Env::Default();
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;
Engine::~Engine() = default;

void Engine::SetRecords(const std::vector<Record>& s,
                        const std::vector<Record>* t) {
  s_records_ = &s;
  t_records_ = (t == &s) ? nullptr : t;
  context_.reset();
  from_snapshot_ = false;
  snapshot_load_seconds_ = 0.0;
  // Append mode is bound to the old records; tear it down. Destruction
  // order: the generational index borrows the WAL writer.
  generational_.reset();
  wal_.reset();
  make_record_ = nullptr;
  base_count_ = 0;
  wal_recovered_ = 0;
  checkpoint_path_.clear();
  auto_checkpoint_status_ = Status::OK();
  auto_checkpoints_ = 0;
  {
    std::lock_guard<std::mutex> lock(shard_state_->mutex);
    shard_state_->ready.store(false, std::memory_order_relaxed);
    sharded_.reset();
  }
  std::lock_guard<std::mutex> lock(index_state_->mutex);
  index_state_->ready.store(false, std::memory_order_relaxed);
  index_.reset();
}

Result<const ShardedIndex*> Engine::ShardedServing() const {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::ShardedServing called before SetRecords()");
  }
  // Same lock-free-once-published discipline as ServingIndex: mutations
  // are never concurrent with serving, so `ready` seen true means
  // sharded_ is stable until the next mutation.
  if (!shard_state_->ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(shard_state_->mutex);
    if (sharded_ == nullptr) {
      // Serving probes the T side (== S for a self-join); that is the
      // collection the shard plan splits.
      const std::vector<Record>& targets =
          t_records_ != nullptr ? *t_records_ : *s_records_;
      ShardPlan plan = ShardPlan::Make(targets.size(), options_.num_shards,
                                       options_.shard_by);
      sharded_ = std::make_unique<ShardedIndex>(options_.knowledge,
                                                options_.msim, targets, plan);
    }
    shard_state_->ready.store(true, std::memory_order_release);
  }
  return sharded_.get();
}

Status Engine::SaveIndex(const std::string& path) const {
  if (options_.num_shards > 0 && generational_ == nullptr) {
    // Sharded mode persists one snapshot file per shard behind a
    // manifest, so a later engine can mount shards independently.
    Result<const ShardedIndex*> sharded = ShardedServing();
    if (!sharded.ok()) return sharded.status();
    return (*sharded)->Save(path, ResolveEnv(options_));
  }
  Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
  if (!index.ok()) return index.status();
  return (*index)->Save(path, ResolveEnv(options_));
}

Status Engine::LoadIndex(const std::string& path) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::LoadIndex called before SetRecords()");
  }
  if (generational_ != nullptr) {
    return Status::FailedPrecondition(
        "Engine::LoadIndex is unavailable in append mode (EnableAppend "
        "mounts checkpoints itself)");
  }
  WallTimer timer;
  if (options_.num_shards > 0) {
    // Sharded mode mounts the manifest now and each shard's file lazily
    // at that shard's first probe.
    const std::vector<Record>& targets =
        t_records_ != nullptr ? *t_records_ : *s_records_;
    Result<std::unique_ptr<ShardedIndex>> loaded = ShardedIndex::Load(
        options_.knowledge, options_.msim, targets, options_.num_shards,
        options_.shard_by, path, ResolveEnv(options_));
    if (!loaded.ok()) return loaded.status();
    from_snapshot_ = true;
    snapshot_load_seconds_ = timer.Seconds();
    std::lock_guard<std::mutex> lock(shard_state_->mutex);
    sharded_ = std::move(*loaded);
    shard_state_->ready.store(true, std::memory_order_release);
    return Status::OK();
  }
  Result<std::shared_ptr<const PreparedIndex>> loaded = PreparedIndex::Load(
      options_.knowledge, options_.msim, *s_records_, t_records_, path,
      ResolveEnv(options_));
  if (!loaded.ok()) return loaded.status();
  context_.reset();  // a prepared join context would borrow the old index
  from_snapshot_ = true;
  snapshot_load_seconds_ = timer.Seconds();
  std::lock_guard<std::mutex> lock(index_state_->mutex);
  index_ = *loaded;
  index_state_->ready.store(true, std::memory_order_release);
  return Status::OK();
}

Status Engine::EnableAppend(const std::string& wal_path,
                            RecordFactory make_record,
                            const std::string& checkpoint_path) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::EnableAppend called before SetRecords()");
  }
  if (t_records_ != nullptr) {
    return Status::InvalidArgument(
        "append mode serves a single growing collection (self-join only)");
  }
  if (make_record == nullptr) {
    return Status::InvalidArgument(
        "EnableAppend requires a record factory to tokenise appends");
  }
  if (generational_ != nullptr) {
    return Status::FailedPrecondition(
        "append mode is already enabled (SetRecords resets it)");
  }
  Env* env = ResolveEnv(options_);

  // 1. The frozen base: a checkpoint when one exists, else the engine's
  // own lazy serving index over the bound records.
  std::shared_ptr<const std::vector<Record>> base_records;
  std::shared_ptr<const PreparedIndex> base_index;
  if (!checkpoint_path.empty() && env->FileExists(checkpoint_path)) {
    Result<CheckpointTexts> texts = ReadCheckpointTexts(checkpoint_path, env);
    if (!texts.ok()) return texts.status();
    if (texts->base_count != s_records_->size()) {
      return Status::FailedPrecondition(
          checkpoint_path + ": checkpoint base is " +
          std::to_string(texts->base_count) + " records, " +
          std::to_string(s_records_->size()) + " are bound");
    }
    // Rebuild the full record vector the checkpoint indexed: the bound
    // base plus its appended texts, re-tokenised in id order (which
    // reproduces the original interning, and thus the fingerprints).
    auto full = std::make_shared<std::vector<Record>>(*s_records_);
    full->reserve(full->size() + texts->texts.size());
    for (const std::string& text : texts->texts) {
      Record record = make_record(text);
      record.id = static_cast<uint32_t>(full->size());
      full->push_back(std::move(record));
    }
    Result<std::shared_ptr<const PreparedIndex>> loaded =
        PreparedIndex::Load(options_.knowledge, options_.msim, *full, nullptr,
                            checkpoint_path, env);
    if (!loaded.ok()) return loaded.status();
    base_records = std::move(full);
    base_index = std::move(*loaded);
  } else {
    Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
    if (!index.ok()) return index.status();
    base_index = *index;
    // Aliased: the engine's contract already keeps the bound records
    // alive, the shared_ptr just ties them to the index for the ride.
    base_records = std::shared_ptr<const std::vector<Record>>(base_index,
                                                              s_records_);
  }

  auto generational = std::make_unique<GenerationalIndex>(
      options_.knowledge, options_.msim, std::move(base_records),
      std::move(base_index));

  // 2. Replay the WAL on top of the base. Ids below the current size
  // are already covered (by the checkpoint — the log survives a crash
  // between checkpoint and log reset); a gap means mid-log loss.
  uint64_t recovered = 0;
  if (env->FileExists(wal_path)) {
    Result<WalReplay> replay = WalReader::ReadAll(env, wal_path);
    if (!replay.ok()) return replay.status();
    for (const std::string& payload : replay->records) {
      uint32_t id = 0;
      std::string_view text;
      if (!DecodeWalAppend(payload, &id, &text)) {
        return Status::Corruption(wal_path +
                                  ": WAL record too short for an append");
      }
      uint64_t size = generational->size();
      if (id < size) continue;
      if (id > size) {
        return Status::Corruption(
            wal_path + ": WAL append id " + std::to_string(id) +
            " skips past the " + std::to_string(size) +
            " records recovered so far (lost log records)");
      }
      generational->Append(make_record(std::string(text)));
      ++recovered;
    }
    // Trim a torn tail (and any zero-padding past the last complete
    // record) so the reopened writer resumes on a clean boundary.
    Result<uint64_t> size = env->GetFileSize(wal_path);
    if (!size.ok()) return size.status();
    if (*size != replay->valid_bytes) {
      AUJOIN_RETURN_NOT_OK(env->TruncateFile(wal_path, replay->valid_bytes));
    }
  }

  // 3. Reopen for appending and go live (with extents reserved so
  // steady-state appends don't pay allocation metadata per fsync).
  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(env, wal_path, /*truncate=*/false,
                      WalWriter::kDefaultPreallocateBytes);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  generational_ = std::move(generational);
  generational_->AttachWal(wal_.get());
  make_record_ = std::move(make_record);
  base_count_ = s_records_->size();
  wal_recovered_ = recovered;
  checkpoint_path_ = checkpoint_path;
  auto_checkpoint_status_ = Status::OK();
  auto_checkpoints_ = 0;
  return Status::OK();
}

Result<uint32_t> Engine::Append(const std::string& text) {
  if (generational_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Append requires append mode (EnableAppend first)");
  }
  Result<uint32_t> id = generational_->AppendDurable(make_record_(text));
  if (!id.ok()) return id;
  // Size-driven checkpointing: the append above is already durable (WAL
  // synced), so a failed checkpoint must not retro-fail it — the
  // outcome is recorded for the caller to poll and the log keeps
  // growing until a later attempt succeeds.
  if (options_.wal_checkpoint_bytes > 0 && !checkpoint_path_.empty() &&
      wal_ != nullptr && wal_->size() >= options_.wal_checkpoint_bytes) {
    auto_checkpoint_status_ = Checkpoint(checkpoint_path_);
    if (auto_checkpoint_status_.ok()) ++auto_checkpoints_;
  }
  return id;
}

Status Engine::Refreeze() {
  if (generational_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Refreeze requires append mode (EnableAppend first)");
  }
  generational_->Refreeze();
  return Status::OK();
}

Status Engine::Checkpoint(const std::string& path) {
  if (generational_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Checkpoint requires append mode (EnableAppend first)");
  }
  generational_->Refreeze();
  std::shared_ptr<const PreparedIndex> frozen = generational_->frozen_index();
  AUJOIN_RETURN_NOT_OK(
      SaveIndexCheckpoint(*frozen, base_count_, path, ResolveEnv(options_)));
  // The durably renamed checkpoint covers every logged record, so the
  // log restarts empty. A crash before this reset is fine (replay skips
  // covered ids); an append racing it is not — see the header contract.
  return wal_->Reset();
}

Result<std::shared_ptr<const PreparedIndex>> Engine::ServingIndex() const {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::ServingIndex called before SetRecords()");
  }
  // Lock-free once published: SetRecords (a mutation, never concurrent
  // with serving) is the only thing that unpublishes, so after the
  // acquire load sees `ready`, index_ is stable until then.
  if (!index_state_->ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(index_state_->mutex);
    if (index_ == nullptr) {
      index_ = PreparedIndex::Build(options_.knowledge, options_.msim,
                                    *s_records_, t_records_);
    }
    index_state_->ready.store(true, std::memory_order_release);
  }
  return index_;
}

JoinContext& Engine::PreparedContext() {
  if (s_records_ == nullptr) {
    // Returning a reference leaves no status channel; fail loudly rather
    // than dereferencing null inside Prepare().
    std::fprintf(stderr,
                 "Engine::PreparedContext() called before SetRecords()\n");
    std::abort();
  }
  if (context_ == nullptr) {
    context_ =
        std::make_unique<JoinContext>(options_.knowledge, options_.msim);
    // Joins borrow the same shared immutable index that serves Search.
    context_->Adopt(*ServingIndex());
  }
  return *context_;
}

AlgorithmContext Engine::MakeAlgorithmContext() {
  AlgorithmContext ctx;
  ctx.knowledge = &options_.knowledge;
  ctx.s_records = s_records_;
  ctx.t_records = t_records_;
  ctx.msim = options_.msim;
  ctx.num_threads = options_.num_threads;
  ctx.cache_evict_threshold = options_.cache_evict_threshold;
  ctx.stream_batch_size = options_.stream_batch_size;
  ctx.unified_context = [this]() -> JoinContext& {
    return PreparedContext();
  };
  return ctx;
}

Result<JoinStats> Engine::Join(const std::string& algorithm,
                               const EngineJoinOptions& options,
                               MatchSink* sink) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Join called before SetRecords()");
  }
  if (generational_ != nullptr) {
    return Status::FailedPrecondition(
        "Engine::Join is unavailable in append mode: joins run over the "
        "bound collections and would miss appended records");
  }
  if (sink == nullptr) {
    return Status::InvalidArgument("Engine::Join requires a sink");
  }
  std::unique_ptr<JoinAlgorithm> algo =
      AlgorithmRegistry::Global().Create(algorithm);
  if (algo == nullptr) {
    std::string known;
    for (const std::string& name : AlgorithmRegistry::Global().Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown join algorithm '" + algorithm +
                            "' (registered: " + known + ")");
  }
  if (t_records_ != nullptr && !algo->SupportsRsJoin()) {
    return Status::InvalidArgument("algorithm '" + algorithm +
                                   "' supports self-joins only");
  }
  AlgorithmContext ctx = MakeAlgorithmContext();
  JoinStats stats;
  if (options_.num_shards > 0 || options_.max_partition_records > 0) {
    PipelineOptions pipeline_options;
    pipeline_options.max_partition_records = options_.max_partition_records;
    pipeline_options.num_threads = options_.num_threads;
    pipeline_options.num_shards = options_.num_shards;
    pipeline_options.shard_by = options_.shard_by;
    pipeline_options.spill_budget_bytes = options_.spill_budget_bytes;
    pipeline_options.spill_dir = options_.spill_dir;
    pipeline_options.env = ResolveEnv(options_);
    AUJOIN_RETURN_NOT_OK(RunPartitionedJoin(
        [&algorithm] {
          return AlgorithmRegistry::Global().Create(algorithm);
        },
        ctx, options, pipeline_options, sink, &stats));
    return stats;
  }
  AUJOIN_RETURN_NOT_OK(algo->Run(ctx, options, sink, &stats));
  return stats;
}

Result<JoinResult> Engine::Join(const std::string& algorithm,
                                const EngineJoinOptions& options) {
  CollectingSink sink;
  Result<JoinStats> stats = Join(algorithm, options, &sink);
  if (!stats.ok()) return stats.status();
  JoinResult result;
  result.pairs = std::move(sink.pairs);
  result.stats = *stats;
  return result;
}

namespace {

UnifiedSearcher::SearchOptions ToSearcherOptions(
    const EngineSearchOptions& options) {
  UnifiedSearcher::SearchOptions out;
  out.theta = options.theta;
  out.tau = options.tau;
  out.method = options.method;
  return out;
}

}  // namespace

Result<std::vector<UnifiedSearcher::Match>> Engine::Search(
    const Record& query, const EngineSearchOptions& options,
    SearchStats* stats) const {
  if (generational_ != nullptr) {
    // Append mode: the generational index probes frozen + staging and
    // merges under the serving order; its Search is const-thread-safe.
    WallTimer wall;
    UnifiedSearcher::QueryStats query_stats;
    std::vector<UnifiedSearcher::Match> matches =
        options.k > 0 ? generational_->TopK(query, options.k, options.theta,
                                            ToSearcherOptions(options),
                                            &query_stats)
                      : generational_->Search(query,
                                              ToSearcherOptions(options),
                                              &query_stats);
    if (stats != nullptr) {
      stats->queries += query_stats.queries;
      stats->query_candidates += query_stats.candidates;
      stats->results += matches.size();
      stats->search_seconds += wall.Seconds();
    }
    return matches;
  }
  if (use_sharded_serving()) {
    // Scatter-gather: probe every shard in parallel and merge the
    // ranked lists — identical to the monolithic ranking (see
    // shard/sharded_index.h for the argument).
    Result<const ShardedIndex*> sharded = ShardedServing();
    if (!sharded.ok()) return sharded.status();
    WallTimer wall;
    double built_seconds = 0.0;
    UnifiedSearcher::QueryStats query_stats;
    Result<std::vector<UnifiedSearcher::Match>> matches =
        options.k > 0
            ? (*sharded)->TopK(query, options.k, options.theta,
                               ToSearcherOptions(options),
                               options_.num_threads, &query_stats,
                               &built_seconds)
            : (*sharded)->Search(query, ToSearcherOptions(options),
                                 options_.num_threads, &query_stats,
                                 &built_seconds);
    if (!matches.ok()) return matches.status();
    if (stats != nullptr) {
      stats->queries += query_stats.queries;
      stats->query_candidates += query_stats.candidates;
      stats->results += matches->size();
      stats->index_seconds += built_seconds;
      stats->search_seconds += wall.Seconds();
      stats->shards = (*sharded)->num_shards();
    }
    return matches;
  }
  Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
  if (!index.ok()) return index.status();
  WallTimer wall;
  // Force the frozen CSR serving index here so its one-time staging +
  // freeze cost is charged exactly once, to whichever concurrent call
  // actually performed it; afterwards every probe is a read-only scan.
  double index_built_seconds = 0.0;
  (*index)->ServingIndex(&index_built_seconds);
  UnifiedSearcher searcher(*index);
  UnifiedSearcher::QueryStats query_stats;
  std::vector<UnifiedSearcher::Match> matches =
      options.k > 0
          ? searcher.TopK(query, options.k, options.theta,
                          ToSearcherOptions(options), &query_stats)
          : searcher.Search(query, ToSearcherOptions(options), &query_stats);
  if (stats != nullptr) {
    stats->queries += query_stats.queries;
    stats->query_candidates += query_stats.candidates;
    stats->results += matches.size();
    stats->index_seconds += index_built_seconds;
    stats->search_seconds += wall.Seconds();
  }
  return matches;
}

Status Engine::Search(const Record& query, const EngineSearchOptions& options,
                      MatchSink* sink, SearchStats* stats) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("Engine::Search requires a sink");
  }
  // Count `results` as matches actually emitted (the sink may stop
  // early), matching BatchSearch's streaming semantics; the other
  // counters pass through from the vector Search.
  SearchStats local;
  Result<std::vector<UnifiedSearcher::Match>> matches =
      Search(query, options, stats == nullptr ? nullptr : &local);
  if (!matches.ok()) return matches.status();
  uint64_t emitted = 0;
  for (const UnifiedSearcher::Match& m : *matches) {
    ++emitted;
    if (!sink->OnMatch(query.id, m.id)) break;
  }
  if (stats != nullptr) {
    stats->queries += local.queries;
    stats->query_candidates += local.query_candidates;
    stats->index_seconds += local.index_seconds;
    stats->search_seconds += local.search_seconds;
    stats->results += emitted;
    if (local.shards > 0) stats->shards = local.shards;
  }
  return Status::OK();
}

Result<std::vector<UnifiedSearcher::Match>> Engine::TopK(
    const Record& query, size_t k, const EngineSearchOptions& options,
    SearchStats* stats) const {
  EngineSearchOptions bounded = options;
  bounded.k = k;
  if (k == 0) {
    // TopK's k is authoritative: explicitly asking for zero results
    // must not fall through to Search's "0 = unbounded" — and must not
    // force the lazy index build just to return nothing.
    if (s_records_ == nullptr) {
      return Status::FailedPrecondition(
          "Engine::TopK called before SetRecords()");
    }
    if (stats != nullptr) {
      ++stats->queries;
    }
    return std::vector<UnifiedSearcher::Match>{};
  }
  return Search(query, bounded, stats);
}

Status Engine::BatchSearch(
    const std::vector<Record>& queries, const EngineSearchOptions& options,
    const std::function<bool(uint32_t, const UnifiedSearcher::Match&)>&
        on_match,
    SearchStats* stats) const {
  if (on_match == nullptr) {
    return Status::InvalidArgument("BatchSearch requires a callback");
  }
  WallTimer wall;
  double index_built_seconds = 0.0;
  uint64_t scattered_shards = 0;
  const UnifiedSearcher::SearchOptions searcher_options =
      ToSearcherOptions(options);
  const int workers = ResolveThreads(options_.num_threads);
  std::vector<std::vector<UnifiedSearcher::Match>> results(queries.size());
  std::vector<UnifiedSearcher::QueryStats> worker_stats(workers);
  if (generational_ != nullptr) {
    // Append mode: each worker probes the generational index directly
    // (const and thread-safe; every query pins its own generations).
    const GenerationalIndex* generational = generational_.get();
    ParallelFor(queries.size(), options_.num_threads,
                [&](size_t begin, size_t end, int worker) {
                  for (size_t q = begin; q < end; ++q) {
                    results[q] =
                        options.k > 0
                            ? generational->TopK(queries[q], options.k,
                                                 options.theta,
                                                 searcher_options,
                                                 &worker_stats[worker])
                            : generational->Search(queries[q],
                                                   searcher_options,
                                                   &worker_stats[worker]);
                  }
                });
  } else if (use_sharded_serving()) {
    // Parallelism lives at the query level here (each worker owns a
    // query slice), so every per-query scatter runs its shard scans
    // serially — never a pool inside a pool.
    Result<const ShardedIndex*> shardedr = ShardedServing();
    if (!shardedr.ok()) return shardedr.status();
    const ShardedIndex* sharded = *shardedr;
    scattered_shards = sharded->num_shards();
    std::vector<double> worker_built(workers, 0.0);
    std::vector<Status> worker_status(workers, Status::OK());
    std::atomic<bool> failed{false};
    ParallelFor(queries.size(), options_.num_threads,
                [&](size_t begin, size_t end, int worker) {
                  for (size_t q = begin; q < end; ++q) {
                    if (failed.load(std::memory_order_relaxed)) return;
                    Result<std::vector<UnifiedSearcher::Match>> matches =
                        options.k > 0
                            ? sharded->TopK(queries[q], options.k,
                                            options.theta, searcher_options,
                                            /*num_threads=*/1,
                                            &worker_stats[worker],
                                            &worker_built[worker])
                            : sharded->Search(queries[q], searcher_options,
                                              /*num_threads=*/1,
                                              &worker_stats[worker],
                                              &worker_built[worker]);
                    if (!matches.ok()) {
                      worker_status[worker] = matches.status();
                      failed.store(true, std::memory_order_relaxed);
                      return;
                    }
                    results[q] = std::move(*matches);
                  }
                });
    for (const Status& status : worker_status) {
      if (!status.ok()) return status;
    }
    for (double built : worker_built) index_built_seconds += built;
  } else {
    Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
    if (!index.ok()) return index.status();
    // Force the frozen CSR serving index once up front so the parallel
    // workers only read it (they would build it safely anyway, but
    // serially); the build cost is charged to this call only if it
    // performed the build. Each worker then reuses one thread_local
    // count-merge accumulator across its whole query slice.
    (*index)->ServingIndex(&index_built_seconds);

    UnifiedSearcher searcher(*index);
    ParallelFor(queries.size(), options_.num_threads,
                [&](size_t begin, size_t end, int worker) {
                  for (size_t q = begin; q < end; ++q) {
                    results[q] = options.k > 0
                                     ? searcher.TopK(queries[q], options.k,
                                                     options.theta,
                                                     searcher_options,
                                                     &worker_stats[worker])
                                     : searcher.Search(queries[q],
                                                       searcher_options,
                                                       &worker_stats[worker]);
                  }
                });
  }

  uint64_t emitted = 0;
  bool stopped = false;
  for (size_t q = 0; q < queries.size() && !stopped; ++q) {
    for (const UnifiedSearcher::Match& m : results[q]) {
      ++emitted;
      if (!on_match(static_cast<uint32_t>(q), m)) {
        stopped = true;
        break;
      }
    }
  }
  if (stats != nullptr) {
    for (const UnifiedSearcher::QueryStats& ws : worker_stats) {
      stats->queries += ws.queries;
      stats->query_candidates += ws.candidates;
    }
    stats->results += emitted;
    stats->index_seconds += index_built_seconds;
    stats->search_seconds += wall.Seconds();
    if (scattered_shards > 0) stats->shards = scattered_shards;
  }
  return Status::OK();
}

Status Engine::BatchSearch(const std::vector<Record>& queries,
                           const EngineSearchOptions& options,
                           MatchSink* sink, SearchStats* stats) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("BatchSearch requires a sink");
  }
  return BatchSearch(
      queries, options,
      [sink](uint32_t query_index, const UnifiedSearcher::Match& m) {
        return sink->OnMatch(query_index, m.id);
      },
      stats);
}

Result<JoinResult> Engine::JoinWithSuggestedTau(
    const EngineJoinOptions& options, const TunerOptions& tuner_options,
    TauRecommendation* recommendation) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::JoinWithSuggestedTau called before SetRecords()");
  }
  if (generational_ != nullptr) {
    return Status::FailedPrecondition(
        "Engine::JoinWithSuggestedTau is unavailable in append mode");
  }
  JoinOptions join_options;
  join_options.theta = options.theta;
  join_options.tau = options.tau;
  join_options.method = options.method;
  join_options.exact_min_partition = options.exact_min_partition;
  join_options.usim = options.usim;
  join_options.cache_evict_threshold = options_.cache_evict_threshold;
  join_options.num_threads = options_.num_threads;
  return aujoin::JoinWithSuggestedTau(PreparedContext(), join_options,
                                      tuner_options, recommendation);
}

}  // namespace aujoin
