#include "api/engine.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "join/pipeline.h"

namespace aujoin {

void Engine::SetRecords(const std::vector<Record>& s,
                        const std::vector<Record>* t) {
  s_records_ = &s;
  t_records_ = (t == &s) ? nullptr : t;
  context_.reset();
}

JoinContext& Engine::PreparedContext() {
  if (s_records_ == nullptr) {
    // Returning a reference leaves no status channel; fail loudly rather
    // than dereferencing null inside Prepare().
    std::fprintf(stderr,
                 "Engine::PreparedContext() called before SetRecords()\n");
    std::abort();
  }
  if (context_ == nullptr) {
    context_ =
        std::make_unique<JoinContext>(options_.knowledge, options_.msim);
    context_->Prepare(*s_records_, t_records_);
  }
  return *context_;
}

AlgorithmContext Engine::MakeAlgorithmContext() {
  AlgorithmContext ctx;
  ctx.knowledge = &options_.knowledge;
  ctx.s_records = s_records_;
  ctx.t_records = t_records_;
  ctx.msim = options_.msim;
  ctx.num_threads = options_.num_threads;
  ctx.cache_evict_threshold = options_.cache_evict_threshold;
  ctx.stream_batch_size = options_.stream_batch_size;
  ctx.unified_context = [this]() -> JoinContext& {
    return PreparedContext();
  };
  return ctx;
}

Result<JoinStats> Engine::Join(const std::string& algorithm,
                               const EngineJoinOptions& options,
                               MatchSink* sink) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Join called before SetRecords()");
  }
  if (sink == nullptr) {
    return Status::InvalidArgument("Engine::Join requires a sink");
  }
  std::unique_ptr<JoinAlgorithm> algo =
      AlgorithmRegistry::Global().Create(algorithm);
  if (algo == nullptr) {
    std::string known;
    for (const std::string& name : AlgorithmRegistry::Global().Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown join algorithm '" + algorithm +
                            "' (registered: " + known + ")");
  }
  if (t_records_ != nullptr && !algo->SupportsRsJoin()) {
    return Status::InvalidArgument("algorithm '" + algorithm +
                                   "' supports self-joins only");
  }
  AlgorithmContext ctx = MakeAlgorithmContext();
  JoinStats stats;
  if (options_.max_partition_records > 0) {
    PipelineOptions pipeline_options;
    pipeline_options.max_partition_records = options_.max_partition_records;
    pipeline_options.num_threads = options_.num_threads;
    AUJOIN_RETURN_NOT_OK(RunPartitionedJoin(
        [&algorithm] {
          return AlgorithmRegistry::Global().Create(algorithm);
        },
        ctx, options, pipeline_options, sink, &stats));
    return stats;
  }
  AUJOIN_RETURN_NOT_OK(algo->Run(ctx, options, sink, &stats));
  return stats;
}

Result<JoinResult> Engine::Join(const std::string& algorithm,
                                const EngineJoinOptions& options) {
  CollectingSink sink;
  Result<JoinStats> stats = Join(algorithm, options, &sink);
  if (!stats.ok()) return stats.status();
  JoinResult result;
  result.pairs = std::move(sink.pairs);
  result.stats = *stats;
  return result;
}

Result<JoinResult> Engine::JoinWithSuggestedTau(
    const EngineJoinOptions& options, const TunerOptions& tuner_options,
    TauRecommendation* recommendation) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::JoinWithSuggestedTau called before SetRecords()");
  }
  JoinOptions join_options;
  join_options.theta = options.theta;
  join_options.tau = options.tau;
  join_options.method = options.method;
  join_options.exact_min_partition = options.exact_min_partition;
  join_options.usim = options.usim;
  join_options.cache_evict_threshold = options_.cache_evict_threshold;
  join_options.num_threads = options_.num_threads;
  return aujoin::JoinWithSuggestedTau(PreparedContext(), join_options,
                                      tuner_options, recommendation);
}

}  // namespace aujoin
