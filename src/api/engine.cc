#include "api/engine.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "join/pipeline.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {

void Engine::SetRecords(const std::vector<Record>& s,
                        const std::vector<Record>* t) {
  s_records_ = &s;
  t_records_ = (t == &s) ? nullptr : t;
  context_.reset();
  from_snapshot_ = false;
  snapshot_load_seconds_ = 0.0;
  std::lock_guard<std::mutex> lock(index_state_->mutex);
  index_state_->ready.store(false, std::memory_order_relaxed);
  index_.reset();
}

Status Engine::SaveIndex(const std::string& path) const {
  Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
  if (!index.ok()) return index.status();
  return (*index)->Save(path);
}

Status Engine::LoadIndex(const std::string& path) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::LoadIndex called before SetRecords()");
  }
  WallTimer timer;
  Result<std::shared_ptr<const PreparedIndex>> loaded = PreparedIndex::Load(
      options_.knowledge, options_.msim, *s_records_, t_records_, path);
  if (!loaded.ok()) return loaded.status();
  context_.reset();  // a prepared join context would borrow the old index
  from_snapshot_ = true;
  snapshot_load_seconds_ = timer.Seconds();
  std::lock_guard<std::mutex> lock(index_state_->mutex);
  index_ = *loaded;
  index_state_->ready.store(true, std::memory_order_release);
  return Status::OK();
}

Result<std::shared_ptr<const PreparedIndex>> Engine::ServingIndex() const {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::ServingIndex called before SetRecords()");
  }
  // Lock-free once published: SetRecords (a mutation, never concurrent
  // with serving) is the only thing that unpublishes, so after the
  // acquire load sees `ready`, index_ is stable until then.
  if (!index_state_->ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(index_state_->mutex);
    if (index_ == nullptr) {
      index_ = PreparedIndex::Build(options_.knowledge, options_.msim,
                                    *s_records_, t_records_);
    }
    index_state_->ready.store(true, std::memory_order_release);
  }
  return index_;
}

JoinContext& Engine::PreparedContext() {
  if (s_records_ == nullptr) {
    // Returning a reference leaves no status channel; fail loudly rather
    // than dereferencing null inside Prepare().
    std::fprintf(stderr,
                 "Engine::PreparedContext() called before SetRecords()\n");
    std::abort();
  }
  if (context_ == nullptr) {
    context_ =
        std::make_unique<JoinContext>(options_.knowledge, options_.msim);
    // Joins borrow the same shared immutable index that serves Search.
    context_->Adopt(*ServingIndex());
  }
  return *context_;
}

AlgorithmContext Engine::MakeAlgorithmContext() {
  AlgorithmContext ctx;
  ctx.knowledge = &options_.knowledge;
  ctx.s_records = s_records_;
  ctx.t_records = t_records_;
  ctx.msim = options_.msim;
  ctx.num_threads = options_.num_threads;
  ctx.cache_evict_threshold = options_.cache_evict_threshold;
  ctx.stream_batch_size = options_.stream_batch_size;
  ctx.unified_context = [this]() -> JoinContext& {
    return PreparedContext();
  };
  return ctx;
}

Result<JoinStats> Engine::Join(const std::string& algorithm,
                               const EngineJoinOptions& options,
                               MatchSink* sink) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Join called before SetRecords()");
  }
  if (sink == nullptr) {
    return Status::InvalidArgument("Engine::Join requires a sink");
  }
  std::unique_ptr<JoinAlgorithm> algo =
      AlgorithmRegistry::Global().Create(algorithm);
  if (algo == nullptr) {
    std::string known;
    for (const std::string& name : AlgorithmRegistry::Global().Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown join algorithm '" + algorithm +
                            "' (registered: " + known + ")");
  }
  if (t_records_ != nullptr && !algo->SupportsRsJoin()) {
    return Status::InvalidArgument("algorithm '" + algorithm +
                                   "' supports self-joins only");
  }
  AlgorithmContext ctx = MakeAlgorithmContext();
  JoinStats stats;
  if (options_.max_partition_records > 0) {
    PipelineOptions pipeline_options;
    pipeline_options.max_partition_records = options_.max_partition_records;
    pipeline_options.num_threads = options_.num_threads;
    AUJOIN_RETURN_NOT_OK(RunPartitionedJoin(
        [&algorithm] {
          return AlgorithmRegistry::Global().Create(algorithm);
        },
        ctx, options, pipeline_options, sink, &stats));
    return stats;
  }
  AUJOIN_RETURN_NOT_OK(algo->Run(ctx, options, sink, &stats));
  return stats;
}

Result<JoinResult> Engine::Join(const std::string& algorithm,
                                const EngineJoinOptions& options) {
  CollectingSink sink;
  Result<JoinStats> stats = Join(algorithm, options, &sink);
  if (!stats.ok()) return stats.status();
  JoinResult result;
  result.pairs = std::move(sink.pairs);
  result.stats = *stats;
  return result;
}

namespace {

UnifiedSearcher::SearchOptions ToSearcherOptions(
    const EngineSearchOptions& options) {
  UnifiedSearcher::SearchOptions out;
  out.theta = options.theta;
  out.tau = options.tau;
  out.method = options.method;
  return out;
}

}  // namespace

Result<std::vector<UnifiedSearcher::Match>> Engine::Search(
    const Record& query, const EngineSearchOptions& options,
    SearchStats* stats) const {
  Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
  if (!index.ok()) return index.status();
  WallTimer wall;
  // Force the frozen CSR serving index here so its one-time staging +
  // freeze cost is charged exactly once, to whichever concurrent call
  // actually performed it; afterwards every probe is a read-only scan.
  double index_built_seconds = 0.0;
  (*index)->ServingIndex(&index_built_seconds);
  UnifiedSearcher searcher(*index);
  UnifiedSearcher::QueryStats query_stats;
  std::vector<UnifiedSearcher::Match> matches =
      options.k > 0
          ? searcher.TopK(query, options.k, options.theta,
                          ToSearcherOptions(options), &query_stats)
          : searcher.Search(query, ToSearcherOptions(options), &query_stats);
  if (stats != nullptr) {
    stats->queries += query_stats.queries;
    stats->query_candidates += query_stats.candidates;
    stats->results += matches.size();
    stats->index_seconds += index_built_seconds;
    stats->search_seconds += wall.Seconds();
  }
  return matches;
}

Status Engine::Search(const Record& query, const EngineSearchOptions& options,
                      MatchSink* sink, SearchStats* stats) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("Engine::Search requires a sink");
  }
  // Count `results` as matches actually emitted (the sink may stop
  // early), matching BatchSearch's streaming semantics; the other
  // counters pass through from the vector Search.
  SearchStats local;
  Result<std::vector<UnifiedSearcher::Match>> matches =
      Search(query, options, stats == nullptr ? nullptr : &local);
  if (!matches.ok()) return matches.status();
  uint64_t emitted = 0;
  for (const UnifiedSearcher::Match& m : *matches) {
    ++emitted;
    if (!sink->OnMatch(query.id, m.id)) break;
  }
  if (stats != nullptr) {
    stats->queries += local.queries;
    stats->query_candidates += local.query_candidates;
    stats->index_seconds += local.index_seconds;
    stats->search_seconds += local.search_seconds;
    stats->results += emitted;
  }
  return Status::OK();
}

Result<std::vector<UnifiedSearcher::Match>> Engine::TopK(
    const Record& query, size_t k, const EngineSearchOptions& options,
    SearchStats* stats) const {
  EngineSearchOptions bounded = options;
  bounded.k = k;
  if (k == 0) {
    // TopK's k is authoritative: explicitly asking for zero results
    // must not fall through to Search's "0 = unbounded" — and must not
    // force the lazy index build just to return nothing.
    if (s_records_ == nullptr) {
      return Status::FailedPrecondition(
          "Engine::TopK called before SetRecords()");
    }
    if (stats != nullptr) {
      ++stats->queries;
    }
    return std::vector<UnifiedSearcher::Match>{};
  }
  return Search(query, bounded, stats);
}

Status Engine::BatchSearch(
    const std::vector<Record>& queries, const EngineSearchOptions& options,
    const std::function<bool(uint32_t, const UnifiedSearcher::Match&)>&
        on_match,
    SearchStats* stats) const {
  if (on_match == nullptr) {
    return Status::InvalidArgument("BatchSearch requires a callback");
  }
  Result<std::shared_ptr<const PreparedIndex>> index = ServingIndex();
  if (!index.ok()) return index.status();
  WallTimer wall;
  // Force the frozen CSR serving index once up front so the parallel
  // workers only read it (they would build it safely anyway, but
  // serially); the build cost is charged to this call only if it
  // performed the build. Each worker then reuses one thread_local
  // count-merge accumulator across its whole query slice.
  double index_built_seconds = 0.0;
  (*index)->ServingIndex(&index_built_seconds);

  UnifiedSearcher searcher(*index);
  const UnifiedSearcher::SearchOptions searcher_options =
      ToSearcherOptions(options);
  const int workers = ResolveThreads(options_.num_threads);
  std::vector<std::vector<UnifiedSearcher::Match>> results(queries.size());
  std::vector<UnifiedSearcher::QueryStats> worker_stats(workers);
  ParallelFor(queries.size(), options_.num_threads,
              [&](size_t begin, size_t end, int worker) {
                for (size_t q = begin; q < end; ++q) {
                  results[q] = options.k > 0
                                   ? searcher.TopK(queries[q], options.k,
                                                   options.theta,
                                                   searcher_options,
                                                   &worker_stats[worker])
                                   : searcher.Search(queries[q],
                                                     searcher_options,
                                                     &worker_stats[worker]);
                }
              });

  uint64_t emitted = 0;
  bool stopped = false;
  for (size_t q = 0; q < queries.size() && !stopped; ++q) {
    for (const UnifiedSearcher::Match& m : results[q]) {
      ++emitted;
      if (!on_match(static_cast<uint32_t>(q), m)) {
        stopped = true;
        break;
      }
    }
  }
  if (stats != nullptr) {
    for (const UnifiedSearcher::QueryStats& ws : worker_stats) {
      stats->queries += ws.queries;
      stats->query_candidates += ws.candidates;
    }
    stats->results += emitted;
    stats->index_seconds += index_built_seconds;
    stats->search_seconds += wall.Seconds();
  }
  return Status::OK();
}

Status Engine::BatchSearch(const std::vector<Record>& queries,
                           const EngineSearchOptions& options,
                           MatchSink* sink, SearchStats* stats) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("BatchSearch requires a sink");
  }
  return BatchSearch(
      queries, options,
      [sink](uint32_t query_index, const UnifiedSearcher::Match& m) {
        return sink->OnMatch(query_index, m.id);
      },
      stats);
}

Result<JoinResult> Engine::JoinWithSuggestedTau(
    const EngineJoinOptions& options, const TunerOptions& tuner_options,
    TauRecommendation* recommendation) {
  if (s_records_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::JoinWithSuggestedTau called before SetRecords()");
  }
  JoinOptions join_options;
  join_options.theta = options.theta;
  join_options.tau = options.tau;
  join_options.method = options.method;
  join_options.exact_min_partition = options.exact_min_partition;
  join_options.usim = options.usim;
  join_options.cache_evict_threshold = options_.cache_evict_threshold;
  join_options.num_threads = options_.num_threads;
  return aujoin::JoinWithSuggestedTau(PreparedContext(), join_options,
                                      tuner_options, recommendation);
}

}  // namespace aujoin
