#ifndef AUJOIN_API_REGISTRY_H_
#define AUJOIN_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/join_algorithm.h"

namespace aujoin {

/// String-keyed factory registry of join algorithms. The process-wide
/// instance (`Global()`) always contains the built-in five — "unified",
/// "kjoin", "pkduck", "adaptjoin", "combination" — and is open for
/// extension: register a factory once at startup and every Engine (and
/// registry-driven bench or test) can run it by name.
///
/// Thread-safe; factories must be callable concurrently.
class AlgorithmRegistry {
 public:
  using Factory = std::function<std::unique_ptr<JoinAlgorithm>()>;

  /// The process-wide registry, with built-ins pre-registered.
  static AlgorithmRegistry& Global();

  /// Registers `factory` under `name`. Returns false (and leaves the
  /// existing entry) when the name is already taken.
  bool Register(const std::string& name, Factory factory);

  /// Instantiates the algorithm registered under `name`; nullptr when
  /// unknown.
  std::unique_ptr<JoinAlgorithm> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted — the iteration order benches and
  /// parity tests rely on.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Registers the five built-in algorithms into `registry` (idempotent by
/// construction: Register() refuses duplicates). Called automatically for
/// Global(); exposed so tests can build isolated registries.
void RegisterBuiltinJoinAlgorithms(AlgorithmRegistry* registry);

}  // namespace aujoin

#endif  // AUJOIN_API_REGISTRY_H_
