/// \file
/// Streaming result consumption: the MatchSink interface every join
/// algorithm emits matching pairs through, plus the stock sinks
/// (collecting, callback, counting) and a pull-style enumerator.

#ifndef AUJOIN_API_MATCH_SINK_H_
#define AUJOIN_API_MATCH_SINK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "join/join.h"

namespace aujoin {

/// Streaming consumer of join results. Algorithms push each matching
/// (first, second) pair as soon as its verification batch completes, so
/// results no longer have to be fully materialised in one std::vector —
/// a sink can count, write to disk, or feed a downstream operator with
/// bounded memory. (The "unified" algorithm bounds peak result memory by
/// its verification batch size; the baseline adapters wrap algorithms
/// that materialise internally, so for them the sink bounds only the
/// caller's copy.)
///
/// Contract (upheld by every registered JoinAlgorithm):
///  - pairs arrive in ascending (first, second) order, each exactly once;
///  - for self-joins, first < second;
///  - OnMatch returning false requests early termination: the algorithm
///    stops producing and returns with the stats accumulated so far.
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  /// One matching pair. Return false to stop the join early.
  virtual bool OnMatch(uint32_t first, uint32_t second) = 0;
};

/// Collects everything into a vector — the backward-compatible sink; its
/// `pairs` is byte-for-byte what the pre-facade free functions returned.
class CollectingSink final : public MatchSink {
 public:
  bool OnMatch(uint32_t first, uint32_t second) override {
    pairs.emplace_back(first, second);
    return true;
  }

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
};

/// Adapts a callable; the callable's bool return follows the OnMatch
/// contract.
class CallbackSink final : public MatchSink {
 public:
  explicit CallbackSink(std::function<bool(uint32_t, uint32_t)> fn)
      : fn_(std::move(fn)) {}

  bool OnMatch(uint32_t first, uint32_t second) override {
    return fn_(first, second);
  }

 private:
  std::function<bool(uint32_t, uint32_t)> fn_;
};

/// Counts matches without storing them (cardinality-only workloads).
/// With `limit` set, requests early termination once `limit` matches
/// have been seen.
class CountingSink final : public MatchSink {
 public:
  CountingSink() = default;
  explicit CountingSink(uint64_t limit) : limit_(limit) {}

  bool OnMatch(uint32_t /*first*/, uint32_t /*second*/) override {
    ++count_;
    return limit_ == 0 || count_ < limit_;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
  uint64_t limit_ = 0;  // 0 = unlimited
};

/// Pull-style iteration over an already-collected result (the enumerator
/// idiom): `while (e.Next(&p)) ...`. Does not own the vector.
class PairEnumerator final {
 public:
  explicit PairEnumerator(
      const std::vector<std::pair<uint32_t, uint32_t>>* pairs)
      : pairs_(pairs) {}

  void Reset() { pos_ = 0; }

  bool Next(std::pair<uint32_t, uint32_t>* out) {
    if (pairs_ == nullptr || pos_ >= pairs_->size()) return false;
    if (out != nullptr) *out = (*pairs_)[pos_];
    ++pos_;
    return true;
  }

 private:
  const std::vector<std::pair<uint32_t, uint32_t>>* pairs_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_API_MATCH_SINK_H_
