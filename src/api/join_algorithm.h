/// \file
/// The algorithm plug-in surface: JoinAlgorithm (implement + register
/// in AlgorithmRegistry to appear in the Engine facade, the benches
/// and the aujoin CLI), the per-run EngineJoinOptions, and the
/// AlgorithmContext an algorithm receives for one run.

#ifndef AUJOIN_API_JOIN_ALGORITHM_H_
#define AUJOIN_API_JOIN_ALGORITHM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "api/match_sink.h"
#include "core/knowledge.h"
#include "core/record.h"
#include "join/join.h"
#include "util/status.h"

namespace aujoin {

/// Per-run knobs shared by every registered algorithm. `theta` applies to
/// all of them; the remaining fields configure specific families and are
/// ignored by the others (a kjoin run does not look at `tau`).
struct EngineJoinOptions {
  /// Similarity threshold of the join predicate.
  double theta = 0.8;

  // --- unified-join knobs (Algorithms 3 / 6) ---
  /// Overlap constraint for the AU filters; 1 = U-Filter behaviour.
  int tau = 1;
  FilterMethod method = FilterMethod::kAuDp;
  bool exact_min_partition = true;
  /// Verification settings; the msim sub-options are overridden by the
  /// engine's measures so filtering and verification agree.
  UsimOptions usim;

  // --- baseline knobs ---
  /// PKduck: cap on enumerated derivations per record.
  size_t pkduck_max_derivations = 16;
  /// AdaptJoin: gram length and adaptive-prefix cost-model inputs.
  int adapt_q = 2;
  std::vector<int> adapt_ell_candidates = {1, 2, 3, 4};
  size_t adapt_sample_size = 200;
};

/// Everything an algorithm needs from the engine for one run. Pointers
/// are non-owning and valid for the duration of Run().
struct AlgorithmContext {
  const Knowledge* knowledge = nullptr;
  const std::vector<Record>* s_records = nullptr;
  /// nullptr for a self-join.
  const std::vector<Record>* t_records = nullptr;
  MsimOptions msim;
  /// 1 = serial, 0 = all hardware threads (ResolveThreads semantics).
  int num_threads = 1;
  size_t cache_evict_threshold = 500000;
  /// Pairs verified per streaming flush to the sink (bounds the memory a
  /// streaming run holds between sink calls).
  size_t stream_batch_size = 4096;
  /// Returns the engine's lazily-prepared unified JoinContext (pebbles +
  /// global frequency order). Only pebble-based algorithms call this, so
  /// baseline runs never pay for preparation.
  std::function<JoinContext&()> unified_context;

  bool self_join() const { return t_records == nullptr; }
};

/// A join algorithm runnable through the Engine facade. Implementations
/// stream matches to the sink in ascending (first, second) order (see the
/// MatchSink contract) and fill `stats` with the normalized breakdown:
/// phase times where the algorithm can attribute them, `candidates`,
/// and `results`.
class JoinAlgorithm {
 public:
  virtual ~JoinAlgorithm() = default;

  /// The registry key this instance was created under.
  virtual const char* name() const = 0;

  /// Whether the algorithm supports joining two distinct collections.
  /// The ported baselines are self-join only, like their originals.
  virtual bool SupportsRsJoin() const { return false; }

  virtual Status Run(const AlgorithmContext& context,
                     const EngineJoinOptions& options, MatchSink* sink,
                     JoinStats* stats) = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_API_JOIN_ALGORITHM_H_
