/// \file
/// The Engine facade — the canonical entry point of the library.
/// Assemble options with EngineBuilder, bind records, then run any
/// registered algorithm by name with Engine::Join; results stream to a
/// MatchSink (see api/match_sink.h) and come back as normalized
/// JoinStats. File-based inputs arrive via dataset/dataset.h.

#ifndef AUJOIN_API_ENGINE_H_
#define AUJOIN_API_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/join_algorithm.h"
#include "api/match_sink.h"
#include "api/registry.h"
#include "core/knowledge.h"
#include "core/measures.h"
#include "core/record.h"
#include "index/prepared_index.h"
#include "join/join.h"
#include "join/search.h"
#include "shard/shard_plan.h"
#include "tuner/recommend.h"
#include "util/status.h"

namespace aujoin {

class GenerationalIndex;
class ShardedIndex;
class WalWriter;

/// Engine-level configuration assembled by EngineBuilder: the knowledge
/// sources and measure selection shared by every join the engine runs,
/// plus threading and memory policy.
struct EngineOptions {
  Knowledge knowledge;
  /// Measures + q shared by filtering and verification.
  MsimOptions msim;
  /// Worker threads for every stage (1 = serial, 0 = all hardware
  /// threads) — one policy across the unified join and all baselines.
  int num_threads = 1;
  /// Verification gram-cache eviction threshold (entries).
  size_t cache_evict_threshold = 500000;
  /// Candidate pairs verified per streaming flush to a MatchSink.
  size_t stream_batch_size = 4096;
  /// When > 0, every Join runs through the partitioned pipeline: the
  /// bound collection(s) are sharded into partitions of at most this many
  /// records and partition-pair blocks execute in parallel on a shared
  /// thread pool, bounding prepared-context memory by the blocks in
  /// flight instead of the whole collection (see join/pipeline.h). 0 runs
  /// the monolithic path. Either way the match set and its emission order
  /// are identical.
  size_t max_partition_records = 0;
  /// First-class shards: when > 0, the bound collection(s) are split
  /// into exactly this many shards (by `shard_by`), joins enumerate
  /// shard-pair blocks through the same pipeline the partition mode
  /// uses, serving scatters every query across per-shard searchers and
  /// stripe-merges the ranked results, and SaveIndex/LoadIndex persist
  /// one snapshot file per shard behind a manifest. Results are
  /// byte-identical to the monolithic path. Takes precedence over
  /// max_partition_records; ignored in append mode (the generational
  /// index serves appends).
  size_t num_shards = 0;
  /// Shard placement scheme (record range or key hash); see
  /// shard/shard_plan.h.
  ShardBy shard_by = ShardBy::kRange;
  /// Out-of-core joins: when > 0, a sharded/partitioned join whose
  /// buffered result set exceeds this many bytes spills sorted runs to
  /// temp files in `spill_dir` and merges them back at emission
  /// (identical results, bounded memory). 0 = always in-memory.
  size_t spill_budget_bytes = 0;
  /// Directory for spill temp files ("" = current directory). Files
  /// are unlinked as soon as they are mapped, so none outlive the join.
  std::string spill_dir;
  /// Append mode: when > 0 and EnableAppend was given a checkpoint
  /// path, every acknowledged Append whose WAL has grown past this many
  /// bytes triggers Checkpoint() automatically, bounding both log size
  /// and recovery replay work. The append itself is already durable
  /// when the checkpoint runs; a checkpoint failure is recorded in
  /// Engine::auto_checkpoint_status(), not retrofitted onto the append.
  size_t wal_checkpoint_bytes = 0;
  /// Storage environment for every file the engine touches (snapshots,
  /// checkpoints, the write-ahead log). nullptr = Env::Default(), the
  /// real POSIX filesystem; tests inject a FaultInjectionEnv here.
  Env* env = nullptr;
};

/// Builds a Record from raw text — how append mode tokenises incoming
/// appends and how recovery re-tokenises replayed WAL / checkpoint
/// texts. Must be deterministic and must intern into the SAME
/// vocabulary the bound records use, in call order: recovery depends on
/// replaying the factory over the same texts reproducing the exact
/// token ids (and thus the snapshot fingerprints) of the first run.
using RecordFactory = std::function<Record(const std::string&)>;

/// Per-query serving knobs of Engine::Search / TopK / BatchSearch.
struct EngineSearchOptions {
  /// Similarity threshold; matches satisfy Approx USIM >= theta.
  double theta = 0.8;
  /// Overlap constraint on the query signature (the single-sided AU
  /// filter; subject to the query's effective tau).
  int tau = 1;
  FilterMethod method = FilterMethod::kAuDp;
  /// Keep only the k best matches per query (similarity desc, id asc);
  /// 0 = every match above theta.
  size_t k = 0;
};

/// Aggregated serving statistics of one Search/TopK/BatchSearch call.
struct SearchStats {
  uint64_t queries = 0;
  /// Candidate records that survived the signature filter (verified).
  uint64_t query_candidates = 0;
  /// Matches returned to the caller. On the streaming overloads (sink
  /// or callback) this counts matches actually emitted — a consumer
  /// that stops early caps it, including the match it declined.
  uint64_t results = 0;
  /// One-time serving-index build seconds, charged to the call that
  /// forced it (0 afterwards — the index is shared and immutable).
  double index_seconds = 0.0;
  /// Wall seconds of the whole call, including any index build.
  double search_seconds = 0.0;
  /// Shards the query scattered across (EngineOptions::num_shards);
  /// zero on the monolithic serving path.
  uint64_t shards = 0;
};

/// The unified facade over every join algorithm in the registry.
///
///   Engine engine = EngineBuilder()
///                       .SetKnowledge(knowledge)
///                       .SetMeasures("TJS")
///                       .SetQ(3)
///                       .SetThreads(0)
///                       .Build();
///   engine.SetRecords(records);
///   CollectingSink sink;
///   auto stats = engine.Join("unified", {.theta = 0.8, .tau = 2}, &sink);
///
/// The engine owns the prepared unified-join context (pebbles + global
/// order), builds it lazily on first use, and reuses it across runs, so
/// sweeping (theta, tau, algorithm) pays preparation once. Records are
/// borrowed, not copied; they must outlive the engine's use of them.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  // Out of line: unique_ptr members of forward-declared types
  // (GenerationalIndex, WalWriter) need complete types to destroy.
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  ~Engine();

  /// Binds the collection(s) to join. Pass `t == nullptr` for a
  /// self-join. Invalidates any prepared context, including append
  /// mode — the WAL writer is released (not truncated) and appended
  /// records are dropped from serving.
  void SetRecords(const std::vector<Record>& s,
                  const std::vector<Record>* t = nullptr);

  /// Runs `algorithm` (a registry name — see AlgorithmRegistry) and
  /// streams every matching pair to `sink` in ascending (first, second)
  /// order. Returns the normalized stats, or an error when the name is
  /// unknown, no records are bound, or the algorithm cannot handle the
  /// bound record shape (baselines are self-join only).
  Result<JoinStats> Join(const std::string& algorithm,
                         const EngineJoinOptions& options, MatchSink* sink);

  /// Collecting convenience: same as above with a CollectingSink, packed
  /// into the classic JoinResult shape.
  Result<JoinResult> Join(const std::string& algorithm,
                          const EngineJoinOptions& options);

  /// The tuner path: lets Algorithm 7 pick the overlap constraint tau on
  /// the engine's prepared context, then runs the unified join with it.
  /// Suggestion time is reported in stats.suggest_seconds.
  Result<JoinResult> JoinWithSuggestedTau(
      const EngineJoinOptions& options, const TunerOptions& tuner_options,
      TauRecommendation* recommendation = nullptr);

  /// The lazily-prepared unified JoinContext (pebbles + global order) for
  /// the bound records. Exposed for benches/tuners that drive the filter
  /// stage directly. Borrows the same shared PreparedIndex that serves
  /// Search, so a join sweep and a query stream pay preparation once.
  JoinContext& PreparedContext();

  /// The shared immutable PreparedIndex for the bound records, built
  /// lazily under a mutex (thread-safe, callable concurrently). Joins,
  /// searches and external UnifiedSearchers all borrow this one
  /// instance; it stays valid after SetRecords rebinds the engine as
  /// long as the caller holds the shared_ptr (and the old records).
  Result<std::shared_ptr<const PreparedIndex>> ServingIndex() const;

  /// Persists the prepared index (building it first if needed) as a
  /// versioned snapshot at `path` — see storage/snapshot_format.h. A
  /// later engine bound to the SAME records and knowledge can LoadIndex
  /// it and skip preparation entirely.
  Status SaveIndex(const std::string& path) const;

  /// Replaces the lazy prepared index with one loaded from a snapshot,
  /// skipping pebble generation and the CSR freeze (the mmap
  /// cold-start path). Records must already be bound and must match
  /// the snapshot's fingerprints (kFailedPrecondition otherwise;
  /// damaged files return kCorruption). On failure the engine is
  /// unchanged and the next Search/Join simply rebuilds. Mutation:
  /// never call concurrently with serving, same rule as SetRecords.
  Status LoadIndex(const std::string& path);

  /// "snapshot" when the current index came from LoadIndex, "rebuilt"
  /// when it was (or will be) built from the bound records.
  const char* index_source() const {
    return from_snapshot_ ? "snapshot" : "rebuilt";
  }

  /// Wall seconds the last successful LoadIndex spent (0 when the
  /// index was rebuilt in-process).
  double snapshot_load_seconds() const { return snapshot_load_seconds_; }

  /// Switches the engine into append-serving mode (self-join only): a
  /// GenerationalIndex over the bound records becomes the serving
  /// structure, and every Append is made durable through a WAL at
  /// `wal_path` before it is acknowledged.
  ///
  /// Cold start, in order: (1) when `checkpoint_path` names an existing
  /// checkpoint, its embedded appended texts are re-tokenised through
  /// `make_record` on top of the bound records and the frozen index is
  /// mounted from the snapshot (the bound records must be the
  /// checkpoint's base); otherwise the engine's lazy serving index is
  /// the base. (2) The WAL at `wal_path` is replayed — records the base
  /// already covers are skipped by id, the rest re-staged in order. A
  /// torn tail (crash mid-write) is trimmed; damage before intact
  /// records is kCorruption. (3) The WAL reopens for appending.
  ///
  /// Mutation: never call concurrently with serving.
  Status EnableAppend(const std::string& wal_path, RecordFactory make_record,
                      const std::string& checkpoint_path = "");

  /// Durable append of one raw text: tokenised via the RecordFactory,
  /// WAL-logged + fsynced, then staged for serving. Returns the new
  /// record's global id. The acknowledged-durable contract and the
  /// sticky-failure rule are GenerationalIndex::AppendDurable's.
  Result<uint32_t> Append(const std::string& text);

  /// Compacts staged appends into the frozen generation (see
  /// GenerationalIndex::Refreeze); serving continues throughout.
  Status Refreeze();

  /// Refreezes, saves the frozen generation as a checkpoint snapshot at
  /// `path` (embedding appended texts — see storage/index_checkpoint.h)
  /// and resets the WAL to empty: the checkpoint now owns every logged
  /// record. Must not run concurrently with Append — an append landing
  /// between the refreeze and the log reset would lose its log entry.
  /// If the process dies between the checkpoint rename and the log
  /// reset, replay is still exact: every log record's id is below the
  /// checkpoint's record count, so recovery skips them all.
  Status Checkpoint(const std::string& path);

  /// True after a successful EnableAppend (until SetRecords).
  bool append_mode() const { return generational_ != nullptr; }

  /// Records recovered from the WAL by the last EnableAppend.
  uint64_t wal_recovered_records() const { return wal_recovered_; }

  /// The append-mode serving structure (counts, generation number);
  /// nullptr outside append mode.
  const GenerationalIndex* generational_index() const {
    return generational_.get();
  }

  /// Outcome of the most recent size-triggered auto-checkpoint
  /// (EngineOptions::wal_checkpoint_bytes); OK when none has run or the
  /// last one succeeded. The triggering Append stays acknowledged
  /// either way — its durability came from the WAL, not the checkpoint.
  const Status& auto_checkpoint_status() const {
    return auto_checkpoint_status_;
  }
  /// Size-triggered checkpoints taken since EnableAppend.
  uint64_t auto_checkpoints() const { return auto_checkpoints_; }

  /// The scatter-gather serving structure when EngineOptions::num_shards
  /// > 0 (built or mounted lazily); nullptr before first use or in
  /// monolithic/append mode. Exposed for tests asserting lazy per-shard
  /// residency.
  const ShardedIndex* sharded_index() const { return sharded_.get(); }

  /// Online search over the bound T side (== S for a self-join): every
  /// record with Approx USIM >= theta, ordered by similarity desc then
  /// id asc, truncated to options.k when set. Const and safe to call
  /// from many threads concurrently on one engine; all per-query
  /// scratch state is local to the call.
  Result<std::vector<UnifiedSearcher::Match>> Search(
      const Record& query, const EngineSearchOptions& options,
      SearchStats* stats = nullptr) const;

  /// Streaming variant: emits OnMatch(query.id, match.id) in rank order
  /// (similarity desc, id asc — NOT ascending ids; search ranks, joins
  /// sort). A false return stops the emission, not the search.
  Status Search(const Record& query, const EngineSearchOptions& options,
                MatchSink* sink, SearchStats* stats = nullptr) const;

  /// The k most similar records with similarity >= options.theta —
  /// Search with the result bound as an argument.
  Result<std::vector<UnifiedSearcher::Match>> TopK(
      const Record& query, size_t k, const EngineSearchOptions& options,
      SearchStats* stats = nullptr) const;

  /// Fans `queries` across a ThreadPool (the engine's num_threads
  /// policy) and streams every match to `on_match(query_index, match)`
  /// in ascending query order, rank order within a query, each exactly
  /// once. A false return stops the emission immediately (matches
  /// after it, including the current query's, are dropped).
  Status BatchSearch(
      const std::vector<Record>& queries, const EngineSearchOptions& options,
      const std::function<bool(uint32_t, const UnifiedSearcher::Match&)>&
          on_match,
      SearchStats* stats = nullptr) const;

  /// MatchSink adapter: emits OnMatch(query_index, match.id), same
  /// ordering contract as the callback variant.
  Status BatchSearch(const std::vector<Record>& queries,
                     const EngineSearchOptions& options, MatchSink* sink,
                     SearchStats* stats = nullptr) const;

  const EngineOptions& options() const { return options_; }
  bool has_records() const { return s_records_ != nullptr; }

 private:
  AlgorithmContext MakeAlgorithmContext();

  /// The lazily-built sharded serving structure (num_shards > 0 only):
  /// splits the T side (== S for self-joins) under the engine's shard
  /// plan. Same lock-free-once-published pattern as ServingIndex.
  Result<const ShardedIndex*> ShardedServing() const;

  /// Whether serving should scatter-gather across shards: num_shards
  /// configured and not in append mode (the generational index takes
  /// precedence — appends land in one growing collection).
  bool use_sharded_serving() const {
    return options_.num_shards > 0 && generational_ == nullptr;
  }

  EngineOptions options_;
  const std::vector<Record>* s_records_ = nullptr;
  const std::vector<Record>* t_records_ = nullptr;
  std::unique_ptr<JoinContext> context_;
  /// Guards the lazy build/reset of index_ (the only engine state const
  /// serving methods touch); the index itself is immutable once built.
  /// `ready` is the release/acquire flag that lets concurrent searches
  /// skip the mutex once the index is published — queries contend on
  /// nothing but the shared_ptr refcount. Behind a unique_ptr so the
  /// Engine stays movable (moving while another thread serves from the
  /// engine is undefined, as usual).
  struct LazyIndexState {
    std::mutex mutex;
    std::atomic<bool> ready{false};
  };
  mutable std::unique_ptr<LazyIndexState> index_state_ =
      std::make_unique<LazyIndexState>();
  mutable std::shared_ptr<const PreparedIndex> index_;
  /// Provenance of `index_`, written only by mutations (SetRecords /
  /// LoadIndex) and read by stats reporting.
  bool from_snapshot_ = false;
  double snapshot_load_seconds_ = 0.0;

  /// Append mode (all written only by mutations — EnableAppend /
  /// SetRecords — and read by serving): the generational serving
  /// structure, the WAL it logs through (the index borrows the writer,
  /// so the writer must be destroyed after it), the tokenising factory
  /// and the dataset-base record count checkpoints are taken against.
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<GenerationalIndex> generational_;
  RecordFactory make_record_;
  size_t base_count_ = 0;
  uint64_t wal_recovered_ = 0;
  /// Size-driven checkpointing (EngineOptions::wal_checkpoint_bytes):
  /// where EnableAppend said checkpoints live, plus the outcome and
  /// count of auto-triggered ones.
  std::string checkpoint_path_;
  Status auto_checkpoint_status_;
  uint64_t auto_checkpoints_ = 0;

  /// Scatter-gather serving (EngineOptions::num_shards > 0): built or
  /// mounted lazily under its own mutex + ready flag so concurrent
  /// first searches agree on one instance; the instance itself is
  /// const-thread-safe.
  struct LazyShardState {
    std::mutex mutex;
    std::atomic<bool> ready{false};
  };
  mutable std::unique_ptr<LazyShardState> shard_state_ =
      std::make_unique<LazyShardState>();
  mutable std::unique_ptr<ShardedIndex> sharded_;
};

/// Fluent construction of an Engine; every setter has a sensible default
/// (all measures, q = 2, serial execution).
class EngineBuilder {
 public:
  EngineBuilder& SetKnowledge(const Knowledge& knowledge) {
    options_.knowledge = knowledge;
    return *this;
  }
  /// Measure-combination string: "J", "TS", "TJS", ... (ParseMeasures).
  EngineBuilder& SetMeasures(const std::string& spec) {
    options_.msim.measures = ParseMeasures(spec);
    return *this;
  }
  EngineBuilder& SetQ(int q) {
    options_.msim.q = q;
    return *this;
  }
  /// Full msim control (gram measure, exact-match bit, ...).
  EngineBuilder& SetMsimOptions(const MsimOptions& msim) {
    options_.msim = msim;
    return *this;
  }
  EngineBuilder& SetThreads(int num_threads) {
    options_.num_threads = num_threads;
    return *this;
  }
  EngineBuilder& SetCacheEvictThreshold(size_t entries) {
    options_.cache_evict_threshold = entries;
    return *this;
  }
  EngineBuilder& SetStreamBatchSize(size_t pairs) {
    options_.stream_batch_size = pairs;
    return *this;
  }
  /// 0 = monolithic; > 0 = partitioned pipeline with this record bound.
  EngineBuilder& SetMaxPartitionRecords(size_t records) {
    options_.max_partition_records = records;
    return *this;
  }
  /// 0 = monolithic; > 0 = first-class shards (joins run shard-pair
  /// blocks, serving scatter-gathers); see EngineOptions::num_shards.
  EngineBuilder& SetNumShards(size_t shards) {
    options_.num_shards = shards;
    return *this;
  }
  EngineBuilder& SetShardBy(ShardBy shard_by) {
    options_.shard_by = shard_by;
    return *this;
  }
  /// 0 = in-memory joins; > 0 = spill sorted runs past this many bytes.
  EngineBuilder& SetSpillBudgetBytes(size_t bytes) {
    options_.spill_budget_bytes = bytes;
    return *this;
  }
  EngineBuilder& SetSpillDir(const std::string& dir) {
    options_.spill_dir = dir;
    return *this;
  }
  /// 0 = manual checkpoints only; > 0 = auto-checkpoint past this WAL
  /// size (append mode, requires a checkpoint path at EnableAppend).
  EngineBuilder& SetWalCheckpointBytes(size_t bytes) {
    options_.wal_checkpoint_bytes = bytes;
    return *this;
  }
  /// Storage environment (nullptr = the real filesystem); see
  /// EngineOptions::env.
  EngineBuilder& SetEnv(Env* env) {
    options_.env = env;
    return *this;
  }

  Engine Build() const { return Engine(options_); }

 private:
  EngineOptions options_;
};

}  // namespace aujoin

#endif  // AUJOIN_API_ENGINE_H_
