/// \file
/// The Engine facade — the canonical entry point of the library.
/// Assemble options with EngineBuilder, bind records, then run any
/// registered algorithm by name with Engine::Join; results stream to a
/// MatchSink (see api/match_sink.h) and come back as normalized
/// JoinStats. File-based inputs arrive via dataset/dataset.h.

#ifndef AUJOIN_API_ENGINE_H_
#define AUJOIN_API_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/join_algorithm.h"
#include "api/match_sink.h"
#include "api/registry.h"
#include "core/knowledge.h"
#include "core/measures.h"
#include "core/record.h"
#include "join/join.h"
#include "tuner/recommend.h"
#include "util/status.h"

namespace aujoin {

/// Engine-level configuration assembled by EngineBuilder: the knowledge
/// sources and measure selection shared by every join the engine runs,
/// plus threading and memory policy.
struct EngineOptions {
  Knowledge knowledge;
  /// Measures + q shared by filtering and verification.
  MsimOptions msim;
  /// Worker threads for every stage (1 = serial, 0 = all hardware
  /// threads) — one policy across the unified join and all baselines.
  int num_threads = 1;
  /// Verification gram-cache eviction threshold (entries).
  size_t cache_evict_threshold = 500000;
  /// Candidate pairs verified per streaming flush to a MatchSink.
  size_t stream_batch_size = 4096;
  /// When > 0, every Join runs through the partitioned pipeline: the
  /// bound collection(s) are sharded into partitions of at most this many
  /// records and partition-pair blocks execute in parallel on a shared
  /// thread pool, bounding prepared-context memory by the blocks in
  /// flight instead of the whole collection (see join/pipeline.h). 0 runs
  /// the monolithic path. Either way the match set and its emission order
  /// are identical.
  size_t max_partition_records = 0;
};

/// The unified facade over every join algorithm in the registry.
///
///   Engine engine = EngineBuilder()
///                       .SetKnowledge(knowledge)
///                       .SetMeasures("TJS")
///                       .SetQ(3)
///                       .SetThreads(0)
///                       .Build();
///   engine.SetRecords(records);
///   CollectingSink sink;
///   auto stats = engine.Join("unified", {.theta = 0.8, .tau = 2}, &sink);
///
/// The engine owns the prepared unified-join context (pebbles + global
/// order), builds it lazily on first use, and reuses it across runs, so
/// sweeping (theta, tau, algorithm) pays preparation once. Records are
/// borrowed, not copied; they must outlive the engine's use of them.
class Engine {
 public:
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  /// Binds the collection(s) to join. Pass `t == nullptr` for a
  /// self-join. Invalidates any prepared context.
  void SetRecords(const std::vector<Record>& s,
                  const std::vector<Record>* t = nullptr);

  /// Runs `algorithm` (a registry name — see AlgorithmRegistry) and
  /// streams every matching pair to `sink` in ascending (first, second)
  /// order. Returns the normalized stats, or an error when the name is
  /// unknown, no records are bound, or the algorithm cannot handle the
  /// bound record shape (baselines are self-join only).
  Result<JoinStats> Join(const std::string& algorithm,
                         const EngineJoinOptions& options, MatchSink* sink);

  /// Collecting convenience: same as above with a CollectingSink, packed
  /// into the classic JoinResult shape.
  Result<JoinResult> Join(const std::string& algorithm,
                          const EngineJoinOptions& options);

  /// The tuner path: lets Algorithm 7 pick the overlap constraint tau on
  /// the engine's prepared context, then runs the unified join with it.
  /// Suggestion time is reported in stats.suggest_seconds.
  Result<JoinResult> JoinWithSuggestedTau(
      const EngineJoinOptions& options, const TunerOptions& tuner_options,
      TauRecommendation* recommendation = nullptr);

  /// The lazily-prepared unified JoinContext (pebbles + global order) for
  /// the bound records. Exposed for benches/tuners that drive the filter
  /// stage directly.
  JoinContext& PreparedContext();

  const EngineOptions& options() const { return options_; }
  bool has_records() const { return s_records_ != nullptr; }

 private:
  AlgorithmContext MakeAlgorithmContext();

  EngineOptions options_;
  const std::vector<Record>* s_records_ = nullptr;
  const std::vector<Record>* t_records_ = nullptr;
  std::unique_ptr<JoinContext> context_;
};

/// Fluent construction of an Engine; every setter has a sensible default
/// (all measures, q = 2, serial execution).
class EngineBuilder {
 public:
  EngineBuilder& SetKnowledge(const Knowledge& knowledge) {
    options_.knowledge = knowledge;
    return *this;
  }
  /// Measure-combination string: "J", "TS", "TJS", ... (ParseMeasures).
  EngineBuilder& SetMeasures(const std::string& spec) {
    options_.msim.measures = ParseMeasures(spec);
    return *this;
  }
  EngineBuilder& SetQ(int q) {
    options_.msim.q = q;
    return *this;
  }
  /// Full msim control (gram measure, exact-match bit, ...).
  EngineBuilder& SetMsimOptions(const MsimOptions& msim) {
    options_.msim = msim;
    return *this;
  }
  EngineBuilder& SetThreads(int num_threads) {
    options_.num_threads = num_threads;
    return *this;
  }
  EngineBuilder& SetCacheEvictThreshold(size_t entries) {
    options_.cache_evict_threshold = entries;
    return *this;
  }
  EngineBuilder& SetStreamBatchSize(size_t pairs) {
    options_.stream_batch_size = pairs;
    return *this;
  }
  /// 0 = monolithic; > 0 = partitioned pipeline with this record bound.
  EngineBuilder& SetMaxPartitionRecords(size_t records) {
    options_.max_partition_records = records;
    return *this;
  }

  Engine Build() const { return Engine(options_); }

 private:
  EngineOptions options_;
};

}  // namespace aujoin

#endif  // AUJOIN_API_ENGINE_H_
