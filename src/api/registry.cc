#include "api/registry.h"

namespace aujoin {

AlgorithmRegistry& AlgorithmRegistry::Global() {
  // Built-ins are registered through the passed pointer (not through
  // Global()) so the static-local initialisation never re-enters itself.
  static AlgorithmRegistry* instance = [] {
    auto* registry = new AlgorithmRegistry();
    RegisterBuiltinJoinAlgorithms(registry);
    return registry;
  }();
  return *instance;
}

bool AlgorithmRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<JoinAlgorithm> AlgorithmRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory();
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace aujoin
