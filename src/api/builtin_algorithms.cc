// The five built-in JoinAlgorithm adapters: the paper's unified join plus
// the four Section 5.5 comparators, all streaming through MatchSink with
// normalized JoinStats.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "api/registry.h"
#include "baselines/combination.h"
#include "core/usim.h"
#include "join/join.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {
namespace {

/// Streams an already-sorted pair list to the sink, counting results.
/// Returns false when the sink requested early termination.
bool EmitPairs(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
               MatchSink* sink, JoinStats* stats) {
  for (const auto& [first, second] : pairs) {
    ++stats->results;
    if (!sink->OnMatch(first, second)) return false;
  }
  return true;
}

/// Maps a BaselineResult's normalized fields into JoinStats and streams
/// its (already sorted) pairs.
Status EmitBaseline(const BaselineResult& result, MatchSink* sink,
                    JoinStats* stats) {
  stats->filter_seconds = result.filter_seconds;
  stats->verify_seconds = result.verify_seconds;
  stats->candidates = result.candidates;
  EmitPairs(result.pairs, sink, stats);
  return Status::OK();
}

// ------------------------------------------------------------- unified

class UnifiedAlgorithm final : public JoinAlgorithm {
 public:
  const char* name() const override { return "unified"; }
  bool SupportsRsJoin() const override { return true; }

  Status Run(const AlgorithmContext& context,
             const EngineJoinOptions& options, MatchSink* sink,
             JoinStats* stats) override {
    JoinContext& join_context = context.unified_context();

    SignatureOptions sig_options;
    sig_options.theta = options.theta;
    sig_options.tau = options.tau;
    sig_options.method = options.method;
    sig_options.exact_min_partition = options.exact_min_partition;

    JoinContext::FilterOutput filtered = join_context.RunFilter(
        sig_options, nullptr, nullptr, context.num_threads);
    stats->prepare_seconds = join_context.prepare_seconds();
    stats->signature_seconds = filtered.signature_seconds;
    stats->filter_seconds = filtered.filter_seconds;
    stats->processed_pairs = filtered.processed_pairs;
    stats->candidates = filtered.candidates.size();
    stats->avg_signature_pebbles = filtered.avg_signature_pebbles;

    // Verify in sorted batches: each batch's survivors are flushed to the
    // sink before the next batch starts, so peak memory is bounded by the
    // batch size and the emission order is globally sorted. Per-worker
    // computers (and their gram caches) persist across batches —
    // streaming must not cost cache warmth relative to the one-shot
    // VerifyCandidates path. MsimEvaluator is not thread-safe, hence one
    // computer per worker.
    std::sort(filtered.candidates.begin(), filtered.candidates.end());

    UsimOptions usim_options = options.usim;
    usim_options.msim = join_context.msim_options();
    const auto& s_records = join_context.s_records();
    const auto& t_records = join_context.t_records();
    const int workers = ResolveThreads(context.num_threads);
    std::vector<std::unique_ptr<UsimComputer>> computers(workers);
    for (auto& computer : computers) {
      computer = std::make_unique<UsimComputer>(join_context.knowledge(),
                                                usim_options);
    }

    const size_t batch = std::max<size_t>(1, context.stream_batch_size);
    for (size_t begin = 0; begin < filtered.candidates.size();
         begin += batch) {
      const size_t end = std::min(filtered.candidates.size(), begin + batch);
      WallTimer batch_timer;
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> worker_pairs(
          workers);
      ParallelFor(
          end - begin, context.num_threads,
          [&](size_t lo, size_t hi, int worker) {
            UsimComputer& computer = *computers[worker];
            for (size_t c = lo; c < hi; ++c) {
              const auto& [si, ti] = filtered.candidates[begin + c];
              if (computer.evaluator()->CacheSize() >
                  context.cache_evict_threshold) {
                computer.evaluator()->ClearCache();
              }
              // Verification only needs the predicate, so Algorithm 1
              // may stop as soon as theta is reached.
              double sim = computer.Approx(s_records[si], t_records[ti],
                                           options.theta);
              if (sim >= options.theta) {
                worker_pairs[worker].emplace_back(si, ti);
              }
            }
          });
      std::vector<std::pair<uint32_t, uint32_t>> verified;
      for (const auto& wp : worker_pairs) {
        verified.insert(verified.end(), wp.begin(), wp.end());
      }
      std::sort(verified.begin(), verified.end());
      stats->verify_seconds += batch_timer.Seconds();
      if (!EmitPairs(verified, sink, stats)) break;
    }
    return Status::OK();
  }
};

// ------------------------------------------------------------ baselines

class KJoinAlgorithm final : public JoinAlgorithm {
 public:
  const char* name() const override { return "kjoin"; }

  Status Run(const AlgorithmContext& context,
             const EngineJoinOptions& options, MatchSink* sink,
             JoinStats* stats) override {
    KJoinOptions kjoin_options;
    kjoin_options.theta = options.theta;
    kjoin_options.num_threads = context.num_threads;
    KJoin join(*context.knowledge, kjoin_options);
    return EmitBaseline(join.SelfJoin(*context.s_records), sink, stats);
  }
};

class PkduckAlgorithm final : public JoinAlgorithm {
 public:
  const char* name() const override { return "pkduck"; }

  Status Run(const AlgorithmContext& context,
             const EngineJoinOptions& options, MatchSink* sink,
             JoinStats* stats) override {
    PkduckOptions pkduck_options;
    pkduck_options.theta = options.theta;
    pkduck_options.max_derivations = options.pkduck_max_derivations;
    pkduck_options.num_threads = context.num_threads;
    PkduckJoin join(*context.knowledge, pkduck_options);
    return EmitBaseline(join.SelfJoin(*context.s_records), sink, stats);
  }
};

class AdaptJoinAlgorithm final : public JoinAlgorithm {
 public:
  const char* name() const override { return "adaptjoin"; }

  Status Run(const AlgorithmContext& context,
             const EngineJoinOptions& options, MatchSink* sink,
             JoinStats* stats) override {
    AdaptJoinOptions adapt_options;
    adapt_options.theta = options.theta;
    adapt_options.q = options.adapt_q;
    adapt_options.ell_candidates = options.adapt_ell_candidates;
    adapt_options.sample_size = options.adapt_sample_size;
    adapt_options.num_threads = context.num_threads;
    AdaptJoin join(adapt_options);
    return EmitBaseline(join.SelfJoin(*context.s_records), sink, stats);
  }
};

class CombinationAlgorithm final : public JoinAlgorithm {
 public:
  const char* name() const override { return "combination"; }

  Status Run(const AlgorithmContext& context,
             const EngineJoinOptions& options, MatchSink* sink,
             JoinStats* stats) override {
    CombinationOptions combo_options;
    combo_options.kjoin.theta = options.theta;
    combo_options.adaptjoin.theta = options.theta;
    combo_options.adaptjoin.q = options.adapt_q;
    combo_options.adaptjoin.ell_candidates = options.adapt_ell_candidates;
    combo_options.adaptjoin.sample_size = options.adapt_sample_size;
    combo_options.pkduck.theta = options.theta;
    combo_options.pkduck.max_derivations = options.pkduck_max_derivations;
    combo_options.num_threads = context.num_threads;
    return EmitBaseline(
        CombinationJoin(*context.knowledge, *context.s_records,
                        combo_options),
        sink, stats);
  }
};

}  // namespace

void RegisterBuiltinJoinAlgorithms(AlgorithmRegistry* registry) {
  registry->Register("unified",
                     [] { return std::make_unique<UnifiedAlgorithm>(); });
  registry->Register("kjoin",
                     [] { return std::make_unique<KJoinAlgorithm>(); });
  registry->Register("pkduck",
                     [] { return std::make_unique<PkduckAlgorithm>(); });
  registry->Register("adaptjoin",
                     [] { return std::make_unique<AdaptJoinAlgorithm>(); });
  registry->Register("combination",
                     [] { return std::make_unique<CombinationAlgorithm>(); });
}

}  // namespace aujoin
