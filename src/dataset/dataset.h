/// \file
/// Dataset ingestion: LoadDataset turns a records file plus optional
/// synonym-rule and taxonomy TSVs into an Engine-ready Dataset — one
/// shared Vocabulary, tokenised records, knowledge sources and a
/// manifest. See docs/cli.md for the file formats and the aujoin CLI
/// built on this layer.

#ifndef AUJOIN_DATASET_DATASET_H_
#define AUJOIN_DATASET_DATASET_H_

#include <string>
#include <vector>

#include "core/knowledge.h"
#include "core/record.h"
#include "dataset/manifest.h"
#include "dataset/record_reader.h"
#include "synonym/rule_set.h"
#include "taxonomy/taxonomy.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace aujoin {

/// Everything LoadDataset needs to turn files into an Engine-ready
/// world: the records file plus optional synonym-rule and taxonomy
/// files, with reader and tokenizer settings.
struct DatasetSpec {
  /// The records file. Format resolves per ReaderOptions::format
  /// (kAuto = by extension).
  std::string records_path;
  ReaderOptions reader;

  /// Optional second collection for an R×S join (Engine::SetRecords(s,
  /// &t)). Read with the same ReaderOptions and interned into the same
  /// vocabulary; its record ids are 0-based within the collection.
  std::string records2_path;

  /// Optional knowledge sources, in the TSV formats of
  /// synonym/rule_io.h and taxonomy/taxonomy_io.h. Empty = none (the
  /// corresponding measure simply finds no matches to expand).
  std::string rules_path;
  std::string taxonomy_path;

  /// Normalisation applied before interning; one policy across the
  /// records AND the knowledge files so "Cafe" in a rule matches "cafe"
  /// in a record.
  TokenizerOptions tokenizer;
};

/// An owning, self-contained join input: records, knowledge sources and
/// the one shared Vocabulary they were all interned into, plus the
/// manifest summarising them. Produced by LoadDataset /
/// MakeDatasetFromLines; hand `knowledge()` to EngineBuilder and
/// `records` to Engine::SetRecords:
///
///   auto dataset = LoadDataset({.records_path = "pois.csv"});
///   Engine engine =
///       EngineBuilder().SetKnowledge(dataset->knowledge()).Build();
///   engine.SetRecords(dataset->records);
///
/// The dataset must outlive every Engine borrowing from it (Knowledge
/// and records are non-owning views). Movable; a move invalidates
/// previously-obtained Knowledge views, so call knowledge() after the
/// dataset reaches its final home.
struct Dataset {
  Vocabulary vocab;
  Taxonomy taxonomy;
  RuleSet rules;
  std::vector<Record> records;
  /// Second collection of an R×S join; empty for self-join datasets.
  std::vector<Record> records2;
  DatasetManifest manifest;

  /// Non-owning view over the members, ready for EngineBuilder.
  Knowledge knowledge() const { return Knowledge{&vocab, &rules, &taxonomy}; }

  /// Recomputes the manifest's record/vocab/knowledge statistics after
  /// mutating members in place (source, format and rows_skipped are
  /// kept).
  void RefreshManifest();
};

/// Loads a dataset end to end: taxonomy file, rule file, then the
/// records file streamed through the format reader, each record
/// tokenised into the shared vocabulary as it arrives. Errors on I/O
/// failure, malformed knowledge files, malformed rows (under
/// MalformedRowPolicy::kFail), or a records file that yields zero
/// records.
Result<Dataset> LoadDataset(const DatasetSpec& spec);

/// In-memory ingestion: builds a Dataset (records + manifest) from raw
/// record texts over a fresh vocabulary. Knowledge sources start empty;
/// populate `taxonomy` / `rules` afterwards (before knowledge() use).
Result<Dataset> MakeDatasetFromLines(const std::vector<std::string>& lines,
                                     const TokenizerOptions& tokenizer = {});

}  // namespace aujoin

#endif  // AUJOIN_DATASET_DATASET_H_
