/// \file
/// Streaming record readers: CSV (RFC 4180), TSV, JSONL and plain
/// lines, with column selection, a malformed-row policy, and memory
/// bounded by one row. The file-format half of dataset ingestion;
/// dataset/dataset.h wires it to tokenisation and knowledge loading.

#ifndef AUJOIN_DATASET_RECORD_READER_H_
#define AUJOIN_DATASET_RECORD_READER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace aujoin {

/// On-disk layouts the ingestion layer understands. `kAuto` resolves
/// from the file extension (.csv, .tsv, .jsonl/.ndjson, anything else =
/// kLines).
enum class DatasetFormat {
  kAuto = 0,
  /// One record per line, the whole line is the text.
  kLines,
  /// RFC-4180 comma-separated values: double-quoted fields may contain
  /// commas, newlines and doubled ("") quotes.
  kCsv,
  /// Tab-separated values, split verbatim on '\t' (no quoting layer —
  /// the convention of the repo's rule/taxonomy TSVs).
  kTsv,
  /// One JSON object per line; selected fields must be strings or
  /// numbers.
  kJsonl,
};

/// Parses a format name ("auto", "lines", "csv", "tsv", "jsonl");
/// errors on anything else.
Result<DatasetFormat> ParseDatasetFormat(const std::string& name);

/// The inverse of ParseDatasetFormat (kAuto renders as "auto").
const char* DatasetFormatName(DatasetFormat format);

/// Resolves kAuto against a path's extension; other formats pass
/// through unchanged.
DatasetFormat ResolveFormat(DatasetFormat format, const std::string& path);

/// How a reader handles a row it cannot parse (unbalanced CSV quote,
/// invalid JSON, missing selected column).
enum class MalformedRowPolicy {
  /// Fail the whole read with the offending line number (default).
  kFail,
  /// Drop the row, count it in ReaderStats::rows_skipped, keep going.
  kSkip,
};

/// Configuration of one streaming read.
struct ReaderOptions {
  DatasetFormat format = DatasetFormat::kAuto;

  /// Columns whose values become the record text (joined with a single
  /// space, in the order listed). CSV/TSV: resolved against the header
  /// row (requires `has_header`); JSONL: top-level object keys. Empty
  /// selects every field in file order (JSONL: the "text" key).
  std::vector<std::string> columns;
  /// Zero-based positional selection for CSV/TSV (usable with or
  /// without a header). Mutually exclusive with `columns`.
  std::vector<size_t> column_indices;
  /// CSV/TSV: skip the first row (and resolve `columns` against it).
  bool has_header = false;

  MalformedRowPolicy on_malformed = MalformedRowPolicy::kFail;
  /// Stop after this many records (0 = no limit).
  size_t max_records = 0;
};

/// Outcome counters of one streaming read.
struct ReaderStats {
  /// Data rows seen (header and blank lines excluded).
  size_t rows_read = 0;
  /// Rows delivered to the callback.
  size_t records_emitted = 0;
  /// Malformed rows dropped under MalformedRowPolicy::kSkip.
  size_t rows_skipped = 0;
};

/// Streams `path` row by row, extracts each row's text per `options`,
/// and hands it to `row_fn`. `row_fn` returning false stops the read
/// early (the rows so far keep their stats). The file is never fully
/// materialised: memory is bounded by the longest single row.
Result<ReaderStats> ReadRecordsFromFile(
    const std::string& path, const ReaderOptions& options,
    const std::function<bool(std::string&&)>& row_fn);

}  // namespace aujoin

#endif  // AUJOIN_DATASET_RECORD_READER_H_
