#include "dataset/record_reader.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "util/io.h"

namespace aujoin {
namespace {

std::string LowerExtension(const std::string& path) {
  size_t dot = path.find_last_of('.');
  size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return "";
  }
  std::string ext = path.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return ext;
}

Status MalformedError(const std::string& path, size_t lineno,
                      const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(lineno) + ": " +
                                 what);
}

// ------------------------------------------------------------------ CSV

enum class RowOutcome { kEof, kRow, kMalformed };

/// Reads one RFC-4180 record from `in` (a record may span physical lines
/// inside a quoted field). `lines_consumed` counts the physical lines the
/// record covered so callers can keep line numbers honest.
RowOutcome ReadCsvRow(std::istream& in, std::vector<std::string>* fields,
                      size_t* lines_consumed, std::string* error) {
  fields->clear();
  *lines_consumed = 0;
  if (in.peek() == std::char_traits<char>::eof()) return RowOutcome::kEof;
  *lines_consumed = 1;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  auto end_field = [&] {
    fields->push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  for (;;) {
    int ci = in.get();
    if (ci == std::char_traits<char>::eof()) {
      if (in_quotes) {
        *error = "unterminated quoted field";
        return RowOutcome::kMalformed;
      }
      end_field();
      return RowOutcome::kRow;
    }
    char c = static_cast<char>(ci);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*lines_consumed;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_was_quoted) {
          in_quotes = true;
          field_was_quoted = true;
        } else {
          *error = "stray quote inside unquoted field";
          return RowOutcome::kMalformed;
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        if (in.peek() == '\n') in.get();
        end_field();
        return RowOutcome::kRow;
      case '\n':
        end_field();
        return RowOutcome::kRow;
      default:
        if (field_was_quoted) {
          *error = "data after closing quote";
          return RowOutcome::kMalformed;
        }
        field.push_back(c);
    }
  }
}

/// Best-effort resynchronisation after a malformed CSV row under the
/// kSkip policy: drop input up to and including the next newline.
void SkipToNextLine(std::istream& in) {
  int ci;
  while ((ci = in.get()) != std::char_traits<char>::eof() && ci != '\n') {
  }
}

// ---------------------------------------------------------------- JSONL

/// A scalar field of one JSONL object: decoded string value, or the raw
/// token text for numbers/booleans.
struct JsonField {
  std::string key;
  std::string value;
  bool scalar = true;  // false for objects/arrays (not selectable)
};

/// Minimal single-line JSON object parser: collects top-level scalar
/// fields, skips nested values, rejects anything that is not one valid
/// object per line.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& line)
      : p_(line.data()), end_(line.data() + line.size()) {}

  bool ParseObjectLine(std::vector<JsonField>* fields, std::string* error) {
    SkipWs();
    if (!Consume('{')) return Fail("expected '{'", error);
    SkipWs();
    if (Consume('}')) return AtEnd(error);
    for (;;) {
      SkipWs();
      JsonField field;
      if (!ParseString(&field.key)) {
        return Fail("expected object key string", error);
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'", error);
      SkipWs();
      if (!ParseValue(&field.value, &field.scalar)) {
        return Fail("invalid value for key '" + field.key + "'", error);
      }
      fields->push_back(std::move(field));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return AtEnd(error);
      return Fail("expected ',' or '}'", error);
    }
  }

 private:
  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
  }
  bool Consume(char c) {
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool Fail(const std::string& what, std::string* error) {
    *error = what;
    return false;
  }
  bool AtEnd(std::string* error) {
    SkipWs();
    if (p_ != end_) return Fail("trailing data after object", error);
    return true;
  }

  /// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (end_ - p_ < 4) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = *p_++;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (p_ < end_) {
      char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ >= end_) return false;
      char esc = *p_++;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code;
          if (!ParseHex4(&code)) return false;
          // Combine a surrogate pair when one follows; a lone surrogate
          // becomes U+FFFD rather than invalid UTF-8.
          if (code >= 0xD800 && code <= 0xDBFF && end_ - p_ >= 6 &&
              p_[0] == '\\' && p_[1] == 'u') {
            p_ += 2;
            uint32_t low;
            if (!ParseHex4(&low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              AppendUtf8(0xFFFD, out);
              code = low;
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
          AppendUtf8(code, out);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(std::string* out, bool* scalar) {
    *scalar = true;
    if (p_ >= end_) return false;
    char c = *p_;
    if (c == '"') return ParseString(out);
    if (c == '{' || c == '[') {
      *scalar = false;
      return SkipComposite();
    }
    // Literals and numbers: capture the raw token.
    const char* begin = p_;
    while (p_ < end_ && *p_ != ',' && *p_ != '}' && *p_ != ']' &&
           *p_ != ' ' && *p_ != '\t') {
      ++p_;
    }
    std::string token(begin, p_);
    if (token == "true" || token == "false" || token == "null") {
      *out = token;
      return true;
    }
    // Validate as a JSON number the cheap way: optional sign, digits,
    // optional fraction/exponent.
    char* parse_end = nullptr;
    std::string terminated = token;
    std::strtod(terminated.c_str(), &parse_end);
    if (token.empty() || parse_end != terminated.c_str() + terminated.size()) {
      return false;
    }
    *out = token;
    return true;
  }

  /// Skips a nested object/array, honouring strings and nesting depth.
  bool SkipComposite() {
    int depth = 0;
    while (p_ < end_) {
      char c = *p_;
      if (c == '"') {
        std::string ignored;
        if (!ParseString(&ignored)) return false;
        continue;
      }
      ++p_;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        if (--depth == 0) return true;
      }
    }
    return false;
  }

  const char* p_;
  const char* end_;
};

// --------------------------------------------------------------- driver

/// Joins the selected fields with single spaces.
std::string JoinSelected(const std::vector<std::string>& fields,
                         const std::vector<size_t>& indices) {
  std::string text;
  for (size_t i : indices) {
    if (!text.empty()) text += ' ';
    text += fields[i];
  }
  return text;
}

bool TextIsBlank(const std::string& text) {
  for (unsigned char c : text) {
    if (std::isspace(c) == 0) return false;
  }
  return true;
}

Result<ReaderStats> ReadDelimited(
    const std::string& path, const ReaderOptions& options, char delim,
    bool quoted, const std::function<bool(std::string&&)>& row_fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  ReaderStats stats;
  size_t lineno = 0;
  // The physical line the current row starts on — what error messages
  // point at (a malformed multi-line CSV row reports where it began).
  size_t row_start = 0;
  std::vector<std::string> fields;
  std::string error;

  // One row fetch shared by the header and data paths. TSV rows are
  // verbatim tab splits of one physical line; CSV rows go through the
  // quoted reader and may span lines.
  auto next_row = [&](RowOutcome* outcome) {
    row_start = lineno + 1;
    if (quoted) {
      size_t lines_consumed = 0;
      *outcome = ReadCsvRow(in, &fields, &lines_consumed, &error);
      lineno += lines_consumed;
      return;
    }
    std::string line;
    if (!std::getline(in, line)) {
      *outcome = RowOutcome::kEof;
      return;
    }
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    fields = SplitString(line, delim);
    *outcome = RowOutcome::kRow;
  };

  // Resolve the column selection (an empty selection means every field).
  std::vector<size_t> indices = options.column_indices;
  if (!options.columns.empty()) {
    if (!options.column_indices.empty()) {
      return Status::InvalidArgument(
          "set either columns or column_indices, not both");
    }
    if (!options.has_header) {
      return Status::InvalidArgument(
          "column selection by name requires has_header");
    }
  }
  if (options.has_header) {
    RowOutcome outcome;
    next_row(&outcome);
    if (outcome == RowOutcome::kEof) {
      return stats;  // empty file: zero records, not an error
    }
    if (outcome == RowOutcome::kMalformed) {
      return MalformedError(path, row_start, "header: " + error);
    }
    for (const std::string& name : options.columns) {
      auto it = std::find(fields.begin(), fields.end(), name);
      if (it == fields.end()) {
        return Status::InvalidArgument(path + ": no column named '" + name +
                                       "' in header");
      }
      indices.push_back(static_cast<size_t>(it - fields.begin()));
    }
  }

  for (;;) {
    if (options.max_records > 0 &&
        stats.records_emitted >= options.max_records) {
      break;
    }
    RowOutcome outcome;
    next_row(&outcome);
    if (outcome == RowOutcome::kEof) break;

    size_t row_line = row_start;
    std::string text;
    bool malformed = outcome == RowOutcome::kMalformed;
    if (malformed && quoted) SkipToNextLine(in);
    if (!malformed) {
      // Entirely blank physical lines are structure, not data.
      if (fields.size() == 1 && fields[0].empty()) continue;
      ++stats.rows_read;
      for (size_t index : indices) {
        if (index >= fields.size()) {
          error = "row has " + std::to_string(fields.size()) +
                  " fields, column index " + std::to_string(index) +
                  " selected";
          malformed = true;
          break;
        }
      }
      if (!malformed) {
        text = indices.empty() ? JoinStrings(fields, " ")
                               : JoinSelected(fields, indices);
        if (TextIsBlank(text)) {
          error = "empty record text";
          malformed = true;
        }
      }
    } else {
      ++stats.rows_read;
    }

    if (malformed) {
      if (options.on_malformed == MalformedRowPolicy::kFail) {
        return MalformedError(path, row_line, error);
      }
      ++stats.rows_skipped;
      continue;
    }
    ++stats.records_emitted;
    if (!row_fn(std::move(text))) break;
  }
  return stats;
}

Result<ReaderStats> ReadJsonl(
    const std::string& path, const ReaderOptions& options,
    const std::function<bool(std::string&&)>& row_fn) {
  if (!options.column_indices.empty()) {
    return Status::InvalidArgument(
        "jsonl selects fields by name; column_indices is not supported");
  }
  std::vector<std::string> keys = options.columns;
  if (keys.empty()) keys.push_back("text");

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  ReaderStats stats;
  size_t lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (options.max_records > 0 &&
        stats.records_emitted >= options.max_records) {
      break;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TextIsBlank(line)) continue;
    ++stats.rows_read;

    std::string error;
    std::vector<JsonField> object;
    std::string text;
    bool malformed = !MiniJsonParser(line).ParseObjectLine(&object, &error);
    if (!malformed) {
      for (const std::string& key : keys) {
        const JsonField* found = nullptr;
        for (const JsonField& field : object) {
          if (field.key == key) {
            found = &field;
            break;
          }
        }
        if (found == nullptr) {
          error = "missing key '" + key + "'";
          malformed = true;
          break;
        }
        if (!found->scalar) {
          error = "key '" + key + "' is not a scalar";
          malformed = true;
          break;
        }
        if (!text.empty()) text += ' ';
        text += found->value;
      }
    }
    if (!malformed && TextIsBlank(text)) {
      error = "empty record text";
      malformed = true;
    }

    if (malformed) {
      if (options.on_malformed == MalformedRowPolicy::kFail) {
        return MalformedError(path, lineno, error);
      }
      ++stats.rows_skipped;
      continue;
    }
    ++stats.records_emitted;
    if (!row_fn(std::move(text))) break;
  }
  return stats;
}

Result<ReaderStats> ReadLinesFormat(
    const std::string& path, const ReaderOptions& options,
    const std::function<bool(std::string&&)>& row_fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  ReaderStats stats;
  std::string line;
  while (std::getline(in, line)) {
    if (options.max_records > 0 &&
        stats.records_emitted >= options.max_records) {
      break;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TextIsBlank(line)) continue;
    ++stats.rows_read;
    ++stats.records_emitted;
    if (!row_fn(std::move(line))) break;
    line.clear();
  }
  return stats;
}

}  // namespace

Result<DatasetFormat> ParseDatasetFormat(const std::string& name) {
  if (name == "auto") return DatasetFormat::kAuto;
  if (name == "lines" || name == "txt") return DatasetFormat::kLines;
  if (name == "csv") return DatasetFormat::kCsv;
  if (name == "tsv") return DatasetFormat::kTsv;
  if (name == "jsonl" || name == "ndjson") return DatasetFormat::kJsonl;
  return Status::InvalidArgument(
      "unknown dataset format '" + name +
      "' (expected auto, lines, csv, tsv or jsonl)");
}

const char* DatasetFormatName(DatasetFormat format) {
  switch (format) {
    case DatasetFormat::kAuto:
      return "auto";
    case DatasetFormat::kLines:
      return "lines";
    case DatasetFormat::kCsv:
      return "csv";
    case DatasetFormat::kTsv:
      return "tsv";
    case DatasetFormat::kJsonl:
      return "jsonl";
  }
  return "unknown";
}

DatasetFormat ResolveFormat(DatasetFormat format, const std::string& path) {
  if (format != DatasetFormat::kAuto) return format;
  std::string ext = LowerExtension(path);
  if (ext == "csv") return DatasetFormat::kCsv;
  if (ext == "tsv") return DatasetFormat::kTsv;
  if (ext == "jsonl" || ext == "ndjson") return DatasetFormat::kJsonl;
  return DatasetFormat::kLines;
}

Result<ReaderStats> ReadRecordsFromFile(
    const std::string& path, const ReaderOptions& options,
    const std::function<bool(std::string&&)>& row_fn) {
  switch (ResolveFormat(options.format, path)) {
    case DatasetFormat::kCsv:
      return ReadDelimited(path, options, ',', /*quoted=*/true, row_fn);
    case DatasetFormat::kTsv:
      return ReadDelimited(path, options, '\t', /*quoted=*/false, row_fn);
    case DatasetFormat::kJsonl:
      return ReadJsonl(path, options, row_fn);
    case DatasetFormat::kLines:
    default:
      if (!options.columns.empty() || !options.column_indices.empty()) {
        return Status::InvalidArgument(
            "the lines format has no columns to select");
      }
      return ReadLinesFormat(path, options, row_fn);
  }
}

}  // namespace aujoin
