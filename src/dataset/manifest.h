/// \file
/// DatasetManifest: the summary record every ingested (or generated)
/// corpus carries — sizes, token statistics, knowledge shape — and its
/// JSON serialisation embedded in BENCH_*.json reports (see
/// docs/bench-schema.md).

#ifndef AUJOIN_DATASET_MANIFEST_H_
#define AUJOIN_DATASET_MANIFEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/record.h"
#include "synonym/rule_set.h"
#include "taxonomy/taxonomy.h"
#include "text/vocabulary.h"

namespace aujoin {

/// Summary statistics of one ingested dataset: what was loaded, how big
/// it is, and the token-level shape the join cost depends on. Written as
/// the "dataset" object of the aujoin CLI's stats JSON and embeddable in
/// BENCH_*.json reports, so a benchmark result always names the
/// corpus it ran on.
struct DatasetManifest {
  /// Records file path, or `<memory>` for in-memory construction.
  std::string source;
  /// Resolved DatasetFormatName of the records file.
  std::string format;

  size_t num_records = 0;
  /// Second collection of an R×S dataset (0 = self-join dataset).
  size_t num_records_t = 0;
  /// Malformed rows dropped during ingestion (kSkip policy).
  size_t rows_skipped = 0;

  // Token statistics over the record collection.
  uint64_t total_tokens = 0;
  size_t min_tokens = 0;
  size_t max_tokens = 0;
  double avg_tokens = 0.0;
  /// Distinct interned tokens across records + knowledge sources.
  size_t vocab_size = 0;

  // Knowledge shape.
  size_t num_rules = 0;
  size_t num_taxonomy_nodes = 0;
  /// Knowledge::ClawK() — the claw parameter k of Theorem 2.
  size_t claw_k = 0;

  /// Serialises as one JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Computes a manifest over loaded components. `rules` / `taxonomy` may
/// be nullptr when the corresponding knowledge source is absent.
DatasetManifest BuildManifest(const std::vector<Record>& records,
                              const Vocabulary& vocab, const RuleSet* rules,
                              const Taxonomy* taxonomy);

}  // namespace aujoin

#endif  // AUJOIN_DATASET_MANIFEST_H_
