#include "dataset/dataset.h"

#include <utility>

#include "synonym/rule_io.h"
#include "taxonomy/taxonomy_io.h"

namespace aujoin {

void Dataset::RefreshManifest() {
  DatasetManifest fresh = BuildManifest(records, vocab, &rules, &taxonomy);
  fresh.source = manifest.source;
  fresh.format = manifest.format;
  fresh.rows_skipped = manifest.rows_skipped;
  fresh.num_records_t = records2.size();
  manifest = fresh;
}

Result<Dataset> LoadDataset(const DatasetSpec& spec) {
  if (spec.records_path.empty()) {
    return Status::InvalidArgument("DatasetSpec::records_path is required");
  }
  Dataset dataset;

  // Knowledge files first: interning rule/taxonomy phrases before the
  // corpus gives knowledge tokens the low ids, but any order would work —
  // ids only need to be consistent within the one shared vocabulary.
  if (!spec.taxonomy_path.empty()) {
    Result<Taxonomy> taxonomy = LoadTaxonomyFromTsv(
        spec.taxonomy_path, &dataset.vocab, spec.tokenizer);
    if (!taxonomy.ok()) return taxonomy.status();
    dataset.taxonomy = std::move(*taxonomy);
  }
  if (!spec.rules_path.empty()) {
    Result<RuleSet> rules =
        LoadRulesFromTsv(spec.rules_path, &dataset.vocab, spec.tokenizer);
    if (!rules.ok()) return rules.status();
    dataset.rules = std::move(*rules);
  }

  auto read_collection = [&](const std::string& path,
                             std::vector<Record>* out) {
    return ReadRecordsFromFile(path, spec.reader, [&](std::string&& text) {
      out->push_back(MakeRecord(static_cast<uint32_t>(out->size()),
                                std::move(text), &dataset.vocab,
                                spec.tokenizer));
      return true;
    });
  };

  Result<ReaderStats> stats =
      read_collection(spec.records_path, &dataset.records);
  if (!stats.ok()) return stats.status();
  if (dataset.records.empty()) {
    return Status::InvalidArgument("records file yielded no records: " +
                                   spec.records_path);
  }
  size_t rows_skipped = stats->rows_skipped;

  if (!spec.records2_path.empty()) {
    Result<ReaderStats> stats2 =
        read_collection(spec.records2_path, &dataset.records2);
    if (!stats2.ok()) return stats2.status();
    if (dataset.records2.empty()) {
      return Status::InvalidArgument("records file yielded no records: " +
                                     spec.records2_path);
    }
    rows_skipped += stats2->rows_skipped;
  }

  dataset.manifest = BuildManifest(dataset.records, dataset.vocab,
                                   &dataset.rules, &dataset.taxonomy);
  dataset.manifest.source = spec.records_path;
  dataset.manifest.format = DatasetFormatName(
      ResolveFormat(spec.reader.format, spec.records_path));
  dataset.manifest.rows_skipped = rows_skipped;
  dataset.manifest.num_records_t = dataset.records2.size();
  return dataset;
}

Result<Dataset> MakeDatasetFromLines(const std::vector<std::string>& lines,
                                     const TokenizerOptions& tokenizer) {
  if (lines.empty()) {
    return Status::InvalidArgument("no record lines given");
  }
  Dataset dataset;
  dataset.records = MakeRecords(lines, &dataset.vocab, tokenizer);
  dataset.manifest = BuildManifest(dataset.records, dataset.vocab,
                                   &dataset.rules, &dataset.taxonomy);
  return dataset;
}

}  // namespace aujoin
