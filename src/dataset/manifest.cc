#include "dataset/manifest.h"

#include <algorithm>

#include "core/knowledge.h"
#include "util/json.h"

namespace aujoin {

std::string DatasetManifest::ToJson() const {
  std::string out = "{";
  AppendJsonKey("source", &out);
  AppendJsonString(source, &out);
  out += ", ";
  AppendJsonKey("format", &out);
  AppendJsonString(format, &out);
  out += ", ";
  AppendJsonKey("num_records", &out);
  AppendJsonUint(num_records, &out);
  out += ", ";
  AppendJsonKey("num_records_t", &out);
  AppendJsonUint(num_records_t, &out);
  out += ", ";
  AppendJsonKey("rows_skipped", &out);
  AppendJsonUint(rows_skipped, &out);
  out += ", ";
  AppendJsonKey("total_tokens", &out);
  AppendJsonUint(total_tokens, &out);
  out += ", ";
  AppendJsonKey("min_tokens", &out);
  AppendJsonUint(min_tokens, &out);
  out += ", ";
  AppendJsonKey("max_tokens", &out);
  AppendJsonUint(max_tokens, &out);
  out += ", ";
  AppendJsonKey("avg_tokens", &out);
  AppendJsonDouble(avg_tokens, &out);
  out += ", ";
  AppendJsonKey("vocab_size", &out);
  AppendJsonUint(vocab_size, &out);
  out += ", ";
  AppendJsonKey("num_rules", &out);
  AppendJsonUint(num_rules, &out);
  out += ", ";
  AppendJsonKey("num_taxonomy_nodes", &out);
  AppendJsonUint(num_taxonomy_nodes, &out);
  out += ", ";
  AppendJsonKey("claw_k", &out);
  AppendJsonUint(claw_k, &out);
  out += "}";
  return out;
}

DatasetManifest BuildManifest(const std::vector<Record>& records,
                              const Vocabulary& vocab, const RuleSet* rules,
                              const Taxonomy* taxonomy) {
  DatasetManifest manifest;
  manifest.source = "<memory>";
  manifest.format = "memory";
  manifest.num_records = records.size();
  bool first = true;
  for (const Record& record : records) {
    size_t n = record.num_tokens();
    manifest.total_tokens += n;
    manifest.min_tokens = first ? n : std::min(manifest.min_tokens, n);
    manifest.max_tokens = std::max(manifest.max_tokens, n);
    first = false;
  }
  if (!records.empty()) {
    manifest.avg_tokens = static_cast<double>(manifest.total_tokens) /
                          static_cast<double>(records.size());
  }
  manifest.vocab_size = vocab.size();
  if (rules != nullptr) manifest.num_rules = rules->num_rules();
  if (taxonomy != nullptr) manifest.num_taxonomy_nodes = taxonomy->num_nodes();
  manifest.claw_k = Knowledge{&vocab, rules, taxonomy}.ClawK();
  return manifest;
}

}  // namespace aujoin
