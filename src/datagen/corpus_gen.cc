#include "datagen/corpus_gen.h"

#include <algorithm>
#include <set>
#include <string>

#include "datagen/words.h"
#include "text/edits.h"
#include "util/rng.h"

namespace aujoin {

CorpusProfile CorpusProfile::Med(size_t num_strings) {
  CorpusProfile p;
  p.num_strings = num_strings;
  p.avg_tokens = 8;
  p.entity_mention_prob = 0.25;   // ~3 taxonomy hits / string
  p.synonym_mention_prob = 0.35;  // ~4 synonym hits / string
  p.seed = 31;
  return p;
}

CorpusProfile CorpusProfile::Wiki(size_t num_strings) {
  CorpusProfile p;
  p.num_strings = num_strings;
  p.avg_tokens = 8;
  p.entity_mention_prob = 0.45;   // ~6 taxonomy hits / string
  p.synonym_mention_prob = 0.15;  // ~2 synonym hits / string
  p.filler_vocab = 9000;
  p.seed = 37;
  return p;
}

namespace {

// A building block of a generated string; remembered so the ground-truth
// derivation can apply the matching semantic edit.
struct Unit {
  enum class Kind { kFiller, kEntity, kRuleSide } kind = Kind::kFiller;
  std::vector<std::string> tokens;  // surface forms
  NodeId entity = Taxonomy::kInvalidNode;
  RuleId rule = 0;
  RuleSide side = RuleSide::kLhs;
};

std::vector<std::string> SpellOut(const Vocabulary& vocab,
                                  const std::vector<TokenId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (TokenId id : ids) out.push_back(vocab.Spelling(id));
  return out;
}

std::string JoinUnits(const std::vector<Unit>& units) {
  std::string text;
  for (const Unit& u : units) {
    for (const auto& tok : u.tokens) {
      if (!text.empty()) text += ' ';
      text += tok;
    }
  }
  return text;
}

}  // namespace

Corpus CorpusGenerator::Generate(const CorpusProfile& profile,
                                 const GroundTruthOptions& truth) {
  Rng rng(profile.seed);
  Rng truth_rng(truth.seed);
  WordFactory words(&rng);
  Corpus corpus;

  // Filler word pool with zipf-skewed usage.
  std::vector<std::string> fillers;
  fillers.reserve(profile.filler_vocab);
  for (size_t i = 0; i < profile.filler_vocab; ++i) {
    fillers.push_back(words.UniqueWord());
  }

  // Entities deep enough that sibling swaps stay similar.
  std::vector<NodeId> deep_entities;
  if (taxonomy_ != nullptr && !taxonomy_->empty()) {
    for (NodeId n = 0; n < taxonomy_->num_nodes(); ++n) {
      if (taxonomy_->Depth(n) >= profile.min_entity_depth &&
          taxonomy_->Parent(n) != Taxonomy::kInvalidNode &&
          taxonomy_->Children(taxonomy_->Parent(n)).size() >= 2) {
        deep_entities.push_back(n);
      }
    }
  }
  const bool have_entities = !deep_entities.empty();
  const bool have_rules = rules_ != nullptr && rules_->num_rules() > 0;

  // Generate base strings as unit sequences.
  std::vector<std::vector<Unit>> all_units;
  all_units.reserve(profile.num_strings);
  for (size_t s = 0; s < profile.num_strings; ++s) {
    int target = static_cast<int>(rng.Normal(profile.avg_tokens,
                                             profile.avg_tokens / 2.5));
    target = std::clamp(target, profile.min_tokens, profile.max_tokens);
    std::vector<Unit> units;
    int tokens = 0;
    while (tokens < target) {
      Unit u;
      double roll = rng.UniformReal();
      if (have_entities && roll < profile.entity_mention_prob) {
        u.kind = Unit::Kind::kEntity;
        u.entity = deep_entities[rng.Zipf(deep_entities.size(),
                                          profile.zipf_alpha)];
        u.tokens = SpellOut(*vocab_, taxonomy_->Name(u.entity));
      } else if (have_rules &&
                 roll < profile.entity_mention_prob +
                            profile.synonym_mention_prob) {
        u.kind = Unit::Kind::kRuleSide;
        u.rule = static_cast<RuleId>(
            rng.Zipf(rules_->num_rules(), profile.zipf_alpha));
        u.side = rng.Bernoulli(0.5) ? RuleSide::kLhs : RuleSide::kRhs;
        const SynonymRule& r = rules_->rule(u.rule);
        u.tokens =
            SpellOut(*vocab_, u.side == RuleSide::kLhs ? r.lhs : r.rhs);
      } else {
        u.kind = Unit::Kind::kFiller;
        u.tokens.push_back(
            fillers[rng.Zipf(fillers.size(), profile.zipf_alpha)]);
      }
      tokens += static_cast<int>(u.tokens.size());
      units.push_back(std::move(u));
    }
    all_units.push_back(std::move(units));
  }

  for (size_t s = 0; s < all_units.size(); ++s) {
    corpus.records.push_back(MakeRecord(static_cast<uint32_t>(s),
                                        JoinUnits(all_units[s]), vocab_));
  }

  // Derive labelled similar variants with mixed edit types.
  size_t num_pairs = std::min(truth.num_pairs, all_units.size());
  for (size_t p = 0; p < num_pairs; ++p) {
    size_t base_idx =
        all_units.size() <= num_pairs
            ? p
            : static_cast<size_t>(truth_rng.Uniform(
                  0, static_cast<int64_t>(all_units.size()) - 1));
    std::vector<Unit> variant = all_units[base_idx];
    bool edited = false;
    for (Unit& u : variant) {
      switch (u.kind) {
        case Unit::Kind::kRuleSide:
          if (truth_rng.UniformReal() < truth.synonym_swap_prob) {
            const SynonymRule& r = rules_->rule(u.rule);
            u.side = u.side == RuleSide::kLhs ? RuleSide::kRhs
                                              : RuleSide::kLhs;
            u.tokens = SpellOut(
                *vocab_, u.side == RuleSide::kLhs ? r.lhs : r.rhs);
            edited = true;
          }
          break;
        case Unit::Kind::kEntity:
          if (truth_rng.UniformReal() < truth.taxonomy_swap_prob) {
            const auto& siblings =
                taxonomy_->Children(taxonomy_->Parent(u.entity));
            NodeId pick = siblings[static_cast<size_t>(truth_rng.Uniform(
                0, static_cast<int64_t>(siblings.size()) - 1))];
            if (pick != u.entity) {
              u.entity = pick;
              u.tokens = SpellOut(*vocab_, taxonomy_->Name(pick));
              edited = true;
            }
          }
          break;
        case Unit::Kind::kFiller:
          if (truth_rng.UniformReal() < truth.typo_prob) {
            u.tokens[0] =
                ApplyTypos(u.tokens[0], truth.typo_edits, &truth_rng);
            edited = true;
          }
          break;
      }
    }
    if (!edited && !variant.empty()) {
      // Guarantee at least one (typographic) difference.
      Unit& u = variant.front();
      u.tokens[0] = ApplyTypos(u.tokens[0], truth.typo_edits, &truth_rng);
    }
    uint32_t variant_idx = static_cast<uint32_t>(corpus.records.size());
    corpus.records.push_back(
        MakeRecord(variant_idx, JoinUnits(variant), vocab_));
    corpus.truth_pairs.emplace_back(static_cast<uint32_t>(base_idx),
                                    variant_idx);
  }
  return corpus;
}

PrfScore ComputePrf(const std::vector<std::pair<uint32_t, uint32_t>>& found,
                    const std::vector<std::pair<uint32_t, uint32_t>>& truth) {
  auto canon = [](std::pair<uint32_t, uint32_t> p) {
    if (p.first > p.second) std::swap(p.first, p.second);
    return p;
  };
  std::set<std::pair<uint32_t, uint32_t>> truth_set;
  for (auto p : truth) truth_set.insert(canon(p));
  std::set<std::pair<uint32_t, uint32_t>> found_set;
  for (auto p : found) found_set.insert(canon(p));

  PrfScore score;
  score.found = found_set.size();
  score.truth = truth_set.size();
  for (const auto& p : found_set) {
    if (truth_set.count(p) > 0) ++score.correct;
  }
  if (score.found > 0) {
    score.precision =
        static_cast<double>(score.correct) / static_cast<double>(score.found);
  }
  if (score.truth > 0) {
    score.recall =
        static_cast<double>(score.correct) / static_cast<double>(score.truth);
  }
  if (score.precision + score.recall > 0) {
    score.f_measure = 2 * score.precision * score.recall /
                      (score.precision + score.recall);
  }
  return score;
}

}  // namespace aujoin
