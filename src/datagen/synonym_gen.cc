#include "datagen/synonym_gen.h"

#include <vector>

#include "datagen/words.h"
#include "util/rng.h"

namespace aujoin {

RuleSet GenerateSynonyms(const SynonymGenOptions& options,
                         const Taxonomy& taxonomy, Vocabulary* vocab) {
  Rng rng(options.seed);
  WordFactory words(&rng);
  RuleSet rules;

  auto make_phrase = [&](int min_tokens) {
    int len = static_cast<int>(
        rng.Uniform(min_tokens, options.max_side_tokens));
    std::vector<TokenId> phrase;
    for (int i = 0; i < len; ++i) {
      phrase.push_back(vocab->Intern(words.UniqueWord()));
    }
    return phrase;
  };
  auto closeness = [&]() {
    return options.min_closeness +
           rng.UniformReal() * (1.0 - options.min_closeness);
  };

  size_t added = 0;
  while (added < options.num_rules) {
    bool alias = !taxonomy.empty() &&
                 rng.UniformReal() < options.entity_alias_fraction;
    Result<RuleId> r = Status::OK();
    if (alias) {
      NodeId node = static_cast<NodeId>(
          rng.Uniform(0, static_cast<int64_t>(taxonomy.num_nodes()) - 1));
      r = rules.AddRule(make_phrase(1), taxonomy.Name(node), closeness());
    } else {
      // Abbreviation-style: multi-token lhs, shorter rhs.
      r = rules.AddRule(make_phrase(2), make_phrase(1), closeness());
    }
    if (r.ok()) ++added;
  }
  return rules;
}

}  // namespace aujoin
