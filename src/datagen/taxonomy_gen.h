#ifndef AUJOIN_DATAGEN_TAXONOMY_GEN_H_
#define AUJOIN_DATAGEN_TAXONOMY_GEN_H_

#include <cstdint>

#include "taxonomy/taxonomy.h"
#include "text/vocabulary.h"

namespace aujoin {

/// Parameters of the synthetic IS-A hierarchy (stands in for MeSH /
/// Wikipedia categories; see the substitution table in DESIGN.md). The
/// random-attachment process yields heights with the min/avg/max shape of
/// Table 6 at laptop scale.
struct TaxonomyGenOptions {
  size_t num_nodes = 2000;
  /// Nodes at this depth stop acquiring children.
  int max_depth = 10;
  /// Probability that an entity name has two tokens (else one).
  double two_token_name_prob = 0.25;
  /// Bias towards attaching to deeper parents (0 = uniform); raises the
  /// average depth towards the paper's 5-6.
  double depth_bias = 1.0;
  uint64_t seed = 1;
};

/// Generates a random taxonomy; entity names are interned into `vocab`.
Taxonomy GenerateTaxonomy(const TaxonomyGenOptions& options,
                          Vocabulary* vocab);

}  // namespace aujoin

#endif  // AUJOIN_DATAGEN_TAXONOMY_GEN_H_
