#ifndef AUJOIN_DATAGEN_CORPUS_GEN_H_
#define AUJOIN_DATAGEN_CORPUS_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/knowledge.h"
#include "core/record.h"
#include "synonym/rule_set.h"
#include "taxonomy/taxonomy.h"

namespace aujoin {

/// Shape parameters of a synthetic corpus. The Med()/Wiki() presets mirror
/// the per-string statistics of Table 7 (token counts, taxonomy hits and
/// synonym hits per string) at configurable scale.
struct CorpusProfile {
  size_t num_strings = 5000;
  /// Target token count per string (approximately normal around avg).
  int min_tokens = 2;
  int avg_tokens = 8;
  int max_tokens = 24;
  /// Per generated unit: probability it is a taxonomy entity mention.
  double entity_mention_prob = 0.30;
  /// Per generated unit: probability it is a synonym-rule side mention.
  double synonym_mention_prob = 0.30;
  /// Number of distinct filler words (zipf-skewed usage). Pool sizes are
  /// kept comparable to the corpus size, mirroring the paper's datasets
  /// (293K strings vs 58K taxonomy nodes and 180K rules), so signature
  /// pebbles stay selective.
  size_t filler_vocab = 6000;
  /// Skew of unit usage (0 = uniform); applies to fillers, entity
  /// mentions and rule mentions.
  double zipf_alpha = 0.25;
  /// Entities mentioned are sampled from nodes at least this deep, so
  /// sibling swaps preserve high taxonomy similarity.
  int min_entity_depth = 4;
  uint64_t seed = 3;

  /// MED-like: keyword strings, synonym-rich (Table 7: 8.4 tokens, 3.2
  /// taxonomy hits, 4.3 synonym hits per string).
  static CorpusProfile Med(size_t num_strings);
  /// WIKI-like: category strings, taxonomy-rich (8.2 tokens, 6.2 taxonomy
  /// hits, 2.0 synonym hits).
  static CorpusProfile Wiki(size_t num_strings);
};

/// Controls derivation of labelled similar pairs (the stand-in for the
/// paper's crowd-sourced ground truth): each pair is a base string plus a
/// variant produced by a mixture of typo / synonym / taxonomy edits.
struct GroundTruthOptions {
  size_t num_pairs = 300;
  /// Per unit of the base string, chance of each edit type (mutually
  /// exclusive, tried in this order where applicable).
  double synonym_swap_prob = 0.5;
  double taxonomy_swap_prob = 0.5;
  double typo_prob = 0.35;
  int typo_edits = 1;
  uint64_t seed = 4;
};

/// A generated corpus: records plus labelled similar pairs (indexes into
/// `records`).
struct Corpus {
  std::vector<Record> records;
  std::vector<std::pair<uint32_t, uint32_t>> truth_pairs;
};

/// Generates corpora over existing knowledge sources. All token text is
/// interned into the provided vocabulary.
class CorpusGenerator {
 public:
  CorpusGenerator(Vocabulary* vocab, const Taxonomy* taxonomy,
                  const RuleSet* rules)
      : vocab_(vocab), taxonomy_(taxonomy), rules_(rules) {}

  /// Generates `profile.num_strings` base records and appends
  /// `truth.num_pairs` variant records labelled as similar to their base.
  Corpus Generate(const CorpusProfile& profile,
                  const GroundTruthOptions& truth);

 private:
  Vocabulary* vocab_;
  const Taxonomy* taxonomy_;
  const RuleSet* rules_;
};

/// Precision / recall / F-measure of a found pair set against the truth
/// set (pairs are unordered; both orientations count as the same pair).
struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t found = 0;
  size_t truth = 0;
  size_t correct = 0;
};

PrfScore ComputePrf(const std::vector<std::pair<uint32_t, uint32_t>>& found,
                    const std::vector<std::pair<uint32_t, uint32_t>>& truth);

}  // namespace aujoin

#endif  // AUJOIN_DATAGEN_CORPUS_GEN_H_
