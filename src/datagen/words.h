#ifndef AUJOIN_DATAGEN_WORDS_H_
#define AUJOIN_DATAGEN_WORDS_H_

#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace aujoin {

/// Generates pronounceable synthetic words from random syllables, so the
/// generated corpora have realistic q-gram distributions (shared bigrams
/// between different words, variable lengths) rather than opaque ids.
class WordFactory {
 public:
  explicit WordFactory(Rng* rng) : rng_(rng) {}

  /// A random word of 2-4 syllables (may repeat across calls).
  std::string RandomWord() {
    static const char* kSyllables[] = {
        "ba",  "be",  "bo",  "ca",  "ce",  "co",  "da",  "de",  "do",
        "fa",  "fi",  "ga",  "go",  "ha",  "he",  "ka",  "ke",  "ki",
        "la",  "le",  "li",  "lo",  "ma",  "me",  "mi",  "mo",  "na",
        "ne",  "ni",  "no",  "pa",  "pe",  "po",  "ra",  "re",  "ri",
        "ro",  "sa",  "se",  "si",  "so",  "ta",  "te",  "ti",  "to",
        "va",  "ve",  "vi",  "za",  "zo",  "lu",  "ru",  "tu",  "su",
        "nu",  "qui", "wex", "xon", "yel", "jor", "gla", "bri", "ster",
        "tron", "plex", "crom", "dyn", "fos", "gry", "hux", "jin", "kov",
        "lyn", "mur", "nyx", "osk", "pra", "qua", "rho", "sly", "thra",
        "urb", "vok", "wyn", "xia", "yor", "zub", "chi", "sha", "tza",
        "blo", "cru", "dri", "fle", "gno", "hri", "klu", "mna", "pso"};
    constexpr int kNumSyllables =
        static_cast<int>(sizeof(kSyllables) / sizeof(kSyllables[0]));
    int syllables = static_cast<int>(rng_->Uniform(2, 4));
    std::string w;
    for (int i = 0; i < syllables; ++i) {
      w += kSyllables[rng_->Uniform(0, kNumSyllables - 1)];
    }
    return w;
  }

  /// A word never returned by this factory before (appends a disambiguating
  /// syllable on collision).
  std::string UniqueWord() {
    std::string w = RandomWord();
    while (used_.count(w) > 0) {
      w += RandomWord().substr(0, 2);
    }
    used_.insert(w);
    return w;
  }

 private:
  Rng* rng_;
  std::unordered_set<std::string> used_;
};

}  // namespace aujoin

#endif  // AUJOIN_DATAGEN_WORDS_H_
