#ifndef AUJOIN_DATAGEN_SYNONYM_GEN_H_
#define AUJOIN_DATAGEN_SYNONYM_GEN_H_

#include <cstdint>

#include "synonym/rule_set.h"
#include "taxonomy/taxonomy.h"
#include "text/vocabulary.h"

namespace aujoin {

/// Parameters of the synthetic synonym dictionary (stands in for MeSH
/// aliases / Wikipedia synonyms). Two rule flavours mirror the real
/// sources: aliases of taxonomy entities ("myocardial infarction" ->
/// "heart attack") and free-standing phrase equivalences / abbreviations
/// ("database management system" -> "dbms").
struct SynonymGenOptions {
  size_t num_rules = 3000;
  /// Fraction of rules whose rhs is a taxonomy entity name.
  double entity_alias_fraction = 0.4;
  /// Maximum tokens per rule side (the paper's k).
  int max_side_tokens = 3;
  /// Closeness C(R) is drawn uniformly from [min_closeness, 1].
  double min_closeness = 0.85;
  uint64_t seed = 2;
};

/// Generates rules; phrases are interned into `vocab`. `taxonomy` may be
/// empty (then all rules are phrase pairs).
RuleSet GenerateSynonyms(const SynonymGenOptions& options,
                         const Taxonomy& taxonomy, Vocabulary* vocab);

}  // namespace aujoin

#endif  // AUJOIN_DATAGEN_SYNONYM_GEN_H_
