#include "datagen/taxonomy_gen.h"

#include <cmath>
#include <vector>

#include "datagen/words.h"
#include "util/rng.h"

namespace aujoin {

Taxonomy GenerateTaxonomy(const TaxonomyGenOptions& options,
                          Vocabulary* vocab) {
  Rng rng(options.seed);
  WordFactory words(&rng);
  Taxonomy taxonomy;

  auto make_name = [&]() {
    std::vector<TokenId> name;
    name.push_back(vocab->Intern(words.UniqueWord()));
    if (rng.UniformReal() < options.two_token_name_prob) {
      name.push_back(vocab->Intern(words.RandomWord()));
    }
    return name;
  };

  auto root = taxonomy.AddRoot(make_name());
  (void)root;

  // Eligible parents with a selection weight favouring depth.
  std::vector<NodeId> eligible{0};
  std::vector<double> weights{1.0};
  while (taxonomy.num_nodes() < options.num_nodes && !eligible.empty()) {
    size_t pick = rng.WeightedPick(weights);
    NodeId parent = eligible[pick];
    auto child = taxonomy.AddNode(parent, make_name());
    NodeId id = child.value();
    if (taxonomy.Depth(id) < options.max_depth) {
      eligible.push_back(id);
      weights.push_back(
          std::pow(static_cast<double>(taxonomy.Depth(id)),
                   options.depth_bias));
    }
  }
  return taxonomy;
}

}  // namespace aujoin
