#ifndef AUJOIN_CORE_SQUAREIMP_H_
#define AUJOIN_CORE_SQUAREIMP_H_

#include <cstdint>
#include <vector>

#include "core/pair_graph.h"

namespace aujoin {

/// Options for the SquareImp weighted-MIS approximation (Berman [10]).
struct SquareImpOptions {
  /// Maximum talon-set size tried during local claw improvements. The
  /// theoretical guarantee needs talons up to the claw bound; sizes 1-2
  /// recover almost all of the quality on the paper's rule lengths while
  /// keeping join verification cheap. Raise to 3 for accuracy studies
  /// (bench_table09 does).
  int max_talons = 2;
  /// Above this vertex count pair talon enumeration is skipped (plain
  /// greedy + singleton swaps), bounding worst-case cost on huge
  /// conflict graphs. Triples are tried only below a quarter of this.
  size_t pair_search_vertex_cap = 512;
  /// Safety bound on improvement rounds.
  int max_iterations = 10000;
};

/// Berman's SquareImp: computes an independent set of the conflict graph
/// whose squared-weight sum is locally maximal under claw improvements.
/// Returns vertex indexes (sorted ascending). For a (k+1)-claw-free graph
/// this approximates the maximum-weight independent set within ~ (k+1)/2.
std::vector<uint32_t> SquareImp(const PairGraph& g,
                                const SquareImpOptions& options = {});

/// Sum of weights of a vertex subset.
double IndependentSetWeight(const PairGraph& g,
                            const std::vector<uint32_t>& set);

/// True if `set` is pairwise non-conflicting in `g` (test helper).
bool IsIndependentSet(const PairGraph& g, const std::vector<uint32_t>& set);

}  // namespace aujoin

#endif  // AUJOIN_CORE_SQUAREIMP_H_
