#include "core/measures.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "kernels/kernels.h"
#include "text/qgram.h"
#include "util/aligned_buffer.h"

namespace aujoin {
namespace {

/// |a ∩ b| of two ascending distinct gram-id sets through the
/// dispatched intersection kernel. The matched ids land in a
/// thread_local aligned scratch reused across every candidate pair the
/// thread verifies — the verify stage allocates nothing per pair.
size_t SortedIdIntersectionSize(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  // The kernel emits (and bounds its output by) the first argument;
  // probing with the smaller side lets it gallop over the larger one.
  // Symmetric for distinct inputs, so the swap cannot change the count.
  const std::vector<uint32_t>& probe = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& base = a.size() <= b.size() ? b : a;
  thread_local AlignedBuffer<uint32_t> scratch;
  if (scratch.size() < probe.size() + kKernelLaneSlack) {
    scratch.Resize(probe.size() + kKernelLaneSlack);
  }
  uint32_t* end =
      ActiveKernel().intersect_sorted(probe.data(), probe.size(), base.data(),
                                      base.size(), scratch.data());
  return static_cast<size_t>(end - scratch.data());
}

// The gram-measure formulas over id sets, with the same empty-input
// conventions as their string-set counterparts in text/qgram.cc.

double JaccardOfIdSets(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIdIntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineOfIdSets(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = SortedIdIntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double DiceOfIdSets(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIdIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace

uint32_t ParseMeasures(const std::string& spec) {
  uint32_t mask = 0;
  for (char c : spec) {
    switch (std::toupper(static_cast<unsigned char>(c))) {
      case 'J':
        mask |= kMeasureJaccard;
        break;
      case 'S':
        mask |= kMeasureSynonym;
        break;
      case 'T':
        mask |= kMeasureTaxonomy;
        break;
      default:
        break;
    }
  }
  return mask == 0 ? kMeasureAll : mask;
}

std::string MeasuresToString(uint32_t measures) {
  std::string out;
  if (measures & kMeasureTaxonomy) out += 'T';
  if (measures & kMeasureJaccard) out += 'J';
  if (measures & kMeasureSynonym) out += 'S';
  return out;
}

const std::vector<uint32_t>& MsimEvaluator::GramIdsFor(const Record& r,
                                                       const Segment& seg) {
  // Key on the record's address (stable for the duration of a join; ids
  // alone may collide across the two input collections).
  uint64_t key = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&r)) ^
                 ((static_cast<uint64_t>(seg.begin) << 48) |
                  (static_cast<uint64_t>(seg.end) << 32));
  auto it = gram_cache_.find(key);
  if (it != gram_cache_.end()) return it->second;
  std::string text = SegmentText(r, seg, *knowledge_.vocab);
  std::vector<std::string> grams = QGrams(text, options_.q);
  std::vector<uint32_t> ids;
  ids.reserve(grams.size());
  for (std::string& gram : grams) {
    auto [pos, inserted] = gram_dict_.try_emplace(
        std::move(gram), static_cast<uint32_t>(gram_dict_.size()));
    ids.push_back(pos->second);
  }
  // QGrams dedupes, so the ids are distinct; sorting makes the set a
  // valid kernel input (ascending).
  std::sort(ids.begin(), ids.end());
  auto [ins, _] = gram_cache_.emplace(key, std::move(ids));
  return ins->second;
}

double MsimEvaluator::Jaccard(const Record& s, const Segment& ps,
                              const Record& t, const Segment& pt) {
  const std::vector<uint32_t>& a = GramIdsFor(s, ps);
  const std::vector<uint32_t>& b = GramIdsFor(t, pt);
  switch (options_.gram_measure) {
    case GramMeasure::kCosine:
      return CosineOfIdSets(a, b);
    case GramMeasure::kDice:
      return DiceOfIdSets(a, b);
    case GramMeasure::kJaccard:
      break;
  }
  return JaccardOfIdSets(a, b);
}

double MsimEvaluator::Synonym(const WellDefinedSegment& ps,
                              const WellDefinedSegment& pt) const {
  if (knowledge_.rules == nullptr) return 0.0;
  double best = 0.0;
  for (const auto& ms : ps.rule_matches) {
    for (const auto& mt : pt.rule_matches) {
      if (ms.rule == mt.rule && ms.side != mt.side) {
        best = std::max(best, knowledge_.rules->rule(ms.rule).closeness);
      }
    }
  }
  return best;
}

double MsimEvaluator::Taxonomy(const WellDefinedSegment& ps,
                               const WellDefinedSegment& pt) const {
  if (knowledge_.taxonomy == nullptr || !ps.HasTaxonomy() ||
      !pt.HasTaxonomy()) {
    return 0.0;
  }
  double best = 0.0;
  for (NodeId a : ps.taxonomy_nodes) {
    for (NodeId b : pt.taxonomy_nodes) {
      best = std::max(best, knowledge_.taxonomy->Similarity(a, b));
    }
  }
  return best;
}

double MsimEvaluator::Msim(const Record& s, const WellDefinedSegment& ps,
                           const Record& t, const WellDefinedSegment& pt) {
  double best = 0.0;
  if (options_.exact_match) {
    TokenSpan a = s.Span(ps.span.begin, ps.span.end);
    TokenSpan b = t.Span(pt.span.begin, pt.span.end);
    if (a.size() == b.size() &&
        std::equal(a.begin(), a.end(), b.begin())) {
      return 1.0;
    }
  }
  if (options_.measures & kMeasureJaccard) {
    best = std::max(best, Jaccard(s, ps.span, t, pt.span));
  }
  if (options_.measures & kMeasureSynonym) {
    best = std::max(best, Synonym(ps, pt));
  }
  if (options_.measures & kMeasureTaxonomy) {
    best = std::max(best, Taxonomy(ps, pt));
  }
  return best;
}

double WholeStringJaccard(const Record& s, const Record& t, int q) {
  return JaccardQGram(s.text, t.text, q);
}

}  // namespace aujoin
