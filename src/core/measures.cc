#include "core/measures.h"

#include <algorithm>
#include <cctype>

#include "text/qgram.h"

namespace aujoin {

uint32_t ParseMeasures(const std::string& spec) {
  uint32_t mask = 0;
  for (char c : spec) {
    switch (std::toupper(static_cast<unsigned char>(c))) {
      case 'J':
        mask |= kMeasureJaccard;
        break;
      case 'S':
        mask |= kMeasureSynonym;
        break;
      case 'T':
        mask |= kMeasureTaxonomy;
        break;
      default:
        break;
    }
  }
  return mask == 0 ? kMeasureAll : mask;
}

std::string MeasuresToString(uint32_t measures) {
  std::string out;
  if (measures & kMeasureTaxonomy) out += 'T';
  if (measures & kMeasureJaccard) out += 'J';
  if (measures & kMeasureSynonym) out += 'S';
  return out;
}

const std::vector<std::string>& MsimEvaluator::GramsFor(const Record& r,
                                                        const Segment& seg) {
  // Key on the record's address (stable for the duration of a join; ids
  // alone may collide across the two input collections).
  uint64_t key = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&r)) ^
                 ((static_cast<uint64_t>(seg.begin) << 48) |
                  (static_cast<uint64_t>(seg.end) << 32));
  auto it = gram_cache_.find(key);
  if (it != gram_cache_.end()) return it->second;
  std::string text = SegmentText(r, seg, *knowledge_.vocab);
  auto [ins, _] = gram_cache_.emplace(key, QGrams(text, options_.q));
  return ins->second;
}

double MsimEvaluator::Jaccard(const Record& s, const Segment& ps,
                              const Record& t, const Segment& pt) {
  const auto& a = GramsFor(s, ps);
  const auto& b = GramsFor(t, pt);
  switch (options_.gram_measure) {
    case GramMeasure::kCosine:
      return CosineOfSortedSets(a, b);
    case GramMeasure::kDice:
      return DiceOfSortedSets(a, b);
    case GramMeasure::kJaccard:
      break;
  }
  return JaccardOfSortedSets(a, b);
}

double MsimEvaluator::Synonym(const WellDefinedSegment& ps,
                              const WellDefinedSegment& pt) const {
  if (knowledge_.rules == nullptr) return 0.0;
  double best = 0.0;
  for (const auto& ms : ps.rule_matches) {
    for (const auto& mt : pt.rule_matches) {
      if (ms.rule == mt.rule && ms.side != mt.side) {
        best = std::max(best, knowledge_.rules->rule(ms.rule).closeness);
      }
    }
  }
  return best;
}

double MsimEvaluator::Taxonomy(const WellDefinedSegment& ps,
                               const WellDefinedSegment& pt) const {
  if (knowledge_.taxonomy == nullptr || !ps.HasTaxonomy() ||
      !pt.HasTaxonomy()) {
    return 0.0;
  }
  double best = 0.0;
  for (NodeId a : ps.taxonomy_nodes) {
    for (NodeId b : pt.taxonomy_nodes) {
      best = std::max(best, knowledge_.taxonomy->Similarity(a, b));
    }
  }
  return best;
}

double MsimEvaluator::Msim(const Record& s, const WellDefinedSegment& ps,
                           const Record& t, const WellDefinedSegment& pt) {
  double best = 0.0;
  if (options_.exact_match) {
    TokenSpan a = s.Span(ps.span.begin, ps.span.end);
    TokenSpan b = t.Span(pt.span.begin, pt.span.end);
    if (a.size() == b.size() &&
        std::equal(a.begin(), a.end(), b.begin())) {
      return 1.0;
    }
  }
  if (options_.measures & kMeasureJaccard) {
    best = std::max(best, Jaccard(s, ps.span, t, pt.span));
  }
  if (options_.measures & kMeasureSynonym) {
    best = std::max(best, Synonym(ps, pt));
  }
  if (options_.measures & kMeasureTaxonomy) {
    best = std::max(best, Taxonomy(ps, pt));
  }
  return best;
}

double WholeStringJaccard(const Record& s, const Record& t, int q) {
  return JaccardQGram(s.text, t.text, q);
}

}  // namespace aujoin
