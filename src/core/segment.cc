#include "core/segment.h"

#include <algorithm>

namespace aujoin {

std::vector<WellDefinedSegment> EnumerateSegments(const Record& record,
                                                  const Knowledge& knowledge) {
  std::vector<WellDefinedSegment> out;
  const uint32_t n = static_cast<uint32_t>(record.num_tokens());
  const uint32_t max_len =
      std::min<uint32_t>(n, static_cast<uint32_t>(knowledge.ClawK()));
  for (uint32_t begin = 0; begin < n; ++begin) {
    for (uint32_t len = 1; len <= max_len && begin + len <= n; ++len) {
      Segment span{begin, begin + len};
      WellDefinedSegment seg;
      seg.span = span;
      TokenSpan tokens = record.Span(span.begin, span.end);
      if (knowledge.rules != nullptr) {
        seg.rule_matches = knowledge.rules->Match(tokens);
      }
      if (knowledge.taxonomy != nullptr && !knowledge.taxonomy->empty()) {
        seg.taxonomy_nodes = knowledge.taxonomy->FindEntity(tokens);
      }
      if (span.SingleToken() || seg.HasSynonym() || seg.HasTaxonomy()) {
        out.push_back(std::move(seg));
      }
    }
  }
  return out;
}

std::string SegmentText(const Record& record, const Segment& seg,
                        const Vocabulary& vocab) {
  return vocab.Render(record.Span(seg.begin, seg.end));
}

}  // namespace aujoin
