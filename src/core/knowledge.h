#ifndef AUJOIN_CORE_KNOWLEDGE_H_
#define AUJOIN_CORE_KNOWLEDGE_H_

#include <algorithm>
#include <cstddef>

#include "synonym/rule_set.h"
#include "taxonomy/taxonomy.h"
#include "text/vocabulary.h"

namespace aujoin {

/// Non-owning bundle of the knowledge sources every similarity computation
/// needs: the shared vocabulary, the synonym rules and the taxonomy.
/// All pointers must outlive the objects this is passed to; any of
/// `rules`/`taxonomy` may point to an empty instance when the corresponding
/// measure is unused.
struct Knowledge {
  const Vocabulary* vocab = nullptr;
  const RuleSet* rules = nullptr;
  const Taxonomy* taxonomy = nullptr;

  /// The claw parameter k of Theorem 2: the maximal number of tokens in any
  /// synonym-rule side or taxonomy entity name (at least 1 for the
  /// single-token segments).
  size_t ClawK() const {
    size_t k = 1;
    if (rules != nullptr) k = std::max(k, rules->max_side_tokens());
    if (taxonomy != nullptr) k = std::max(k, taxonomy->max_name_tokens());
    return k;
  }
};

}  // namespace aujoin

#endif  // AUJOIN_CORE_KNOWLEDGE_H_
