#ifndef AUJOIN_CORE_PAIR_GRAPH_H_
#define AUJOIN_CORE_PAIR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/measures.h"
#include "core/record.h"
#include "core/segment.h"

namespace aujoin {

/// One vertex of the conflict graph G of Section 2.3: a candidate matched
/// pair of well-defined segments (PS of S, PT of T) with weight
/// msim(PS, PT). Indexes refer to the segment lists used to build the
/// graph.
struct PairVertex {
  uint32_t s_segment = 0;  // index into the S segment list
  uint32_t t_segment = 0;  // index into the T segment list
  double weight = 0.0;
};

/// The (k+1)-claw-free conflict graph built from two strings. Vertices are
/// segment pairs; an edge connects two vertices whose segments overlap on
/// the S side or the T side (they cannot be applied simultaneously).
struct PairGraph {
  std::vector<WellDefinedSegment> s_segments;
  std::vector<WellDefinedSegment> t_segments;
  std::vector<PairVertex> vertices;
  /// Adjacency lists over vertex indexes (conflict edges).
  std::vector<std::vector<uint32_t>> adj;
  /// Flat mirrors of vertices[].weight and its square, indexed by
  /// vertex — the arrays the accumulate_weights kernel gathers from in
  /// the SquareImp / claw-improvement sums. BuildPairGraph fills them;
  /// call SyncWeightArrays after mutating vertices by hand (consumers
  /// fall back to vertices[].weight when the mirrors are out of date).
  std::vector<double> weights;
  std::vector<double> weights_sq;
  /// True when vertex enumeration hit the configured cap and some
  /// candidate pairs were dropped (similarity is then a lower bound).
  bool truncated = false;

  size_t num_vertices() const { return vertices.size(); }

  void SyncWeightArrays() {
    weights.resize(vertices.size());
    weights_sq.resize(vertices.size());
    for (size_t v = 0; v < vertices.size(); ++v) {
      weights[v] = vertices[v].weight;
      weights_sq[v] = weights[v] * weights[v];
    }
  }

  bool WeightArraysSynced() const {
    return weights.size() == vertices.size() &&
           weights_sq.size() == vertices.size();
  }

  bool Conflicts(uint32_t a, uint32_t b) const {
    const PairVertex& va = vertices[a];
    const PairVertex& vb = vertices[b];
    return s_segments[va.s_segment].span.Overlaps(
               s_segments[vb.s_segment].span) ||
           t_segments[va.t_segment].span.Overlaps(
               t_segments[vb.t_segment].span);
  }
};

/// Limits for graph construction.
struct PairGraphOptions {
  /// Hard cap on vertex count; beyond it the lowest-weight candidate
  /// vertices are dropped (graphs stay small for typical strings; the cap
  /// guards pathological inputs).
  size_t max_vertices = 4096;
  /// Drop vertices with weight below this (zero-weight pairs can never
  /// contribute to the matching).
  double min_weight = 1e-12;
};

/// Builds the conflict graph of the paper's Section 2.3 construction:
/// a vertex for every segment pair connected by (a) a synonym rule,
/// (b) two taxonomy entities, or (c) both being single tokens; weight
/// msim; edges between conflicting (token-sharing) vertices.
PairGraph BuildPairGraph(const Record& s, const Record& t,
                         MsimEvaluator* evaluator,
                         const PairGraphOptions& options = {});

}  // namespace aujoin

#endif  // AUJOIN_CORE_PAIR_GRAPH_H_
