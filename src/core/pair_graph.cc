#include "core/pair_graph.h"

#include <algorithm>
#include <numeric>

namespace aujoin {

PairGraph BuildPairGraph(const Record& s, const Record& t,
                         MsimEvaluator* evaluator,
                         const PairGraphOptions& options) {
  PairGraph g;
  const Knowledge& knowledge = evaluator->knowledge();
  g.s_segments = EnumerateSegments(s, knowledge);
  g.t_segments = EnumerateSegments(t, knowledge);
  const uint32_t measures = evaluator->options().measures;

  for (uint32_t i = 0; i < g.s_segments.size(); ++i) {
    const auto& ps = g.s_segments[i];
    for (uint32_t j = 0; j < g.t_segments.size(); ++j) {
      const auto& pt = g.t_segments[j];
      // Construction step (i): the pair must be connected by a synonym
      // rule, by two taxonomy entities, or consist of two single tokens.
      bool synonym_pair = (measures & kMeasureSynonym) &&
                          evaluator->Synonym(ps, pt) > 0.0;
      bool taxonomy_pair = (measures & kMeasureTaxonomy) && ps.HasTaxonomy() &&
                           pt.HasTaxonomy();
      bool singleton_pair = ps.span.SingleToken() && pt.span.SingleToken();
      if (!synonym_pair && !taxonomy_pair && !singleton_pair) continue;
      double w = evaluator->Msim(s, ps, t, pt);
      if (w < options.min_weight) continue;
      g.vertices.push_back(PairVertex{i, j, w});
    }
  }

  // Enforce the vertex cap by keeping the heaviest candidates.
  if (g.vertices.size() > options.max_vertices) {
    g.truncated = true;
    std::nth_element(g.vertices.begin(),
                     g.vertices.begin() + options.max_vertices,
                     g.vertices.end(),
                     [](const PairVertex& a, const PairVertex& b) {
                       return a.weight > b.weight;
                     });
    g.vertices.resize(options.max_vertices);
  }

  // Flat weight mirrors for the accumulate_weights kernel (after the
  // cap, so they index the surviving vertices).
  g.SyncWeightArrays();

  g.adj.resize(g.vertices.size());
  for (uint32_t a = 0; a < g.vertices.size(); ++a) {
    for (uint32_t b = a + 1; b < g.vertices.size(); ++b) {
      if (g.Conflicts(a, b)) {
        g.adj[a].push_back(b);
        g.adj[b].push_back(a);
      }
    }
  }
  return g;
}

}  // namespace aujoin
