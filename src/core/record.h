#ifndef AUJOIN_CORE_RECORD_H_
#define AUJOIN_CORE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace aujoin {

/// One string of a join collection: the raw text plus its interned token
/// sequence. Records are value types; collections are std::vector<Record>.
struct Record {
  uint32_t id = 0;
  std::string text;
  std::vector<TokenId> tokens;

  size_t num_tokens() const { return tokens.size(); }

  TokenSpan Span(uint32_t begin, uint32_t end) const {
    return TokenSpan(tokens.data() + begin, end - begin);
  }
};

/// Tokenises `text` and builds a Record.
inline Record MakeRecord(uint32_t id, std::string_view text, Vocabulary* vocab,
                         const TokenizerOptions& options = {}) {
  Record r;
  r.id = id;
  r.text = std::string(text);
  r.tokens = Tokenize(text, vocab, options);
  return r;
}

/// Builds a whole collection from raw lines.
inline std::vector<Record> MakeRecords(const std::vector<std::string>& lines,
                                       Vocabulary* vocab,
                                       const TokenizerOptions& options = {}) {
  std::vector<Record> out;
  out.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    out.push_back(MakeRecord(static_cast<uint32_t>(i), lines[i], vocab,
                             options));
  }
  return out;
}

}  // namespace aujoin

#endif  // AUJOIN_CORE_RECORD_H_
