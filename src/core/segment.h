#ifndef AUJOIN_CORE_SEGMENT_H_
#define AUJOIN_CORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/knowledge.h"
#include "core/record.h"

namespace aujoin {

/// Half-open token span [begin, end) within one record.
struct Segment {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool SingleToken() const { return size() == 1; }

  /// True when the two spans share at least one token position.
  bool Overlaps(const Segment& other) const {
    return begin < other.end && other.begin < end;
  }

  friend bool operator==(const Segment& a, const Segment& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// A well-defined segment (Definition 1) of a record together with its
/// semantic matches: the synonym rules one of whose sides equals the span,
/// and the taxonomy entities whose name equals the span. A span qualifies
/// if it has any rule match, any taxonomy match, or is a single token.
struct WellDefinedSegment {
  Segment span;
  std::vector<RuleMatch> rule_matches;
  std::vector<NodeId> taxonomy_nodes;

  bool HasSynonym() const { return !rule_matches.empty(); }
  bool HasTaxonomy() const { return !taxonomy_nodes.empty(); }
};

/// Enumerates every well-defined segment of `record` (Definition 1):
/// all single-token spans plus every multi-token span matching a synonym
/// rule side or a taxonomy entity name. Spans longer than
/// knowledge.ClawK() cannot match anything and are not probed, so the
/// enumeration is O(n * k) hash lookups. Results are sorted by
/// (begin, end).
std::vector<WellDefinedSegment> EnumerateSegments(const Record& record,
                                                  const Knowledge& knowledge);

/// Renders the surface text of a segment (tokens joined by one space).
std::string SegmentText(const Record& record, const Segment& seg,
                        const Vocabulary& vocab);

}  // namespace aujoin

#endif  // AUJOIN_CORE_SEGMENT_H_
