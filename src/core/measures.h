#ifndef AUJOIN_CORE_MEASURES_H_
#define AUJOIN_CORE_MEASURES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/knowledge.h"
#include "core/record.h"
#include "core/segment.h"

namespace aujoin {

/// Bitmask of enabled similarity measures. The paper's combinations
/// J, T, S, TJ, TS, JS, TJS are subsets of these bits.
enum MeasureMask : uint32_t {
  kMeasureJaccard = 1u << 0,
  kMeasureSynonym = 1u << 1,
  kMeasureTaxonomy = 1u << 2,
  kMeasureAll = kMeasureJaccard | kMeasureSynonym | kMeasureTaxonomy,
  /// Internal provenance bit for exact-span pebbles (not user-selectable;
  /// controlled by MsimOptions::exact_match).
  kMeasureExactBit = 1u << 3,
};

/// Parses a measure-combination string such as "J", "TS", "TJS"
/// (case-insensitive, any order). Unknown letters are ignored; an empty
/// result falls back to kMeasureAll.
uint32_t ParseMeasures(const std::string& spec);

/// Renders a mask back to canonical "TJS" ordering.
std::string MeasuresToString(uint32_t measures);

/// Which gram-based coefficient the typographic measure uses. The paper's
/// framework is defined with Jaccard (Eq. 1) but lists Cosine and Dice as
/// interchangeable gram measures (Sec. 2.1); the pebble decomposition
/// stays a valid upper bound with per-gram weight 1/|G| (Jaccard, Dice)
/// or 1/sqrt(|G|) (Cosine).
enum class GramMeasure {
  kJaccard,
  kCosine,
  kDice,
};

/// Options shared by all unified-similarity computations.
struct MsimOptions {
  /// q-gram length for the Jaccard measure (Eq. 1).
  int q = 2;
  /// Gram coefficient used by the typographic measure.
  GramMeasure gram_measure = GramMeasure::kJaccard;
  /// Enabled measures.
  uint32_t measures = kMeasureAll;
  /// Score identical token spans as 1.0 regardless of the enabled
  /// measures (consistent with Jaccard and taxonomy on identical inputs,
  /// and with how the paper's single-measure baselines count exact
  /// matches). Also emits one exact-span pebble per segment, which adds a
  /// highly selective signature key.
  bool exact_match = true;
};

/// Evaluates per-segment-pair similarities (the msim of Eq. 4 restricted to
/// a segment pair). Segment surface text is cut into q-grams once, the
/// grams interned to dense uint32 ids through a per-evaluator dictionary,
/// and the sorted id sets cached — so the hot O(|ps|·|pt|) overlap loop of
/// a join runs the dispatched sorted-set-intersection kernel
/// (kernels/kernels.h) over flat integer arrays instead of comparing
/// strings. Not thread-safe; create one per thread.
class MsimEvaluator {
 public:
  MsimEvaluator(const Knowledge& knowledge, const MsimOptions& options)
      : knowledge_(knowledge), options_(options) {}

  /// Gram similarity between the surface texts of two segments, under
  /// options().gram_measure (Jaccard by default).
  double Jaccard(const Record& s, const Segment& ps, const Record& t,
                 const Segment& pt);

  /// Synonym similarity: max closeness over rules R with one side equal to
  /// ps's span and the other equal to pt's span (Eq. 2, applied
  /// symmetrically); 0 if no rule connects them.
  double Synonym(const WellDefinedSegment& ps,
                 const WellDefinedSegment& pt) const;

  /// Taxonomy similarity: max over entity pairs of Eq. 3; 0 when either
  /// side matches no entity.
  double Taxonomy(const WellDefinedSegment& ps,
                  const WellDefinedSegment& pt) const;

  /// msim (Eq. 4): the maximum enabled measure applicable to the pair.
  double Msim(const Record& s, const WellDefinedSegment& ps, const Record& t,
              const WellDefinedSegment& pt);

  const MsimOptions& options() const { return options_; }
  const Knowledge& knowledge() const { return knowledge_; }

  /// Clears the q-gram cache and the gram-id dictionary together (call
  /// between unrelated record collections to bound memory — cached id
  /// sets are only meaningful against the dictionary they were interned
  /// through).
  void ClearCache() {
    gram_cache_.clear();
    gram_dict_.clear();
  }

  /// Number of cached gram sets; joins evict when this grows too large.
  size_t CacheSize() const { return gram_cache_.size(); }

 private:
  const std::vector<uint32_t>& GramIdsFor(const Record& r, const Segment& seg);

  Knowledge knowledge_;
  MsimOptions options_;
  // Keyed by (record id, begin, end) packed into 64 bits; values are
  // ascending distinct gram ids from gram_dict_.
  std::unordered_map<uint64_t, std::vector<uint32_t>> gram_cache_;
  // Interns gram surface strings to dense ids (first-seen order; the
  // intersection only needs a consistent total order, which sorting
  // the ids provides).
  std::unordered_map<std::string, uint32_t> gram_dict_;
};

/// Whole-string similarity under a single measure, treating each full
/// string as one segment (used by Eq. 4's introductory example and by
/// tests).
double WholeStringJaccard(const Record& s, const Record& t, int q);

}  // namespace aujoin

#endif  // AUJOIN_CORE_MEASURES_H_
