#include "core/hungarian.h"

#include <algorithm>
#include <limits>

namespace aujoin {

// Classic O(n^3) Hungarian algorithm with potentials, written for
// minimisation on a square cost matrix; we feed it costs = -weights on the
// zero-padded square and negate the result. Follows the e-maxx/JV
// formulation with 1-based auxiliary arrays.
double MaxWeightBipartiteMatching(const double* w, size_t rows, size_t cols,
                                  std::vector<int>* assignment) {
  if (assignment != nullptr) assignment->assign(rows, -1);
  if (rows == 0 || cols == 0) return 0.0;

  const size_t n = std::max(rows, cols);
  const double kInf = std::numeric_limits<double>::infinity();

  // cost[i][j] = -w for real cells, 0 for padding.
  auto cost = [&](size_t i, size_t j) -> double {
    if (i < rows && j < cols) return -w[i * cols + j];
    return 0.0;
  };

  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);     // p[j] = row matched to column j
  std::vector<size_t> way(n + 1, 0);   // alternating-path back-pointers

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  double total = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i >= 1 && i <= rows && j <= cols && w[(i - 1) * cols + (j - 1)] > 0.0) {
      total += w[(i - 1) * cols + (j - 1)];
      if (assignment != nullptr) {
        (*assignment)[i - 1] = static_cast<int>(j - 1);
      }
    }
  }
  return total;
}

double MaxWeightBipartiteMatching(const std::vector<std::vector<double>>& w,
                                  std::vector<int>* assignment) {
  const size_t rows = w.size();
  const size_t cols = rows == 0 ? 0 : w[0].size();
  if (rows == 0 || cols == 0) {
    if (assignment != nullptr) assignment->assign(rows, -1);
    return 0.0;
  }
  std::vector<double> flat(rows * cols);
  for (size_t i = 0; i < rows; ++i) {
    std::copy(w[i].begin(), w[i].end(), flat.begin() + i * cols);
  }
  return MaxWeightBipartiteMatching(flat.data(), rows, cols, assignment);
}

}  // namespace aujoin
