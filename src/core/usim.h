#ifndef AUJOIN_CORE_USIM_H_
#define AUJOIN_CORE_USIM_H_

#include <cstdint>
#include <vector>

#include "core/measures.h"
#include "core/pair_graph.h"
#include "core/squareimp.h"

namespace aujoin {

/// Options for the unified-similarity computations.
struct UsimOptions {
  MsimOptions msim;
  /// The t > 1 knob of Algorithm 1 / Theorem 2: improvements smaller than
  /// 1/t are not pursued, bounding the improvement phase to floor(t)
  /// iterations.
  double t = 10.0;
  /// How many candidate claws are evaluated with the exact GetSim per
  /// improvement round (ranked by matching-weight gain first).
  int improve_eval_budget = 16;
  /// Pair-talon moves are only enumerated on graphs at most this large.
  size_t pair_move_vertex_cap = 96;
  /// Ablation switch: disable the claw-improvement phase (plain SquareImp).
  bool enable_improvement = true;
  PairGraphOptions graph;
  SquareImpOptions squareimp;
};

/// Limits for the exponential exact algorithm (tests & Table 9 only).
struct ExactOptions {
  /// Cap on enumerated well-defined partitions per string.
  size_t max_partitions_per_string = 512;
  /// Cap on partition pairs scored with the Hungarian algorithm.
  size_t max_pairs = 250000;
};

/// Computes the unified similarity USIM (Definition 3) between two strings:
/// `Approx` is the paper's Algorithm 1 (SquareImp + claw improvement),
/// `Exact` enumerates all well-defined partition pairs (worst-case
/// exponential; NP-hard in general, Theorem 1).
///
/// Not thread-safe (shares an MsimEvaluator cache); use one per thread.
class UsimComputer {
 public:
  explicit UsimComputer(const Knowledge& knowledge, UsimOptions options = {})
      : options_(options), evaluator_(knowledge, options.msim) {}

  /// Algorithm 1. Returns a lower bound on USIM(s, t) with the Theorem 2
  /// guarantee. If `early_exit_threshold` is reached the computation stops
  /// immediately (join verification only needs the >= theta predicate);
  /// the default never triggers.
  double Approx(const Record& s, const Record& t,
                double early_exit_threshold = 2.0);

  struct ExactResult {
    double value = 0.0;
    /// False when a partition/pair cap was hit (value is then a lower
    /// bound).
    bool exact = true;
  };

  /// Exhaustive USIM by partition-pair enumeration.
  ExactResult Exact(const Record& s, const Record& t,
                    const ExactOptions& limits = {});

  /// SIM(PS, PT) of Eq. (6) for the partitions induced by an independent
  /// set `mis` of `g`: segments of the selected vertices plus singleton
  /// segments for uncovered tokens; scored by Hungarian matching over msim
  /// and normalised by max(|PS|, |PT|). Exposed for tests and benches.
  double GetSim(const Record& s, const Record& t, const PairGraph& g,
                const std::vector<uint32_t>& mis);

  MsimEvaluator* evaluator() { return &evaluator_; }
  const UsimOptions& options() const { return options_; }

 private:
  double SimOfPartitions(const Record& s, const Record& t,
                         const std::vector<WellDefinedSegment>& s_segments,
                         const std::vector<WellDefinedSegment>& t_segments,
                         const std::vector<uint32_t>& ps,
                         const std::vector<uint32_t>& pt);

  UsimOptions options_;
  MsimEvaluator evaluator_;
  /// Reused flat row-major msim matrix for SimOfPartitions — one
  /// grow-only buffer per computer (== per verify worker) instead of a
  /// fresh vector-of-vectors per candidate pair.
  std::vector<double> w_scratch_;
};

/// Enumerates well-defined partitions (Definition 2) of a token sequence of
/// length `num_tokens` as lists of indexes into `segments` (which must be
/// the EnumerateSegments output, sorted by (begin, end)). Stops after `cap`
/// partitions and sets *truncated. Every token sequence has at least the
/// all-singletons partition.
std::vector<std::vector<uint32_t>> EnumeratePartitions(
    const std::vector<WellDefinedSegment>& segments, size_t num_tokens,
    size_t cap, bool* truncated);

}  // namespace aujoin

#endif  // AUJOIN_CORE_USIM_H_
