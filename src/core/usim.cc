#include "core/usim.h"

#include <algorithm>
#include <cmath>

#include "core/hungarian.h"
#include "kernels/kernels.h"

namespace aujoin {

namespace {

// Builds the partition induced by an independent set on one side:
// the spans of selected vertices plus singletons for uncovered tokens.
// Returns indexes into `segments`. `singleton_at[pos]` maps a token
// position to its singleton segment index.
std::vector<uint32_t> InducedPartition(
    const std::vector<WellDefinedSegment>& segments, size_t num_tokens,
    const std::vector<uint32_t>& selected_segments) {
  std::vector<uint32_t> singleton_at(num_tokens, UINT32_MAX);
  for (uint32_t i = 0; i < segments.size(); ++i) {
    if (segments[i].span.SingleToken()) {
      singleton_at[segments[i].span.begin] = i;
    }
  }
  std::vector<char> covered(num_tokens, 0);
  std::vector<uint32_t> partition;
  for (uint32_t seg_idx : selected_segments) {
    partition.push_back(seg_idx);
    for (uint32_t p = segments[seg_idx].span.begin;
         p < segments[seg_idx].span.end; ++p) {
      covered[p] = 1;
    }
  }
  for (size_t p = 0; p < num_tokens; ++p) {
    if (!covered[p]) partition.push_back(singleton_at[p]);
  }
  return partition;
}

}  // namespace

double UsimComputer::SimOfPartitions(
    const Record& s, const Record& t,
    const std::vector<WellDefinedSegment>& s_segments,
    const std::vector<WellDefinedSegment>& t_segments,
    const std::vector<uint32_t>& ps, const std::vector<uint32_t>& pt) {
  if (ps.empty() || pt.empty()) return 0.0;
  // The O(|ps|·|pt|) msim matrix lands in the computer's reused flat
  // scratch (row-major) and feeds the flat Hungarian overload — no
  // per-pair matrix allocation on the verify hot path.
  if (w_scratch_.size() < ps.size() * pt.size()) {
    w_scratch_.resize(ps.size() * pt.size());
  }
  for (size_t i = 0; i < ps.size(); ++i) {
    for (size_t j = 0; j < pt.size(); ++j) {
      w_scratch_[i * pt.size() + j] =
          evaluator_.Msim(s, s_segments[ps[i]], t, t_segments[pt[j]]);
    }
  }
  double matching =
      MaxWeightBipartiteMatching(w_scratch_.data(), ps.size(), pt.size());
  return matching / static_cast<double>(std::max(ps.size(), pt.size()));
}

double UsimComputer::GetSim(const Record& s, const Record& t,
                            const PairGraph& g,
                            const std::vector<uint32_t>& mis) {
  std::vector<uint32_t> s_selected, t_selected;
  for (uint32_t v : mis) {
    s_selected.push_back(g.vertices[v].s_segment);
    t_selected.push_back(g.vertices[v].t_segment);
  }
  std::vector<uint32_t> ps =
      InducedPartition(g.s_segments, s.num_tokens(), s_selected);
  std::vector<uint32_t> pt =
      InducedPartition(g.t_segments, t.num_tokens(), t_selected);
  return SimOfPartitions(s, t, g.s_segments, g.t_segments, ps, pt);
}

double UsimComputer::Approx(const Record& s, const Record& t,
                            double early_exit_threshold) {
  if (s.tokens.empty() || t.tokens.empty()) return 0.0;
  PairGraph g = BuildPairGraph(s, t, &evaluator_, options_.graph);
  std::vector<uint32_t> a = SquareImp(g, options_.squareimp);
  double best = GetSim(s, t, g, a);
  if (!options_.enable_improvement || best >= early_exit_threshold) {
    return best;
  }

  const double min_gain = 1.0 / std::max(options_.t, 1.0 + 1e-9);
  const int max_rounds = static_cast<int>(std::floor(options_.t));
  const size_t n = g.num_vertices();

  std::vector<char> in_set(n, 0);
  for (uint32_t v : a) in_set[v] = 1;

  for (int round = 0; round < max_rounds; ++round) {
    // Rank candidate talon sets by their raw matching-weight gain, then
    // evaluate the top few with the exact GetSim.
    struct Move {
      std::vector<uint32_t> talons;
      double weight_gain;
    };
    std::vector<Move> moves;
    // Gains and losses gather from the graph's flat weight mirror
    // through the dispatched accumulate_weights kernel (the ranking
    // heuristic only — acceptance still goes through the exact GetSim).
    auto weight_delta = [&](const std::vector<uint32_t>& talons) {
      std::vector<uint32_t> removed;
      auto mark_removed = [&](uint32_t v) {
        if (in_set[v] &&
            std::find(removed.begin(), removed.end(), v) == removed.end()) {
          removed.push_back(v);
        }
      };
      for (uint32_t u : talons) {
        mark_removed(u);
        for (uint32_t v : g.adj[u]) mark_removed(v);
      }
      const KernelOps& kernel = ActiveKernel();
      return kernel.accumulate_weights(g.weights.data(), talons.data(),
                                       talons.size()) -
             kernel.accumulate_weights(g.weights.data(), removed.data(),
                                       removed.size());
    };
    for (uint32_t u = 0; u < n; ++u) {
      if (in_set[u]) continue;
      moves.push_back(Move{{u}, weight_delta({u})});
    }
    // Pair talons are only worth ranking on small graphs.
    if (n <= options_.pair_move_vertex_cap) {
      for (uint32_t u = 0; u < n; ++u) {
        if (in_set[u]) continue;
        for (uint32_t v = u + 1; v < n; ++v) {
          if (in_set[v]) continue;
          const auto& adj = g.adj[u];
          if (std::find(adj.begin(), adj.end(), v) != adj.end()) continue;
          moves.push_back(Move{{u, v}, weight_delta({u, v})});
        }
      }
    }
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) {
                       return x.weight_gain > y.weight_gain;
                     });
    size_t budget = std::min<size_t>(
        moves.size(), static_cast<size_t>(options_.improve_eval_budget));

    double best_candidate = best;
    std::vector<uint32_t> best_set;
    for (size_t m = 0; m < budget; ++m) {
      // Construct A' = A ∪ talons \ N(talons, A).
      std::vector<char> next = in_set;
      for (uint32_t u : moves[m].talons) {
        for (uint32_t v : g.adj[u]) next[v] = 0;
      }
      for (uint32_t u : moves[m].talons) next[u] = 1;
      std::vector<uint32_t> candidate;
      for (uint32_t v = 0; v < n; ++v) {
        if (next[v]) candidate.push_back(v);
      }
      double sim = GetSim(s, t, g, candidate);
      if (sim > best_candidate) {
        best_candidate = sim;
        best_set = std::move(candidate);
      }
    }
    if (best_candidate >= best + min_gain) {
      best = best_candidate;
      std::fill(in_set.begin(), in_set.end(), 0);
      for (uint32_t v : best_set) in_set[v] = 1;
      if (best >= early_exit_threshold) return best;
    } else {
      break;
    }
  }
  return best;
}

std::vector<std::vector<uint32_t>> EnumeratePartitions(
    const std::vector<WellDefinedSegment>& segments, size_t num_tokens,
    size_t cap, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::vector<std::vector<uint32_t>> result;
  if (num_tokens == 0) return result;

  // Bucket segment indexes by begin position.
  std::vector<std::vector<uint32_t>> by_begin(num_tokens);
  for (uint32_t i = 0; i < segments.size(); ++i) {
    by_begin[segments[i].span.begin].push_back(i);
  }

  std::vector<uint32_t> current;
  // Iterative DFS would be noisier; recursion depth <= num_tokens.
  struct Dfs {
    const std::vector<WellDefinedSegment>& segments;
    const std::vector<std::vector<uint32_t>>& by_begin;
    size_t num_tokens;
    size_t cap;
    bool* truncated;
    std::vector<std::vector<uint32_t>>& result;
    std::vector<uint32_t>& current;

    void Run(uint32_t pos) {
      if (result.size() >= cap) {
        if (truncated != nullptr) *truncated = true;
        return;
      }
      if (pos == num_tokens) {
        result.push_back(current);
        return;
      }
      for (uint32_t seg_idx : by_begin[pos]) {
        // The entry check of the recursive call marks truncation when the
        // cap has been reached (every reachable call yields a partition).
        current.push_back(seg_idx);
        Run(segments[seg_idx].span.end);
        current.pop_back();
      }
    }
  } dfs{segments, by_begin, num_tokens, cap, truncated, result, current};
  dfs.Run(0);
  return result;
}

UsimComputer::ExactResult UsimComputer::Exact(const Record& s, const Record& t,
                                              const ExactOptions& limits) {
  ExactResult res;
  if (s.tokens.empty() || t.tokens.empty()) return res;
  const Knowledge& knowledge = evaluator_.knowledge();
  std::vector<WellDefinedSegment> s_segments = EnumerateSegments(s, knowledge);
  std::vector<WellDefinedSegment> t_segments = EnumerateSegments(t, knowledge);

  bool trunc_s = false, trunc_t = false;
  auto ps_all = EnumeratePartitions(s_segments, s.num_tokens(),
                                    limits.max_partitions_per_string,
                                    &trunc_s);
  auto pt_all = EnumeratePartitions(t_segments, t.num_tokens(),
                                    limits.max_partitions_per_string,
                                    &trunc_t);
  res.exact = !(trunc_s || trunc_t);

  size_t pairs = 0;
  for (const auto& ps : ps_all) {
    for (const auto& pt : pt_all) {
      if (++pairs > limits.max_pairs) {
        res.exact = false;
        return res;
      }
      double sim = SimOfPartitions(s, t, s_segments, t_segments, ps, pt);
      res.value = std::max(res.value, sim);
    }
  }
  return res;
}

}  // namespace aujoin
