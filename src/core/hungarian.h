#ifndef AUJOIN_CORE_HUNGARIAN_H_
#define AUJOIN_CORE_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace aujoin {

/// Maximum-weight bipartite matching (assignment) for a rectangular
/// non-negative weight matrix `w` (w[i][j] = weight of matching left i with
/// right j). Unmatched vertices are allowed and contribute 0, so with
/// non-negative weights the result equals the classic Hungarian optimum on
/// the zero-padded square matrix. Runs in O(n^3) for n = max(rows, cols).
///
/// This solves the numerator of Eq. (6): max sum of I_ij * msim(PS_i, PT_j)
/// with each segment matched at most once.
///
/// If `assignment` is non-null it receives, per left row, the matched right
/// column or -1 (only pairs with positive weight are reported as matched).
double MaxWeightBipartiteMatching(const std::vector<std::vector<double>>& w,
                                  std::vector<int>* assignment = nullptr);

/// The same matching over a flat row-major matrix (`w[i * cols + j]`) —
/// the allocation-free form the verify hot path feeds from a reused
/// scratch buffer instead of a fresh vector-of-vectors per candidate
/// pair. Identical results to the 2-D overload.
double MaxWeightBipartiteMatching(const double* w, size_t rows, size_t cols,
                                  std::vector<int>* assignment = nullptr);

}  // namespace aujoin

#endif  // AUJOIN_CORE_HUNGARIAN_H_
