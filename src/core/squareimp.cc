#include "core/squareimp.h"

#include <algorithm>
#include <numeric>

#include "kernels/kernels.h"

namespace aujoin {

namespace {

// State for the local-search: membership flags plus the invariant helpers.
struct LocalSearch {
  const PairGraph& g;
  const SquareImpOptions& opts;
  std::vector<char> in_set;
  // Squared weights indexed by vertex, gathered through the dispatched
  // accumulate_weights kernel. BuildPairGraph keeps the graph's own
  // mirror in sync; hand-built graphs (tests) get a local copy.
  std::vector<double> local_sq;
  const double* wsq;

  explicit LocalSearch(const PairGraph& graph, const SquareImpOptions& o)
      : g(graph), opts(o), in_set(graph.num_vertices(), 0) {
    if (g.WeightArraysSynced()) {
      wsq = g.weights_sq.data();
    } else {
      local_sq.resize(g.num_vertices());
      for (size_t v = 0; v < g.num_vertices(); ++v) {
        local_sq[v] = g.vertices[v].weight * g.vertices[v].weight;
      }
      wsq = local_sq.data();
    }
  }

  // Sum of squared weights of set members adjacent to (or equal to) any
  // talon in `talons` — the N(T, A) of Berman's improvement condition.
  double SquaredWeightOfNeighbourhood(const std::vector<uint32_t>& talons,
                                      std::vector<uint32_t>* removed) const {
    removed->clear();
    auto consider = [&](uint32_t v) {
      if (!in_set[v]) return;
      if (std::find(removed->begin(), removed->end(), v) != removed->end()) {
        return;
      }
      removed->push_back(v);
    };
    for (uint32_t u : talons) {
      consider(u);
      for (uint32_t v : g.adj[u]) consider(v);
    }
    return ActiveKernel().accumulate_weights(wsq, removed->data(),
                                             removed->size());
  }

  double SquaredWeight(const std::vector<uint32_t>& vs) const {
    return ActiveKernel().accumulate_weights(wsq, vs.data(), vs.size());
  }

  // Applies T <- A ∪ talons \ N(talons, A).
  void Apply(const std::vector<uint32_t>& talons,
             const std::vector<uint32_t>& removed) {
    for (uint32_t v : removed) in_set[v] = 0;
    for (uint32_t u : talons) in_set[u] = 1;
  }

  bool Independent(uint32_t a, uint32_t b) const {
    // Adjacency lists are built in ascending order by construction.
    const auto& adj = g.adj[a];
    return !std::binary_search(adj.begin(), adj.end(), b);
  }
};

}  // namespace

std::vector<uint32_t> SquareImp(const PairGraph& g,
                                const SquareImpOptions& options) {
  const size_t n = g.num_vertices();
  LocalSearch ls(g, options);

  // Greedy seed: heaviest-first maximal independent set.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.vertices[a].weight > g.vertices[b].weight;
  });
  for (uint32_t v : order) {
    bool blocked = false;
    for (uint32_t u : g.adj[v]) {
      if (ls.in_set[u]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) ls.in_set[v] = 1;
  }

  // Claw improvements on the squared-weight objective.
  const bool allow_pairs =
      options.max_talons >= 2 && n <= options.pair_search_vertex_cap;
  const bool allow_triples =
      options.max_talons >= 3 && n <= options.pair_search_vertex_cap / 4;
  std::vector<uint32_t> removed;
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < options.max_iterations) {
    improved = false;
    // Singleton talons.
    for (uint32_t u = 0; u < n && !improved; ++u) {
      if (ls.in_set[u]) continue;
      std::vector<uint32_t> talons{u};
      double gain = ls.SquaredWeight(talons);
      double loss = ls.SquaredWeightOfNeighbourhood(talons, &removed);
      if (gain > loss + 1e-15) {
        ls.Apply(talons, removed);
        improved = true;
      }
    }
    if (improved) continue;
    // Pair talons: u, v independent, both outside A.
    if (allow_pairs) {
      for (uint32_t u = 0; u < n && !improved; ++u) {
        if (ls.in_set[u]) continue;
        for (uint32_t v = u + 1; v < n && !improved; ++v) {
          if (ls.in_set[v] || !ls.Independent(u, v)) continue;
          std::vector<uint32_t> talons{u, v};
          double gain = ls.SquaredWeight(talons);
          double loss = ls.SquaredWeightOfNeighbourhood(talons, &removed);
          if (gain > loss + 1e-15) {
            ls.Apply(talons, removed);
            improved = true;
          }
        }
      }
    }
    if (improved || !allow_triples) continue;
    // Triple talons, restricted to mutually independent triples drawn from
    // the two-hop neighbourhood of u to keep enumeration bounded.
    for (uint32_t u = 0; u < n && !improved; ++u) {
      if (ls.in_set[u]) continue;
      for (uint32_t v = u + 1; v < n && !improved; ++v) {
        if (ls.in_set[v] || !ls.Independent(u, v)) continue;
        for (uint32_t w = v + 1; w < n && !improved; ++w) {
          if (ls.in_set[w] || !ls.Independent(u, w) || !ls.Independent(v, w)) {
            continue;
          }
          std::vector<uint32_t> talons{u, v, w};
          double gain = ls.SquaredWeight(talons);
          double loss = ls.SquaredWeightOfNeighbourhood(talons, &removed);
          if (gain > loss + 1e-15) {
            ls.Apply(talons, removed);
            improved = true;
          }
        }
      }
    }
  }

  std::vector<uint32_t> result;
  for (uint32_t v = 0; v < n; ++v) {
    if (ls.in_set[v]) result.push_back(v);
  }
  return result;
}

double IndependentSetWeight(const PairGraph& g,
                            const std::vector<uint32_t>& set) {
  if (g.WeightArraysSynced()) {
    return ActiveKernel().accumulate_weights(g.weights.data(), set.data(),
                                             set.size());
  }
  double sum = 0.0;
  for (uint32_t v : set) sum += g.vertices[v].weight;
  return sum;
}

bool IsIndependentSet(const PairGraph& g, const std::vector<uint32_t>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (g.Conflicts(set[i], set[j])) return false;
    }
  }
  return true;
}

}  // namespace aujoin
