#include "shard/shard_plan.h"

#include "util/hash.h"

namespace aujoin {

const char* ShardByName(ShardBy shard_by) {
  return shard_by == ShardBy::kHash ? "hash" : "range";
}

bool ParseShardBy(const std::string& name, ShardBy* out) {
  if (name == "range") {
    *out = ShardBy::kRange;
    return true;
  }
  if (name == "hash") {
    *out = ShardBy::kHash;
    return true;
  }
  return false;
}

ShardPlan ShardPlan::Make(size_t num_records, size_t num_shards,
                          ShardBy shard_by) {
  ShardPlan plan;
  plan.shard_by = shard_by;
  plan.num_records = num_records;
  if (num_shards == 0) num_shards = 1;
  plan.shard_ids.resize(num_shards);
  if (shard_by == ShardBy::kRange) {
    plan.contiguous = true;
    // Balanced contiguous split, same arithmetic as PartitionPlan: the
    // first (num_records % num_shards) shards get one extra record.
    size_t base = num_records / num_shards;
    size_t extra = num_records % num_shards;
    uint32_t next = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      size_t count = base + (s < extra ? 1 : 0);
      plan.shard_ids[s].reserve(count);
      for (size_t i = 0; i < count; ++i) {
        plan.shard_ids[s].push_back(next++);
      }
    }
  } else {
    plan.contiguous = num_shards <= 1;
    for (uint32_t id = 0; id < num_records; ++id) {
      size_t s = static_cast<size_t>(SplitMix64(id) % num_shards);
      plan.shard_ids[s].push_back(id);  // ascending by construction
    }
  }
  return plan;
}

ShardPlan ShardPlan::FromPartitions(const PartitionPlan& partitions,
                                    size_t num_records) {
  ShardPlan plan;
  plan.shard_by = ShardBy::kRange;
  plan.contiguous = true;
  plan.num_records = num_records;
  plan.shard_ids.reserve(partitions.num_partitions());
  for (const Partition& part : partitions.partitions) {
    std::vector<uint32_t> ids;
    ids.reserve(part.size());
    for (uint32_t i = part.begin; i < part.end; ++i) ids.push_back(i);
    plan.shard_ids.push_back(std::move(ids));
  }
  return plan;
}

}  // namespace aujoin
