/// \file
/// ShardedIndex — scatter-gather serving over first-class shards. The
/// collection is split by a ShardPlan; each shard owns its record
/// slice (ids renumbered locally) and an immutable PreparedIndex over
/// it, built lazily on first probe or mounted lazily from its own
/// snapshot file. A query scatters to every shard's UnifiedSearcher
/// and the per-shard ranked lists are merged under the serving order
/// (similarity desc, global id asc) — byte-identical to one monolithic
/// searcher over the whole collection, because the signature filter is
/// lossless per record pair and similarity is intrinsic to the
/// (query, record) pair, so searching disjoint sub-collections and
/// merging equals searching the union (the same argument
/// GenerationalIndex relies on for frozen + staging).
///
/// Thread-safety: after construction every const method is safe to
/// call concurrently. Each shard's index is built (or loaded) under a
/// per-shard mutex with a release/acquire ready flag, so concurrent
/// first probes block only on that one shard, never on each other.

#ifndef AUJOIN_SHARD_SHARDED_INDEX_H_
#define AUJOIN_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/knowledge.h"
#include "core/measures.h"
#include "core/record.h"
#include "index/prepared_index.h"
#include "join/search.h"
#include "shard/shard_plan.h"
#include "util/status.h"

namespace aujoin {

class Env;

class ShardedIndex {
 public:
  using Match = UnifiedSearcher::Match;
  using SearchOptions = UnifiedSearcher::SearchOptions;
  using QueryStats = UnifiedSearcher::QueryStats;

  /// Splits `records` under `plan` (each shard copies its slice with
  /// ids renumbered 0..n-1, so the index owns everything it serves).
  /// Shard indexes are built lazily; nothing heavy happens here.
  ShardedIndex(const Knowledge& knowledge, const MsimOptions& msim,
               const std::vector<Record>& records, const ShardPlan& plan);
  ~ShardedIndex();

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t num_records() const { return num_records_; }
  ShardBy shard_by() const { return shard_by_; }
  /// Shards whose index is currently resident (built or mounted) — lets
  /// tests assert that mounting one shard leaves the rest untouched.
  size_t num_resident_shards() const;

  /// Every record with Approx USIM >= theta across all shards, merged
  /// under the serving order (similarity desc, global id asc). Shards
  /// are probed in parallel (`num_threads`, ResolveThreads semantics;
  /// pass 1 when the caller already parallelises, e.g. over a query
  /// batch). `built_seconds` (when given) accumulates the one-time
  /// index build/load cost THIS call paid, charged exactly once across
  /// concurrent callers. Fails only when a lazy snapshot mount fails.
  Result<std::vector<Match>> Search(const Record& query,
                                    const SearchOptions& options,
                                    int num_threads,
                                    QueryStats* stats = nullptr,
                                    double* built_seconds = nullptr) const;

  /// The k best matches with similarity >= min_theta under the serving
  /// order — byte-identical to the k-prefix of Search (each shard
  /// returns its own top k; the global top k is a subset of their
  /// union).
  Result<std::vector<Match>> TopK(const Record& query, size_t k,
                                  double min_theta,
                                  const SearchOptions& options,
                                  int num_threads,
                                  QueryStats* stats = nullptr,
                                  double* built_seconds = nullptr) const;

  /// Shard `s`'s prepared index, building it from the shard's records
  /// (or mounting its snapshot file) on first use. Thread-safe.
  Result<std::shared_ptr<const PreparedIndex>> ShardIndex(
      size_t s, double* built_seconds = nullptr) const;

  /// The global record ids of shard `s`, ascending (local id i of the
  /// shard's slice is global shard_global_ids(s)[i]).
  const std::vector<uint32_t>& shard_global_ids(size_t s) const {
    return shards_[s]->global_ids;
  }

  /// Saves every shard's index as its own snapshot file
  /// (`<path>.shard-<s>`, forcing lazy builds first) and then commits
  /// the manifest at `path` — manifest durable implies every shard file
  /// is. All files go through the usual temp + rename + SyncDir
  /// sequence, so a crash never leaves a half-written file under a
  /// final name.
  Status Save(const std::string& path, Env* env = nullptr) const;

  /// Mounts a sharded snapshot saved by Save: validates the manifest at
  /// `path` (shard count, placement scheme and the full-collection
  /// fingerprint must match), then arms every shard for LAZY mounting —
  /// a shard's file is mapped on that shard's first probe, without
  /// touching the rest. Per-shard fingerprints are validated by that
  /// mount, so a tampered shard file surfaces as a typed error at first
  /// probe, never as UB.
  static Result<std::unique_ptr<ShardedIndex>> Load(
      const Knowledge& knowledge, const MsimOptions& msim,
      const std::vector<Record>& records, size_t num_shards, ShardBy shard_by,
      const std::string& path, Env* env = nullptr);

  /// `<path>.shard-<s>` — where Save puts shard s's snapshot.
  static std::string ShardFileName(const std::string& path, size_t s);

 private:
  /// One shard: the owned record slice (local ids), its global id map,
  /// and the lazily built/mounted immutable index behind a
  /// release/acquire flag (the Engine's LazyIndexState pattern,
  /// per shard).
  struct Shard {
    std::vector<Record> records;
    std::vector<uint32_t> global_ids;
    /// Non-empty = mount from this snapshot file instead of building.
    std::string snapshot_path;
    mutable std::mutex mutex;
    mutable std::atomic<bool> ready{false};
    mutable std::shared_ptr<const PreparedIndex> index;
  };

  Knowledge knowledge_;
  MsimOptions msim_;
  ShardBy shard_by_ = ShardBy::kRange;
  size_t num_records_ = 0;
  Env* env_ = nullptr;  // used only for lazy snapshot mounts
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aujoin

#endif  // AUJOIN_SHARD_SHARDED_INDEX_H_
