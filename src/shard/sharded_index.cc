#include "shard/sharded_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "storage/env.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {
namespace {

/// Order-sensitive fingerprint of the full record vector — the same
/// formula the snapshot meta uses for its record hashes, computed here
/// over the unsharded collection so a manifest refuses a different
/// world before any shard file is opened.
uint64_t HashFullCollection(const std::vector<Record>& records) {
  uint64_t h = records.size();
  for (const Record& r : records) {
    h = HashCombine(h, r.id);
    h = HashCombine(h, HashTokenSpan(r.tokens.data(), r.tokens.size()));
  }
  return h;
}

/// Merges per-shard match lists (each sorted by similarity desc, local
/// id asc, already mapped to global ids so the tie order is global)
/// into one list under the serving order.
std::vector<UnifiedSearcher::Match> MergeShardMatches(
    std::vector<std::vector<UnifiedSearcher::Match>> per_shard) {
  std::vector<UnifiedSearcher::Match> merged;
  size_t total = 0;
  for (const auto& m : per_shard) total += m.size();
  merged.reserve(total);
  for (auto& m : per_shard) {
    merged.insert(merged.end(), m.begin(), m.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const UnifiedSearcher::Match& a,
               const UnifiedSearcher::Match& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  return merged;
}

}  // namespace

ShardedIndex::ShardedIndex(const Knowledge& knowledge,
                           const MsimOptions& msim,
                           const std::vector<Record>& records,
                           const ShardPlan& plan)
    : knowledge_(knowledge),
      msim_(msim),
      shard_by_(plan.shard_by),
      num_records_(records.size()) {
  shards_.reserve(plan.num_shards());
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->global_ids = plan.shard_ids[s];
    shard->records.reserve(shard->global_ids.size());
    for (size_t i = 0; i < shard->global_ids.size(); ++i) {
      Record r = records[shard->global_ids[i]];
      r.id = static_cast<uint32_t>(i);
      shard->records.push_back(std::move(r));
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedIndex::~ShardedIndex() = default;

size_t ShardedIndex::num_resident_shards() const {
  size_t resident = 0;
  for (const auto& shard : shards_) {
    if (shard->ready.load(std::memory_order_acquire)) ++resident;
  }
  return resident;
}

Result<std::shared_ptr<const PreparedIndex>> ShardedIndex::ShardIndex(
    size_t s, double* built_seconds) const {
  Shard& shard = *shards_[s];
  if (!shard.ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index == nullptr) {
      WallTimer timer;
      if (shard.snapshot_path.empty()) {
        shard.index = PreparedIndex::Build(knowledge_, msim_, shard.records,
                                           nullptr);
      } else {
        Result<std::shared_ptr<const PreparedIndex>> loaded =
            PreparedIndex::Load(knowledge_, msim_, shard.records, nullptr,
                                shard.snapshot_path, env_);
        if (!loaded.ok()) return loaded.status();
        shard.index = std::move(*loaded);
      }
      if (built_seconds != nullptr) *built_seconds += timer.Seconds();
    }
    shard.ready.store(true, std::memory_order_release);
  }
  return shard.index;
}

Result<std::vector<ShardedIndex::Match>> ShardedIndex::Search(
    const Record& query, const SearchOptions& options, int num_threads,
    QueryStats* stats, double* built_seconds) const {
  const size_t n = shards_.size();
  std::vector<std::vector<Match>> per_shard(n);
  std::vector<QueryStats> shard_stats(n);
  std::vector<Status> shard_status(n, Status::OK());
  std::vector<double> shard_built(n, 0.0);
  ParallelFor(n, num_threads, [&](size_t begin, size_t end, int) {
    for (size_t s = begin; s < end; ++s) {
      if (shards_[s]->records.empty()) continue;
      Result<std::shared_ptr<const PreparedIndex>> index =
          ShardIndex(s, &shard_built[s]);
      if (!index.ok()) {
        shard_status[s] = index.status();
        continue;
      }
      UnifiedSearcher searcher(*index);
      std::vector<Match> matches =
          searcher.Search(query, options, &shard_stats[s]);
      const std::vector<uint32_t>& ids = shards_[s]->global_ids;
      for (Match& m : matches) m.id = ids[m.id];
      per_shard[s] = std::move(matches);
    }
  });
  for (size_t s = 0; s < n; ++s) {
    if (!shard_status[s].ok()) return shard_status[s];
    if (built_seconds != nullptr) *built_seconds += shard_built[s];
    if (stats != nullptr) stats->candidates += shard_stats[s].candidates;
  }
  if (stats != nullptr) ++stats->queries;
  return MergeShardMatches(std::move(per_shard));
}

Result<std::vector<ShardedIndex::Match>> ShardedIndex::TopK(
    const Record& query, size_t k, double min_theta,
    const SearchOptions& options, int num_threads, QueryStats* stats,
    double* built_seconds) const {
  if (k == 0) {
    if (stats != nullptr) ++stats->queries;
    return std::vector<Match>{};
  }
  const size_t n = shards_.size();
  std::vector<std::vector<Match>> per_shard(n);
  std::vector<QueryStats> shard_stats(n);
  std::vector<Status> shard_status(n, Status::OK());
  std::vector<double> shard_built(n, 0.0);
  ParallelFor(n, num_threads, [&](size_t begin, size_t end, int) {
    for (size_t s = begin; s < end; ++s) {
      if (shards_[s]->records.empty()) continue;
      Result<std::shared_ptr<const PreparedIndex>> index =
          ShardIndex(s, &shard_built[s]);
      if (!index.ok()) {
        shard_status[s] = index.status();
        continue;
      }
      UnifiedSearcher searcher(*index);
      // Each shard returns its own k best; the global k best is a
      // subset of the union of those lists.
      std::vector<Match> matches =
          searcher.TopK(query, k, min_theta, options, &shard_stats[s]);
      const std::vector<uint32_t>& ids = shards_[s]->global_ids;
      for (Match& m : matches) m.id = ids[m.id];
      per_shard[s] = std::move(matches);
    }
  });
  for (size_t s = 0; s < n; ++s) {
    if (!shard_status[s].ok()) return shard_status[s];
    if (built_seconds != nullptr) *built_seconds += shard_built[s];
    if (stats != nullptr) stats->candidates += shard_stats[s].candidates;
  }
  if (stats != nullptr) ++stats->queries;
  std::vector<Match> merged = MergeShardMatches(std::move(per_shard));
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::string ShardedIndex::ShardFileName(const std::string& path, size_t s) {
  return path + ".shard-" + std::to_string(s);
}

Status ShardedIndex::Save(const std::string& path, Env* env) const {
  if (env == nullptr) env = Env::Default();
  // Shard files first, manifest last: once the manifest's rename is
  // durable, every file it references already is.
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<std::shared_ptr<const PreparedIndex>> index = ShardIndex(s);
    if (!index.ok()) return index.status();
    AUJOIN_RETURN_NOT_OK((*index)->Save(ShardFileName(path, s), env));
  }
  // Reassemble the full-collection fingerprint from the owned slices:
  // global id order, original ids restored.
  std::vector<const Record*> by_global(num_records_, nullptr);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard->global_ids.size(); ++i) {
      by_global[shard->global_ids[i]] = &shard->records[i];
    }
  }
  uint64_t records_hash = num_records_;
  for (size_t id = 0; id < by_global.size(); ++id) {
    records_hash = HashCombine(records_hash, id);
    records_hash = HashCombine(
        records_hash, HashTokenSpan(by_global[id]->tokens.data(),
                                    by_global[id]->tokens.size()));
  }

  std::vector<uint8_t> payload(sizeof(ShardManifestHeader) +
                               shards_.size() * sizeof(uint64_t));
  ShardManifestHeader header;
  header.num_records = num_records_;
  header.num_shards = static_cast<uint32_t>(shards_.size());
  header.shard_by = static_cast<uint32_t>(shard_by_);
  header.records_hash = records_hash;
  std::memcpy(payload.data(), &header, sizeof(header));
  for (size_t s = 0; s < shards_.size(); ++s) {
    uint64_t count = shards_[s]->records.size();
    std::memcpy(payload.data() + sizeof(header) + s * sizeof(uint64_t),
                &count, sizeof(count));
  }
  SnapshotWriter writer(path, env);
  writer.AddSection(kSectionShardManifest, payload.data(), payload.size());
  return writer.Finish();
}

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Load(
    const Knowledge& knowledge, const MsimOptions& msim,
    const std::vector<Record>& records, size_t num_shards, ShardBy shard_by,
    const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::shared_ptr<const SnapshotReader>> reader =
      SnapshotReader::Open(path, env);
  if (!reader.ok()) return reader.status();
  Result<SnapshotReader::Section> section =
      (*reader)->Find(kSectionShardManifest);
  if (!section.ok()) {
    return Status::FailedPrecondition(
        path + ": not a sharded-index manifest (no shard section)");
  }
  if (section->size < sizeof(ShardManifestHeader)) {
    return Status::Corruption(path + ": shard manifest truncated");
  }
  ShardManifestHeader header;
  std::memcpy(&header, section->data, sizeof(header));
  if (section->size !=
      sizeof(header) + header.num_shards * sizeof(uint64_t)) {
    return Status::Corruption(path + ": shard manifest size mismatch");
  }
  if (header.num_records != records.size()) {
    return Status::FailedPrecondition(
        path + ": manifest covers " + std::to_string(header.num_records) +
        " records, " + std::to_string(records.size()) + " are bound");
  }
  if (num_shards == 0) num_shards = 1;
  if (header.num_shards != num_shards ||
      header.shard_by != static_cast<uint32_t>(shard_by)) {
    return Status::FailedPrecondition(
        path + ": manifest is " + std::to_string(header.num_shards) +
        " shards by " +
        ShardByName(static_cast<ShardBy>(header.shard_by)) +
        ", engine wants " + std::to_string(num_shards) + " by " +
        ShardByName(shard_by));
  }
  if (header.records_hash != HashFullCollection(records)) {
    return Status::FailedPrecondition(
        path + ": bound records do not match the manifest fingerprint");
  }
  ShardPlan plan = ShardPlan::Make(records.size(), num_shards, shard_by);
  auto index = std::unique_ptr<ShardedIndex>(
      new ShardedIndex(knowledge, msim, records, plan));
  index->env_ = env;
  for (size_t s = 0; s < index->shards_.size(); ++s) {
    uint64_t count = 0;
    std::memcpy(&count,
                section->data + sizeof(header) + s * sizeof(uint64_t),
                sizeof(count));
    if (count != index->shards_[s]->records.size()) {
      return Status::Corruption(
          path + ": shard " + std::to_string(s) + " holds " +
          std::to_string(count) + " records in the manifest, plan says " +
          std::to_string(index->shards_[s]->records.size()));
    }
    // Arm the lazy mount; the shard file is opened (and its own
    // fingerprints validated) on this shard's first probe.
    index->shards_[s]->snapshot_path = ShardFileName(path, s);
  }
  return index;
}

}  // namespace aujoin
