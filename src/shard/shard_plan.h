/// \file
/// ShardPlan — the first-class sharding of a record collection. Where
/// join/partition.h describes contiguous, size-bounded memory
/// partitions private to one join call, a shard plan is an addressable
/// split of the world: every record belongs to exactly one of N shards
/// chosen by record range or by key hash, and the same plan drives the
/// join pipeline's shard-pair blocks, the scatter-gather serving path
/// (shard/sharded_index.h) and per-shard snapshot sections. The plan is
/// a pure function of (num_records, num_shards, shard_by), so two
/// processes configured alike agree on shard membership without any
/// coordination — the property a future process/host boundary needs.

#ifndef AUJOIN_SHARD_SHARD_PLAN_H_
#define AUJOIN_SHARD_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "join/partition.h"

namespace aujoin {

/// How records map to shards.
enum class ShardBy : uint32_t {
  /// Balanced contiguous ranges (shard i holds ids [begin_i, end_i));
  /// sizes differ by at most one. Preserves the stripe-streaming
  /// property of partition plans: all ids of shard i precede shard
  /// i + 1.
  kRange = 0,
  /// SplitMix64(id) % num_shards. Ids interleave across shards, which
  /// models hash-distributed placement; per-shard id lists stay sorted
  /// ascending but are not contiguous.
  kHash = 1,
};

/// "range" / "hash" for stats and CLI surfaces.
const char* ShardByName(ShardBy shard_by);
/// Parses "range" / "hash"; false on anything else.
bool ParseShardBy(const std::string& name, ShardBy* out);

/// One collection's shard membership, materialised as per-shard sorted
/// id lists. Empty shards are legal (more shards than records); the
/// consumers skip them.
struct ShardPlan {
  ShardBy shard_by = ShardBy::kRange;
  /// True when every shard is a contiguous id range in shard order —
  /// what lets the join pipeline stream stripe by stripe instead of
  /// collecting all matches before emission.
  bool contiguous = true;
  size_t num_records = 0;
  /// shard_ids[s] = global record ids of shard s, sorted ascending.
  std::vector<std::vector<uint32_t>> shard_ids;

  size_t num_shards() const { return shard_ids.size(); }

  /// Shards [0, num_records) into exactly `num_shards` shards (clamped
  /// to at least 1) under `shard_by`. Deterministic: a pure function of
  /// its arguments.
  static ShardPlan Make(size_t num_records, size_t num_shards,
                        ShardBy shard_by);

  /// Lifts a contiguous partition plan (join/partition.h) into shard
  /// form, so the pipeline's size-bounded partitioned mode and the
  /// first-class sharded mode share one block-enumeration path.
  static ShardPlan FromPartitions(const PartitionPlan& plan,
                                  size_t num_records);
};

}  // namespace aujoin

#endif  // AUJOIN_SHARD_SHARD_PLAN_H_
