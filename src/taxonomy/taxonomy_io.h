#ifndef AUJOIN_TAXONOMY_TAXONOMY_IO_H_
#define AUJOIN_TAXONOMY_TAXONOMY_IO_H_

#include <string>

#include "taxonomy/taxonomy.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace aujoin {

/// Loads a taxonomy from a TSV file with one node per line:
///
///   node_id <TAB> parent_id <TAB> entity name
///
/// Node ids must be dense, in [0, n); the root has parent_id -1 and must
/// be line 0; every other node's parent must precede it. Entity names are
/// tokenised with `tokenizer` (default: lowercased, whitespace-split)
/// and interned into `vocab` — pass the same options used for the record
/// corpus so entity names and record tokens share TokenIds.
/// Lines starting with '#' and blank lines are skipped.
Result<Taxonomy> LoadTaxonomyFromTsv(const std::string& path,
                                     Vocabulary* vocab,
                                     const TokenizerOptions& tokenizer = {});

/// Writes a taxonomy in the same format (node order = id order).
Status SaveTaxonomyToTsv(const Taxonomy& taxonomy, const Vocabulary& vocab,
                         const std::string& path);

}  // namespace aujoin

#endif  // AUJOIN_TAXONOMY_TAXONOMY_IO_H_
