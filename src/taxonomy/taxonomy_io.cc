#include "taxonomy/taxonomy_io.h"

#include <cstdio>
#include <cstdlib>

#include "text/tokenizer.h"
#include "util/io.h"

namespace aujoin {

Result<Taxonomy> LoadTaxonomyFromTsv(const std::string& path,
                                     Vocabulary* vocab,
                                     const TokenizerOptions& tokenizer) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();

  Taxonomy taxonomy;
  int64_t expected_id = 0;
  for (size_t lineno = 0; lineno < lines->size(); ++lineno) {
    const std::string& line = (*lines)[lineno];
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() < 3) {
      return Status::InvalidArgument("taxonomy line " +
                                     std::to_string(lineno + 1) +
                                     ": expected 3 tab-separated fields");
    }
    int64_t id = std::atoll(fields[0].c_str());
    int64_t parent = std::atoll(fields[1].c_str());
    if (id != expected_id) {
      return Status::InvalidArgument(
          "taxonomy line " + std::to_string(lineno + 1) +
          ": node ids must be dense and ascending (expected " +
          std::to_string(expected_id) + ")");
    }
    std::vector<TokenId> name = Tokenize(fields[2], vocab, tokenizer);
    if (name.empty()) {
      return Status::InvalidArgument("taxonomy line " +
                                     std::to_string(lineno + 1) +
                                     ": empty entity name");
    }
    Result<NodeId> added =
        parent < 0 ? taxonomy.AddRoot(std::move(name))
                   : taxonomy.AddNode(static_cast<NodeId>(parent),
                                      std::move(name));
    if (!added.ok()) return added.status();
    ++expected_id;
  }
  if (taxonomy.empty()) {
    return Status::InvalidArgument("taxonomy file has no nodes: " + path);
  }
  return taxonomy;
}

Status SaveTaxonomyToTsv(const Taxonomy& taxonomy, const Vocabulary& vocab,
                         const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(taxonomy.num_nodes() + 1);
  lines.push_back("# node_id\tparent_id\tentity name");
  for (NodeId n = 0; n < taxonomy.num_nodes(); ++n) {
    NodeId parent = taxonomy.Parent(n);
    int64_t parent_field =
        parent == Taxonomy::kInvalidNode ? -1 : static_cast<int64_t>(parent);
    const auto& name = taxonomy.Name(n);
    lines.push_back(std::to_string(n) + "\t" + std::to_string(parent_field) +
                    "\t" + vocab.Render(TokenSpan(name.data(), name.size())));
  }
  return WriteLines(path, lines);
}

}  // namespace aujoin
