#ifndef AUJOIN_TAXONOMY_TAXONOMY_H_
#define AUJOIN_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace aujoin {

/// Node identifier inside a Taxonomy; dense, root == 0 after AddRoot.
using NodeId = uint32_t;

/// A rooted IS-A hierarchy (MeSH tree / Wikipedia categories in the paper).
/// Every node carries an entity name (a token sequence); strings match a
/// node when one of their segments equals the node's name. The taxonomy
/// similarity of two nodes is |LCA| / max(|a|, |b|) where |n| is the node's
/// depth and the root has depth 1 (Eq. 3; Figure 1(a) gives
/// simt(latte, espresso) = 4/5 with the root "Wikipedia" at depth 1).
class Taxonomy {
 public:
  static constexpr NodeId kInvalidNode = UINT32_MAX;

  Taxonomy() = default;

  /// Creates the root node. Must be called exactly once, before AddNode.
  Result<NodeId> AddRoot(std::vector<TokenId> name);

  /// Adds a child of `parent`. Returns the new node's id.
  Result<NodeId> AddNode(NodeId parent, std::vector<TokenId> name);

  size_t num_nodes() const { return parents_.size(); }
  bool empty() const { return parents_.empty(); }

  /// Depth of a node; the root has depth 1.
  int Depth(NodeId node) const { return depths_[node]; }

  NodeId Parent(NodeId node) const { return parents_[node]; }
  const std::vector<TokenId>& Name(NodeId node) const { return names_[node]; }
  const std::vector<NodeId>& Children(NodeId node) const {
    return children_[node];
  }

  /// Lowest common ancestor via parent-pointer walk (tree heights in the
  /// paper's taxonomies are <= 26, so this is O(height)).
  NodeId Lca(NodeId a, NodeId b) const;

  /// Eq. 3: depth(LCA) / max(depth(a), depth(b)).
  double Similarity(NodeId a, NodeId b) const;

  /// The chain node -> ... -> root, inclusive (node first).
  std::vector<NodeId> AncestorsInclusive(NodeId node) const;

  /// All nodes whose entity name equals `span` (names need not be unique;
  /// Wikipedia category spellings repeat).
  std::vector<NodeId> FindEntity(TokenSpan span) const;

  /// True if some entity name equals `span`.
  bool HasEntity(TokenSpan span) const { return !FindEntity(span).empty(); }

  /// Maximum number of tokens in any entity name (the taxonomy side of the
  /// paper's claw parameter k).
  size_t max_name_tokens() const { return max_name_tokens_; }

  /// Maximum depth over all nodes.
  int max_depth() const { return max_depth_; }

 private:
  uint64_t NameHash(TokenSpan span) const;

  std::vector<NodeId> parents_;
  std::vector<int> depths_;
  std::vector<std::vector<TokenId>> names_;
  std::vector<std::vector<NodeId>> children_;
  std::unordered_multimap<uint64_t, NodeId> entity_index_;
  size_t max_name_tokens_ = 0;
  int max_depth_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_TAXONOMY_TAXONOMY_H_
