#include "taxonomy/taxonomy.h"

#include <algorithm>

#include "util/hash.h"

namespace aujoin {

uint64_t Taxonomy::NameHash(TokenSpan span) const {
  return HashTokenSpan(span.data(), span.size());
}

Result<NodeId> Taxonomy::AddRoot(std::vector<TokenId> name) {
  if (!parents_.empty()) {
    return Status::FailedPrecondition("taxonomy already has a root");
  }
  parents_.push_back(kInvalidNode);
  depths_.push_back(1);
  max_depth_ = 1;
  children_.emplace_back();
  max_name_tokens_ = std::max(max_name_tokens_, name.size());
  entity_index_.emplace(NameHash(name), 0);
  names_.push_back(std::move(name));
  return NodeId{0};
}

Result<NodeId> Taxonomy::AddNode(NodeId parent, std::vector<TokenId> name) {
  if (parents_.empty()) {
    return Status::FailedPrecondition("add a root before adding nodes");
  }
  if (parent >= parents_.size()) {
    return Status::InvalidArgument("parent node does not exist");
  }
  NodeId id = static_cast<NodeId>(parents_.size());
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  max_depth_ = std::max(max_depth_, depths_.back());
  children_.emplace_back();
  children_[parent].push_back(id);
  max_name_tokens_ = std::max(max_name_tokens_, name.size());
  entity_index_.emplace(NameHash(name), id);
  names_.push_back(std::move(name));
  return id;
}

NodeId Taxonomy::Lca(NodeId a, NodeId b) const {
  while (depths_[a] > depths_[b]) a = parents_[a];
  while (depths_[b] > depths_[a]) b = parents_[b];
  while (a != b) {
    a = parents_[a];
    b = parents_[b];
  }
  return a;
}

double Taxonomy::Similarity(NodeId a, NodeId b) const {
  NodeId lca = Lca(a, b);
  int max_depth = std::max(depths_[a], depths_[b]);
  return static_cast<double>(depths_[lca]) / static_cast<double>(max_depth);
}

std::vector<NodeId> Taxonomy::AncestorsInclusive(NodeId node) const {
  std::vector<NodeId> chain;
  chain.reserve(static_cast<size_t>(depths_[node]));
  NodeId cur = node;
  while (cur != kInvalidNode) {
    chain.push_back(cur);
    cur = parents_[cur];
  }
  return chain;
}

std::vector<NodeId> Taxonomy::FindEntity(TokenSpan span) const {
  std::vector<NodeId> out;
  auto [lo, hi] = entity_index_.equal_range(NameHash(span));
  for (auto it = lo; it != hi; ++it) {
    const auto& name = names_[it->second];
    if (name.size() == span.size() &&
        std::equal(name.begin(), name.end(), span.begin())) {
      out.push_back(it->second);
    }
  }
  return out;
}

}  // namespace aujoin
