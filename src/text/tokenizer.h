#ifndef AUJOIN_TEXT_TOKENIZER_H_
#define AUJOIN_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/vocabulary.h"

namespace aujoin {

/// Tokenizer options. The paper tokenises on whitespace; normalisation is
/// applied before interning so "Cafe" and "cafe" share a TokenId when
/// lowercasing is on.
struct TokenizerOptions {
  bool lowercase = true;
  /// Treat ASCII punctuation as delimiters in addition to whitespace.
  bool split_punctuation = false;
};

/// Splits raw text into normalised token strings.
std::vector<std::string> TokenizeToStrings(
    std::string_view text, const TokenizerOptions& options = {});

/// Tokenises and interns in one step.
std::vector<TokenId> Tokenize(std::string_view text, Vocabulary* vocab,
                              const TokenizerOptions& options = {});

}  // namespace aujoin

#endif  // AUJOIN_TEXT_TOKENIZER_H_
