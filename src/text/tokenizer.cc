#include "text/tokenizer.h"

#include <cctype>

namespace aujoin {

std::vector<std::string> TokenizeToStrings(std::string_view text,
                                           const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    bool is_delim = std::isspace(c) != 0;
    if (options.split_punctuation && std::ispunct(c)) is_delim = true;
    if (is_delim) {
      flush();
      continue;
    }
    current.push_back(options.lowercase
                          ? static_cast<char>(std::tolower(c))
                          : raw);
  }
  flush();
  return tokens;
}

std::vector<TokenId> Tokenize(std::string_view text, Vocabulary* vocab,
                              const TokenizerOptions& options) {
  std::vector<TokenId> ids;
  for (const auto& t : TokenizeToStrings(text, options)) {
    ids.push_back(vocab->Intern(t));
  }
  return ids;
}

}  // namespace aujoin
