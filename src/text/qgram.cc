#include "text/qgram.h"

#include <algorithm>
#include <cmath>

namespace aujoin {

std::vector<std::string> QGrams(std::string_view s, int q) {
  std::vector<std::string> grams;
  if (s.empty() || q <= 0) return grams;
  if (static_cast<int>(s.size()) <= q) {
    grams.emplace_back(s);
  } else {
    grams.reserve(s.size() - q + 1);
    for (size_t i = 0; i + q <= s.size(); ++i) {
      grams.emplace_back(s.substr(i, q));
    }
  }
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

namespace {

size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return inter;
}

}  // namespace

double JaccardOfSortedSets(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineOfSortedSets(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = SortedIntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double DiceOfSortedSets(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double JaccardQGram(std::string_view a, std::string_view b, int q) {
  return JaccardOfSortedSets(QGrams(a, q), QGrams(b, q));
}

}  // namespace aujoin
