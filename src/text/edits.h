#ifndef AUJOIN_TEXT_EDITS_H_
#define AUJOIN_TEXT_EDITS_H_

#include <string>
#include <string_view>

#include "util/rng.h"

namespace aujoin {

/// Character-level typo model used by the corpus generator to produce
/// typographically similar pairs ("Helsinki" -> "Helsingki").
/// Applies `count` random edits (insert / delete / substitute / transpose)
/// drawn uniformly; never empties the string.
std::string ApplyTypos(std::string_view word, int count, Rng* rng);

/// Levenshtein edit distance (dynamic programming); used by tests and by
/// the PKduck baseline's verification step.
int EditDistance(std::string_view a, std::string_view b);

}  // namespace aujoin

#endif  // AUJOIN_TEXT_EDITS_H_
