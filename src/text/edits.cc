#include "text/edits.h"

#include <algorithm>
#include <vector>

namespace aujoin {

std::string ApplyTypos(std::string_view word, int count, Rng* rng) {
  std::string s(word);
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (int e = 0; e < count; ++e) {
    if (s.empty()) {
      s.push_back(alphabet[rng->Uniform(0, 25)]);
      continue;
    }
    int op = static_cast<int>(rng->Uniform(0, 3));
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(s.size()) - 1));
    switch (op) {
      case 0:  // insert
        s.insert(s.begin() + pos, alphabet[rng->Uniform(0, 25)]);
        break;
      case 1:  // delete (keep at least one character)
        if (s.size() > 1) s.erase(s.begin() + pos);
        break;
      case 2:  // substitute
        s[pos] = alphabet[rng->Uniform(0, 25)];
        break;
      default:  // transpose
        if (s.size() >= 2) {
          size_t p = std::min(pos, s.size() - 2);
          std::swap(s[p], s[p + 1]);
        }
        break;
    }
  }
  return s;
}

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace aujoin
