#ifndef AUJOIN_TEXT_QGRAM_H_
#define AUJOIN_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace aujoin {

/// Returns the multiset of q-grams of `s` as distinct strings with counts
/// collapsed to a set (the paper's G(S,q) is a set; Example 2 treats
/// duplicate grams once). A string shorter than q yields the string itself
/// as its single gram so very short tokens still have a signature.
std::vector<std::string> QGrams(std::string_view s, int q);

/// Jaccard coefficient |G(a,q) ∩ G(b,q)| / |G(a,q) ∪ G(b,q)| (Eq. 1).
/// Returns 1.0 when both gram sets are empty (identical empty strings).
double JaccardQGram(std::string_view a, std::string_view b, int q);

/// Jaccard over two precomputed sorted-unique gram lists.
double JaccardOfSortedSets(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

/// Cosine similarity |A ∩ B| / sqrt(|A| * |B|) over sorted-unique lists.
double CosineOfSortedSets(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Dice similarity 2 |A ∩ B| / (|A| + |B|) over sorted-unique lists.
double DiceOfSortedSets(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

}  // namespace aujoin

#endif  // AUJOIN_TEXT_QGRAM_H_
