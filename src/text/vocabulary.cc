#include "text/vocabulary.h"

namespace aujoin {

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocabulary::Find(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kNotFound : it->second;
}

std::vector<TokenId> Vocabulary::InternAll(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(Intern(t));
  return ids;
}

std::string Vocabulary::Render(TokenSpan span) const {
  std::string out;
  for (size_t i = 0; i < span.size(); ++i) {
    if (i > 0) out += ' ';
    out += Spelling(span[i]);
  }
  return out;
}

}  // namespace aujoin
