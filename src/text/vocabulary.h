#ifndef AUJOIN_TEXT_VOCABULARY_H_
#define AUJOIN_TEXT_VOCABULARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aujoin {

/// Interned token identifier. Token ids are dense, starting at 0.
using TokenId = uint32_t;

/// A token-id span referencing a contiguous run of tokens (e.g. a string
/// segment or a synonym-rule side).
using TokenSpan = std::span<const TokenId>;

/// Bidirectional string <-> dense-id interner. All strings in the system are
/// stored as TokenId sequences over one shared Vocabulary, which makes
/// segment hashing, rule lookup and frequency counting O(1) per token.
class Vocabulary {
 public:
  Vocabulary() = default;

  // The interner hands out ids that index into storage; moving is fine,
  // copying is allowed for test convenience.
  Vocabulary(const Vocabulary&) = default;
  Vocabulary& operator=(const Vocabulary&) = default;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Returns the id for `token`, interning it if unseen.
  TokenId Intern(std::string_view token);

  /// Returns the id for `token` or kNotFound if never interned.
  static constexpr TokenId kNotFound = UINT32_MAX;
  TokenId Find(std::string_view token) const;

  /// Original spelling of an interned token. Precondition: id < size().
  const std::string& Spelling(TokenId id) const { return tokens_[id]; }

  /// Interns every element of `tokens`.
  std::vector<TokenId> InternAll(const std::vector<std::string>& tokens);

  /// Renders a token-id sequence back to a space-delimited string.
  std::string Render(TokenSpan span) const;

  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
};

}  // namespace aujoin

#endif  // AUJOIN_TEXT_VOCABULARY_H_
