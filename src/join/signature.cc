#include "join/signature.h"

#include <algorithm>
#include <optional>
#include <set>

#include "join/min_partition.h"

namespace aujoin {

namespace {

// Buckets per segment: one per generating measure (J / S / T / exact).
constexpr int kBucketsPerSegment = 4;

// Slack for the strict boundary inequalities (10)/(11). Pebble weights are
// sums of reciprocals (1/|G|, 1/depth), so a pair whose similarity equals
// theta exactly (e.g. an LCA ratio of 9/10) can have its AS land an ulp
// below theta * m; without slack the filter would drop a borderline true
// result. Erring towards keeping a pebble is always lossless.
constexpr double kBoundarySlack = 1e-9;

// Maps a MeasureMask bit to a dense index 0..3.
int MeasureIndex(uint8_t measure_bit) {
  switch (measure_bit) {
    case kMeasureJaccard:
      return 0;
    case kMeasureSynonym:
      return 1;
    case kMeasureTaxonomy:
      return 2;
    default:
      return 3;  // kMeasureExactBit
  }
}

int BucketOf(const Pebble& p) {
  return static_cast<int>(p.segment) * kBucketsPerSegment +
         MeasureIndex(p.measure);
}

// Computes the accumulated similarity AS(i, S) as the maximum over
// well-defined partitions of the sum of per-segment best-measure tail
// weights. Definition 4 sums over *all* well-defined segments, which
// over-counts when segments overlap; since any partition's segments are
// disjoint consecutive spans, the partition maximum is a valid (and
// tighter) upper bound on the matching contribution witnessed by tail
// pebbles, computed by a shortest-path-style DP over token positions.
class AsCalculator {
 public:
  explicit AsCalculator(const RecordPebbles& rp)
      : segments_(rp.segments) {
    size_t num_tokens = 0;
    for (const auto& seg : segments_) {
      num_tokens = std::max<size_t>(num_tokens, seg.span.end);
    }
    num_tokens_ = num_tokens;
    by_end_.resize(num_tokens + 1);
    for (uint32_t i = 0; i < segments_.size(); ++i) {
      by_end_[segments_[i].span.end].push_back(i);
    }
    seg_contrib_.assign(segments_.size(), 0.0);
    dp_.assign(num_tokens + 1, 0.0);
  }

  // `bucket_tail` has kBucketsPerSegment entries per segment
  // (J/S/T/exact tail weight sums).
  double Compute(const std::vector<double>& bucket_tail) {
    for (size_t seg = 0; seg < segments_.size(); ++seg) {
      seg_contrib_[seg] =
          std::max({bucket_tail[seg * kBucketsPerSegment],
                    bucket_tail[seg * kBucketsPerSegment + 1],
                    bucket_tail[seg * kBucketsPerSegment + 2],
                    bucket_tail[seg * kBucketsPerSegment + 3]});
    }
    dp_[0] = 0.0;
    for (size_t j = 1; j <= num_tokens_; ++j) {
      double best = 0.0;
      for (uint32_t seg_idx : by_end_[j]) {
        best = std::max(best, dp_[segments_[seg_idx].span.begin] +
                                  seg_contrib_[seg_idx]);
      }
      dp_[j] = best;
    }
    return dp_[num_tokens_];
  }

 private:
  const std::vector<WellDefinedSegment>& segments_;
  size_t num_tokens_ = 0;
  std::vector<std::vector<uint32_t>> by_end_;
  std::vector<double> seg_contrib_;
  std::vector<double> dp_;
};

// Finds the smallest 1-based i in [1, n+1] such that
//   theta * m > AS(i) + TW_{tau-1}(B[1, i-1])
// and returns i - 1 (the kept prefix length), or std::nullopt when no i
// satisfies the inequality (the requested tau is infeasible for this
// record; see Signature::effective_tau). With tau = 1 the TW term
// vanishes and this is exactly Algorithm 2 / Lemma 1.
std::optional<size_t> SelectPrefixHeuristic(const RecordPebbles& rp,
                                            const std::vector<double>& as_arr,
                                            double bound, int tau) {
  const size_t n = rp.pebbles.size();
  const size_t top_k = tau > 1 ? static_cast<size_t>(tau - 1) : 0;
  std::multiset<double> top;  // the top_k heaviest prefix weights
  double tw = 0.0;
  for (size_t i = 1; i <= n + 1; ++i) {
    if (bound - (as_arr[i] + tw) > kBoundarySlack) return i - 1;
    if (i <= n && top_k > 0) {
      double w = rp.pebbles[i - 1].weight;
      if (top.size() < top_k) {
        top.insert(w);
        tw += w;
      } else if (!top.empty() && w > *top.begin()) {
        tw += w - *top.begin();
        top.erase(top.begin());
        top.insert(w);
      }
    }
  }
  return std::nullopt;
}

// Algorithm 5: scans i downward; pebble i can be removed iff
//   AS(i) + W_i[t, tau-1] < theta * m
// where W_i is the DP bound over segments of the best similarity increment
// from inserting tau-1 pebbles of the prefix B[1, i-1]. Returns the kept
// prefix length (the first, i.e. largest, i that cannot be removed; 0 when
// every pebble is removable), or std::nullopt when even the boundary at
// i = n+1 (empty tail, whole list as prefix) violates the inequality — the
// requested tau is then infeasible for this record.
std::optional<size_t> SelectPrefixDp(const RecordPebbles& rp, double bound,
                                     int tau) {
  const size_t n = rp.pebbles.size();
  const size_t nseg = rp.segments.size();
  const size_t nbuckets = nseg * kBucketsPerSegment;
  const int d_max = tau - 1;

  // Prefix structures: per-bucket weights sorted descending.
  std::vector<std::multiset<double, std::greater<double>>> prefix(nbuckets);
  for (const Pebble& p : rp.pebbles) prefix[BucketOf(p)].insert(p.weight);
  std::vector<double> tail(nbuckets, 0.0);
  AsCalculator calculator(rp);
  double as = 0.0;

  // TW_c over a bucket's prefix for c = 0..d_max; fills `out` (size
  // d_max+1) with partial sums.
  std::vector<double> tw_scratch(static_cast<size_t>(d_max) + 1, 0.0);
  auto PartialTopSums = [&](int bucket, std::vector<double>* out) {
    double sum = 0.0;
    (*out)[0] = 0.0;
    auto it = prefix[bucket].begin();
    for (int c = 1; c <= d_max; ++c) {
      if (it != prefix[bucket].end()) {
        sum += *it;
        ++it;
      }
      (*out)[c] = sum;
    }
  };

  std::vector<double> w_row(static_cast<size_t>(d_max) + 1, 0.0);
  std::vector<double> w_next(static_cast<size_t>(d_max) + 1, 0.0);
  std::vector<double> r(static_cast<size_t>(d_max) + 1, 0.0);

  // DP over segments: W[p][d] = max_c W[p-1][d-c] + V[p][c] (Eq. 12).
  // Returns true when AS + W[t, d_max] >= bound (boundary invalid).
  auto BoundaryInvalid = [&]() {
    if (as >= bound - kBoundarySlack) return true;
    if (d_max == 0) return false;
    std::fill(w_row.begin(), w_row.end(), 0.0);
    for (size_t seg = 0; seg < nseg; ++seg) {
      // R(P, i, c) = max_f tail_f + TW_c(prefix_f) (Eq. 14).
      std::fill(r.begin(), r.end(), 0.0);
      for (int f = 0; f < kBucketsPerSegment; ++f) {
        int bucket = static_cast<int>(seg) * kBucketsPerSegment + f;
        if (tail[bucket] == 0.0 && prefix[bucket].empty()) continue;
        PartialTopSums(bucket, &tw_scratch);
        for (int c = 0; c <= d_max; ++c) {
          r[c] = std::max(r[c], tail[bucket] + tw_scratch[c]);
        }
      }
      // V[p][c] = R(P,i,c) - R(P,i,0) (Eq. 13).
      double r0 = r[0];
      for (int d = 0; d <= d_max; ++d) {
        double best = w_row[d];  // c = 0
        for (int c = 1; c <= d; ++c) {
          best = std::max(best, w_row[d - c] + (r[c] - r0));
        }
        w_next[d] = best;
      }
      std::swap(w_row, w_next);
      if (as + w_row[d_max] >= bound - kBoundarySlack) {
        return true;  // early termination
      }
    }
    return false;
  };

  // Feasibility pre-check at the boundary i = n+1 (nothing removed yet).
  if (BoundaryInvalid()) return std::nullopt;

  for (size_t i = n; i >= 1; --i) {
    // Move pebble i from the prefix to the tail.
    const Pebble& p = rp.pebbles[i - 1];
    int b = BucketOf(p);
    auto it = prefix[b].find(p.weight);
    if (it != prefix[b].end()) prefix[b].erase(it);
    tail[b] += p.weight;
    as = calculator.Compute(tail);

    if (BoundaryInvalid()) return i;
  }
  return size_t{0};
}

}  // namespace

const char* FilterMethodName(FilterMethod m) {
  switch (m) {
    case FilterMethod::kUFilter:
      return "U-Filter";
    case FilterMethod::kAuHeuristic:
      return "AU-Filter(heuristics)";
    case FilterMethod::kAuDp:
      return "AU-Filter(DP)";
  }
  return "?";
}

std::vector<double> ComputeAccumulatedSimilarity(const RecordPebbles& rp) {
  const size_t n = rp.pebbles.size();
  const size_t nseg = rp.segments.size();
  std::vector<double> bucket(nseg * kBucketsPerSegment, 0.0);
  std::vector<double> as_arr(n + 2, 0.0);
  AsCalculator calculator(rp);
  for (size_t i = n; i >= 1; --i) {
    const Pebble& p = rp.pebbles[i - 1];
    bucket[BucketOf(p)] += p.weight;
    as_arr[i] = calculator.Compute(bucket);
  }
  return as_arr;
}

int MinPartitionSize(const RecordPebbles& rp, size_t num_tokens,
                     bool exact_min_partition) {
  return exact_min_partition
             ? ExactMinPartitionSize(rp.segments, num_tokens)
             : GreedyMinPartitionSize(rp.segments, num_tokens);
}

Signature SelectSignature(const RecordPebbles& rp, size_t num_tokens,
                          const SignatureOptions& options) {
  Signature sig;
  const int m =
      MinPartitionSize(rp, num_tokens, options.exact_min_partition);
  const double bound = options.theta * static_cast<double>(m);
  const int requested_tau =
      options.method == FilterMethod::kUFilter ? 1 : std::max(1, options.tau);

  // Walk tau down until a feasible boundary exists (monotone: lowering
  // tau only shrinks the TW / W term). tau = 1 is feasible whenever the
  // record has tokens; empty records get an empty signature.
  sig.prefix_len = rp.pebbles.size();
  sig.effective_tau = 1;
  if (num_tokens == 0 || rp.pebbles.empty()) {
    sig.prefix_len = 0;
    return sig;
  }
  std::vector<double> as_arr;
  if (options.method != FilterMethod::kAuDp) {
    as_arr = ComputeAccumulatedSimilarity(rp);
  }
  for (int tau = requested_tau; tau >= 1; --tau) {
    std::optional<size_t> len =
        options.method == FilterMethod::kAuDp
            ? SelectPrefixDp(rp, bound, tau)
            : SelectPrefixHeuristic(rp, as_arr, bound, tau);
    if (len.has_value()) {
      sig.prefix_len = *len;
      sig.effective_tau = tau;
      break;
    }
  }

  // Sorted + distinct is a load-bearing invariant, not a convenience:
  // the staging InvertedIndex::Add takes its allocation-free fast path
  // on sorted keys, and the count-based candidate merge equates "count
  // of accumulated postings" with "distinct shared keys" — a duplicate
  // here would double-count overlaps past the tau threshold.
  sig.keys.reserve(sig.prefix_len);
  for (size_t i = 0; i < sig.prefix_len; ++i) {
    sig.keys.push_back(rp.pebbles[i].key);
  }
  std::sort(sig.keys.begin(), sig.keys.end());
  sig.keys.erase(std::unique(sig.keys.begin(), sig.keys.end()),
                 sig.keys.end());
  return sig;
}

}  // namespace aujoin
