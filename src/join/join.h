#ifndef AUJOIN_JOIN_JOIN_H_
#define AUJOIN_JOIN_JOIN_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/usim.h"
#include "index/global_order.h"
#include "index/pebble.h"
#include "index/prepared_index.h"
#include "join/signature.h"

namespace aujoin {

/// Options of a unified similarity join (Algorithms 3 / 6).
struct JoinOptions {
  double theta = 0.8;
  /// Overlap constraint for the AU filters; U-Filter behaves as tau = 1.
  int tau = 1;
  FilterMethod method = FilterMethod::kAuDp;
  bool exact_min_partition = true;
  /// Verification settings (msim sub-options are overridden by the
  /// context's so pebbles and verification agree on q / measures).
  UsimOptions usim;
  /// Verification gram-cache eviction threshold (entries).
  size_t cache_evict_threshold = 500000;
  /// Worker threads for signature selection, candidate generation and
  /// verification. 1 = serial; 0 = all hardware threads.
  int num_threads = 1;
};

/// Timing and cardinality statistics of one join run. `processed_pairs`
/// is the T_tau of Eq. (16); `candidates` is V_tau.
struct JoinStats {
  double prepare_seconds = 0.0;
  double signature_seconds = 0.0;
  double filter_seconds = 0.0;
  double verify_seconds = 0.0;
  double suggest_seconds = 0.0;
  uint64_t processed_pairs = 0;
  uint64_t candidates = 0;
  uint64_t results = 0;
  double avg_signature_pebbles = 0.0;
  /// Partitioned-pipeline shape: how many partitions the bound
  /// collection(s) were sharded into and how many partition-pair (or
  /// shard-pair) blocks ran. Zero on the monolithic path.
  uint64_t partitions = 0;
  uint64_t partition_blocks = 0;
  /// First-class shard mode (EngineOptions::num_shards): the shard
  /// count of the plan the blocks enumerated. Zero when the join ran
  /// monolithically or under the size-bounded partition mode.
  uint64_t shards = 0;
  /// Spill-to-disk counters (out-of-core joins): sorted runs written
  /// to temp files, pairs and bytes they carried. Zero when the join
  /// stayed within its in-memory budget.
  uint64_t spill_runs = 0;
  uint64_t spill_pairs = 0;
  uint64_t spill_bytes = 0;
  /// Serving-side counters (zero on pure join runs): seconds spent
  /// building the full-key serving index (PreparedIndex::ServingIndex),
  /// queries answered, and candidate records probed across them.
  double index_seconds = 0.0;
  uint64_t queries = 0;
  uint64_t query_candidates = 0;

  /// Sums the per-phase times. Preparation (pebble generation + global
  /// ordering) happens once per JoinContext and is amortised across runs,
  /// so it is excluded by default; pass `include_prepare = true` for the
  /// cold-start total (what a baseline doing its own indexing reports).
  double TotalSeconds(bool include_prepare = false) const {
    return (include_prepare ? prepare_seconds : 0.0) + signature_seconds +
           filter_seconds + verify_seconds + suggest_seconds;
  }
};

/// One join's output: matching (s_index, t_index) pairs + stats.
struct JoinResult {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  JoinStats stats;
};

/// A join-side view over a shared immutable PreparedIndex
/// (src/index/prepared_index.h). Building a context once lets the tuner
/// re-run the filter stage on samples, and benches sweep (theta, tau,
/// method) without regenerating pebbles; Adopt lets the join, the
/// online searcher and the Engine serving API all borrow one prepared
/// index instead of owning private copies.
class JoinContext {
 public:
  JoinContext(const Knowledge& knowledge, const MsimOptions& msim)
      : knowledge_(knowledge), msim_(msim) {}

  /// Generates pebbles for both collections (pass t == nullptr for a
  /// self-join) and finalises the global frequency order, by building a
  /// fresh PreparedIndex this context owns the primary reference to.
  void Prepare(const std::vector<Record>& s, const std::vector<Record>* t);

  /// Borrows an already-built index (shared with searchers / other
  /// contexts) instead of preparing a private copy. The index's
  /// knowledge and msim options replace the constructor's.
  void Adopt(std::shared_ptr<const PreparedIndex> index);

  bool self_join() const {
    return index_ == nullptr || index_->self_join();
  }
  bool prepared() const { return index_ != nullptr; }

  /// The borrowed prepared index; prepared() must hold.
  const PreparedIndex& index() const { return *index_; }
  const std::shared_ptr<const PreparedIndex>& shared_index() const {
    return index_;
  }

  const std::vector<Record>& s_records() const {
    return index_->s_records();
  }
  const std::vector<Record>& t_records() const {
    return index_->t_records();
  }
  const std::vector<PreparedRecord>& s_prepared() const {
    return index_->s_prepared();
  }
  const std::vector<PreparedRecord>& t_prepared() const {
    return index_->t_prepared();
  }
  const Knowledge& knowledge() const { return knowledge_; }
  const MsimOptions& msim_options() const { return msim_; }
  const GlobalOrder& global_order() const { return index_->global_order(); }
  double prepare_seconds() const {
    return index_ == nullptr ? 0.0 : index_->prepare_seconds();
  }

  /// Output of the filter stage (Lines 1-8 of Algorithm 6).
  struct FilterOutput {
    uint64_t processed_pairs = 0;  // T_tau
    std::vector<std::pair<uint32_t, uint32_t>> candidates;  // V_tau entries
    double signature_seconds = 0.0;
    double filter_seconds = 0.0;
    double avg_signature_pebbles = 0.0;
  };

  /// Runs signature selection + candidate generation. `s_subset` /
  /// `t_subset` restrict to record indexes (used by the Bernoulli
  /// sampler); nullptr means the whole collection. For self-joins,
  /// candidates are emitted with first < second. `num_threads` follows
  /// JoinOptions::num_threads semantics.
  FilterOutput RunFilter(const SignatureOptions& sig_options,
                         const std::vector<uint32_t>* s_subset = nullptr,
                         const std::vector<uint32_t>* t_subset = nullptr,
                         int num_threads = 1) const;

 private:
  Knowledge knowledge_;
  MsimOptions msim_;
  std::shared_ptr<const PreparedIndex> index_;
};

/// Runs the full filter-and-verification join over a prepared context.
JoinResult UnifiedJoin(const JoinContext& context, const JoinOptions& options);

/// Verifies candidate pairs with Algorithm 1 and appends survivors to
/// `result`. Exposed so benches can time verification separately.
void VerifyCandidates(
    const JoinContext& context, const JoinOptions& options,
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    JoinResult* result);

}  // namespace aujoin

#endif  // AUJOIN_JOIN_JOIN_H_
