#include "join/pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/spill_file.h"
#include "util/parallel.h"

namespace aujoin {
namespace {

using PairVec = std::vector<std::pair<uint32_t, uint32_t>>;

/// Copies one shard's records, renumbering ids to local indexes so an
/// algorithm that reads Record::id agrees with the pair indexes it emits.
std::vector<Record> SliceRecords(const std::vector<Record>& records,
                                 const std::vector<uint32_t>& ids) {
  std::vector<Record> out;
  out.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    Record r = records[ids[i]];
    r.id = static_cast<uint32_t>(i);
    out.push_back(std::move(r));
  }
  return out;
}

/// Everything one block produces. `weight` is the block's record count,
/// used to average avg_signature_pebbles across blocks.
struct BlockResult {
  Status status = Status::OK();
  PairVec pairs;
  JoinStats stats;
  double weight = 0.0;
  bool done = false;
};

/// Runs one shard-pair block to completion: builds the block's record
/// slices, lazily prepares a block-local JoinContext, runs a fresh
/// algorithm instance serially, and maps the local pairs back to global
/// ids through the shard id lists. Cross blocks of a self-join keep
/// only pairs straddling the two shards — the structural half of
/// boundary dedup — and, on non-contiguous (hash) plans, normalise
/// every self-join pair to (min, max) so the global first < second
/// contract survives interleaved shard membership.
void RunBlock(const AlgorithmFactory& factory,
              const AlgorithmContext& base_context,
              const EngineJoinOptions& options, const PartitionBlock& block,
              const ShardPlan& s_plan, const ShardPlan& t_plan,
              BlockResult* result) {
  const std::vector<Record>& s = *base_context.s_records;
  const bool self = base_context.self_join();
  const std::vector<Record>& t = self ? s : *base_context.t_records;
  const std::vector<uint32_t>& s_ids = s_plan.shard_ids[block.s_part];
  const std::vector<uint32_t>& t_ids = t_plan.shard_ids[block.t_part];

  std::unique_ptr<JoinAlgorithm> algo = factory();
  if (algo == nullptr) {
    result->status = Status::Internal("algorithm factory returned null");
    return;
  }

  // Blocks run serially inside; parallelism comes from the block pool.
  AlgorithmContext ctx;
  ctx.knowledge = base_context.knowledge;
  ctx.msim = base_context.msim;
  ctx.num_threads = 1;
  ctx.cache_evict_threshold = base_context.cache_evict_threshold;
  ctx.stream_batch_size = base_context.stream_batch_size;

  std::vector<Record> local_s, local_t;
  bool concatenated = false;

  if (self && block.diagonal()) {
    local_s = SliceRecords(s, s_ids);
    ctx.s_records = &local_s;
    ctx.t_records = nullptr;
  } else if (self && !algo->SupportsRsJoin()) {
    // Self-join-only algorithm on a cross block: self-join the
    // concatenation [shard s_part ++ shard t_part] and keep only the
    // straddling pairs below.
    local_s = SliceRecords(s, s_ids);
    std::vector<Record> tail = SliceRecords(s, t_ids);
    for (Record& r : tail) {
      r.id += static_cast<uint32_t>(local_s.size());
      local_s.push_back(std::move(r));
    }
    ctx.s_records = &local_s;
    ctx.t_records = nullptr;
    concatenated = true;
  } else {
    // R-S block: either a genuine R-S join, or the cross block of a
    // self-join run as S-shard × T-shard (pairs come out with first in
    // s_part and second in t_part, already deduped).
    local_s = SliceRecords(s, s_ids);
    local_t = SliceRecords(t, t_ids);
    ctx.s_records = &local_s;
    ctx.t_records = &local_t;
  }

  // Each block borrows a slice-local PreparedIndex through the one
  // shared build path (PreparedIndex::Build, via JoinContext::Prepare);
  // bounding prepared memory by blocks in flight is exactly why blocks
  // do not share the engine's whole-collection index. Candidate
  // generation inside the block likewise rides the one shared probe
  // path (JoinContext::RunFilter): a slice-local frozen CsrIndex
  // scanned with count-based merging, so sharded and monolithic joins
  // stay byte-identical per construction.
  std::unique_ptr<JoinContext> block_join_context;
  ctx.unified_context = [&ctx, &block_join_context]() -> JoinContext& {
    if (block_join_context == nullptr) {
      block_join_context =
          std::make_unique<JoinContext>(*ctx.knowledge, ctx.msim);
      block_join_context->Prepare(*ctx.s_records, ctx.t_records);
    }
    return *block_join_context;
  };

  CollectingSink collected;
  result->status = algo->Run(ctx, options, &collected, &result->stats);
  if (!result->status.ok()) return;
  if (block_join_context != nullptr) {
    result->stats.prepare_seconds = block_join_context->prepare_seconds();
  }
  result->weight = static_cast<double>(local_s.size() + local_t.size());

  // Self-join cross blocks of a hash plan interleave: a straddling pair
  // may globalise with first > second, so restore the contract by
  // swapping to (min, max). Contiguous plans never need it (the id
  // lists of stripe i precede stripe j > i entirely), and genuine R-S
  // joins keep their (s, t) orientation.
  const bool normalize = self && !block.diagonal() && !s_plan.contiguous;
  const uint32_t cut = concatenated
                           ? static_cast<uint32_t>(s_ids.size())
                           : 0;  // unused unless concatenated
  result->pairs.reserve(collected.pairs.size());
  for (const auto& [a, b] : collected.pairs) {
    uint32_t first, second;
    if (concatenated) {
      // Within-shard pairs belong to the two diagonal blocks.
      if (a >= cut || b < cut) continue;
      first = s_ids[a];
      second = t_ids[b - cut];
    } else {
      first = s_ids[a];
      second = t_ids[b];
    }
    if (normalize && second < first) std::swap(first, second);
    result->pairs.emplace_back(first, second);
  }
  // The id maps are monotone, so ascending local order usually survives
  // globalisation, but sort anyway: the merge relies on it, not on
  // every algorithm upholding the contract perfectly (and hash-plan
  // normalisation genuinely reorders).
  std::sort(result->pairs.begin(), result->pairs.end());
}

}  // namespace

Status RunPartitionedJoin(const AlgorithmFactory& factory,
                          const AlgorithmContext& context,
                          const EngineJoinOptions& options,
                          const PipelineOptions& pipeline_options,
                          MatchSink* sink, JoinStats* stats) {
  if (context.s_records == nullptr) {
    return Status::FailedPrecondition("pipeline requires bound records");
  }
  if (sink == nullptr || stats == nullptr) {
    return Status::InvalidArgument("pipeline requires a sink and stats");
  }
  const bool shard_mode = pipeline_options.num_shards > 0;
  if (!shard_mode && pipeline_options.max_partition_records == 0) {
    return Status::InvalidArgument(
        "the pipeline needs num_shards or max_partition_records > 0");
  }

  const bool self = context.self_join();
  ShardPlan s_plan, t_plan;
  if (shard_mode) {
    s_plan = ShardPlan::Make(context.s_records->size(),
                             pipeline_options.num_shards,
                             pipeline_options.shard_by);
    t_plan = self ? s_plan
                  : ShardPlan::Make(context.t_records->size(),
                                    pipeline_options.num_shards,
                                    pipeline_options.shard_by);
  } else {
    s_plan = ShardPlan::FromPartitions(
        PartitionPlan::Shard(context.s_records->size(),
                             pipeline_options.max_partition_records),
        context.s_records->size());
    t_plan = self ? s_plan
                  : ShardPlan::FromPartitions(
                        PartitionPlan::Shard(
                            context.t_records->size(),
                            pipeline_options.max_partition_records),
                        context.t_records->size());
  }
  std::vector<PartitionBlock> blocks =
      EnumerateBlocks(s_plan.num_shards(), t_plan.num_shards(), self);

  if (shard_mode) {
    stats->shards = s_plan.num_shards();
  } else {
    stats->partitions =
        s_plan.num_shards() + (self ? 0 : t_plan.num_shards());
  }
  stats->partition_blocks = blocks.size();

  const bool spilling = pipeline_options.spill_budget_bytes > 0;
  // Stripe streaming needs stripe i's firsts to precede stripe i + 1's;
  // hash plans interleave, and a spill budget needs the collect path's
  // buffer accounting, so both fall through to collect-and-merge.
  const bool streaming = s_plan.contiguous && !spilling;

  if (blocks.size() <= 1 && !spilling) {
    // One block covers everything: run the monolithic path directly (and
    // through the engine's shared prepared context, not a block copy).
    std::unique_ptr<JoinAlgorithm> algo = factory();
    if (algo == nullptr) {
      return Status::Internal("algorithm factory returned null");
    }
    uint64_t shards = stats->shards;
    uint64_t partitions = stats->partitions;
    uint64_t partition_blocks = stats->partition_blocks;
    Status status = algo->Run(context, options, sink, stats);
    stats->shards = shards;
    stats->partitions = partitions;
    stats->partition_blocks = partition_blocks;
    return status;
  }

  std::vector<BlockResult> results(blocks.size());
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::atomic<bool> cancel{false};

  // One shared pool runs every block: context preparation, candidate
  // generation and verification all execute inside the block task.
  ThreadPool pool(pipeline_options.num_threads);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const std::vector<uint32_t>& bs = s_plan.shard_ids[blocks[b].s_part];
    const std::vector<uint32_t>& bt = t_plan.shard_ids[blocks[b].t_part];
    if (bs.empty() || (bt.empty() && !(self && blocks[b].diagonal()))) {
      results[b].done = true;  // empty side ⇒ no pairs; skip the work
      continue;
    }
    pool.Submit([&, b] {
      if (!cancel.load(std::memory_order_relaxed)) {
        RunBlock(factory, context, options, blocks[b], s_plan, t_plan,
                 &results[b]);
      }
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        results[b].done = true;
      }
      done_cv.notify_all();
    });
  }

  SpillWriter spill_writer(pipeline_options.env, pipeline_options.spill_dir);
  PairVec collect;  // collect-and-merge buffer (unused when streaming)

  // Consume stripe by stripe: once every block of S-shard i has
  // finished, its results are folded in. Under streaming emission the
  // union of the stripe's (disjoint) sorted pair lists is the complete,
  // globally contiguous run of results whose first component lies in
  // shard i, and goes straight to the sink; otherwise stripes append to
  // the collect buffer, spilling sorted runs when over budget, and one
  // final merge emits everything globally ascending.
  Status status = Status::OK();
  double pebble_weight = 0.0, pebble_weighted_sum = 0.0;
  bool terminated = false;
  size_t next = 0;
  while (next < blocks.size() && status.ok() && !terminated) {
    size_t stripe_begin = next;
    uint32_t stripe = blocks[next].s_part;
    while (next < blocks.size() && blocks[next].s_part == stripe) ++next;
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] {
        for (size_t b = stripe_begin; b < next; ++b) {
          if (!results[b].done) return false;
        }
        return true;
      });
    }

    PairVec merged;
    for (size_t b = stripe_begin; b < next; ++b) {
      BlockResult& r = results[b];
      if (!r.status.ok()) {
        status = r.status;
        break;
      }
      stats->prepare_seconds += r.stats.prepare_seconds;
      stats->signature_seconds += r.stats.signature_seconds;
      stats->filter_seconds += r.stats.filter_seconds;
      stats->verify_seconds += r.stats.verify_seconds;
      stats->processed_pairs += r.stats.processed_pairs;
      stats->candidates += r.stats.candidates;
      pebble_weighted_sum += r.stats.avg_signature_pebbles * r.weight;
      pebble_weight += r.weight;
      merged.insert(merged.end(), r.pairs.begin(), r.pairs.end());
      PairVec().swap(r.pairs);  // release stripe memory as we go
    }
    if (!status.ok()) break;

    if (streaming) {
      std::sort(merged.begin(), merged.end());
      for (const auto& [first, second] : merged) {
        ++stats->results;
        if (!sink->OnMatch(first, second)) {
          terminated = true;
          break;
        }
      }
    } else {
      collect.insert(collect.end(), merged.begin(), merged.end());
      PairVec().swap(merged);
      if (spilling &&
          collect.size() * sizeof(collect[0]) >
              pipeline_options.spill_budget_bytes) {
        status = spill_writer.Spill(&collect);
      }
    }
  }

  // Stop feeding queued blocks and drain in-flight ones before the
  // results vector goes out of scope.
  cancel.store(true, std::memory_order_relaxed);
  pool.WaitIdle();
  if (pebble_weight > 0.0) {
    stats->avg_signature_pebbles = pebble_weighted_sum / pebble_weight;
  }

  if (!streaming && status.ok() && !terminated) {
    std::sort(collect.begin(), collect.end());
    SpillMerger merger(spill_writer.runs(), collect);
    std::pair<uint32_t, uint32_t> pair;
    while (merger.Next(&pair)) {
      ++stats->results;
      if (!sink->OnMatch(pair.first, pair.second)) break;
    }
  }
  stats->spill_runs = spill_writer.runs().size();
  stats->spill_pairs = spill_writer.spilled_pairs();
  stats->spill_bytes = spill_writer.spilled_bytes();
  return status;
}

}  // namespace aujoin
