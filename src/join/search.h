#ifndef AUJOIN_JOIN_SEARCH_H_
#define AUJOIN_JOIN_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/usim.h"
#include "join/global_order.h"
#include "join/inverted_index.h"
#include "join/pebble.h"
#include "join/signature.h"

namespace aujoin {

/// Online unified similarity *search*: index a collection once, then
/// answer "which records are similar to this query?" requests. The
/// collection side is indexed with its records' full pebble key sets, so
/// only the query needs a signature: if USIM(q, r) >= theta, every shared
/// key is either in the query's signature prefix (then r is a candidate
/// via the index) or in the query's tail, whose total possible
/// contribution is below theta * MP(q) by the signature boundary — the
/// single-sided version of Lemmas 1-2.
class UnifiedSearcher {
 public:
  /// `knowledge` must outlive the searcher.
  UnifiedSearcher(const Knowledge& knowledge, const MsimOptions& msim)
      : knowledge_(knowledge), msim_(msim), generator_(knowledge, msim) {}

  /// Indexes the collection (full pebble key sets; the collection pointer
  /// must stay valid while searching).
  void Index(const std::vector<Record>* collection);

  struct Match {
    uint32_t id = 0;
    double similarity = 0.0;

    friend bool operator==(const Match& a, const Match& b) {
      return a.id == b.id && a.similarity == b.similarity;
    }
  };

  struct SearchOptions {
    double theta = 0.8;
    /// Overlap constraint on the query signature (subject to the query's
    /// effective tau).
    int tau = 1;
    FilterMethod method = FilterMethod::kAuDp;
  };

  /// All indexed records with Approx USIM >= theta, sorted by descending
  /// similarity (ties by id).
  std::vector<Match> Search(const Record& query,
                            const SearchOptions& options);

  /// The k most similar records with similarity >= min_theta.
  std::vector<Match> TopK(const Record& query, size_t k, double min_theta,
                          const SearchOptions& options);

  size_t num_indexed() const {
    return collection_ == nullptr ? 0 : collection_->size();
  }

 private:
  std::vector<uint32_t> Candidates(const Record& query,
                                   const SearchOptions& options);

  Knowledge knowledge_;
  MsimOptions msim_;
  PebbleGenerator generator_;
  Vocabulary gram_dict_;
  GlobalOrder order_;
  InvertedIndex index_;
  const std::vector<Record>* collection_ = nullptr;
};

}  // namespace aujoin

#endif  // AUJOIN_JOIN_SEARCH_H_
