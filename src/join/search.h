#ifndef AUJOIN_JOIN_SEARCH_H_
#define AUJOIN_JOIN_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/usim.h"
#include "index/prepared_index.h"
#include "join/signature.h"

namespace aujoin {

/// Online unified similarity *search*: index a collection once, then
/// answer "which records are similar to this query?" requests. The
/// collection side is indexed with its records' full pebble key sets, so
/// only the query needs a signature: if USIM(q, r) >= theta, every shared
/// key is either in the query's signature prefix (then r is a candidate
/// via the index) or in the query's tail, whose total possible
/// contribution is below theta * MP(q) by the signature boundary — the
/// single-sided version of Lemmas 1-2.
///
/// The searcher is a read-only view over a shared immutable
/// PreparedIndex (the T side is what gets probed): Search/TopK are
/// const and safe to call from any number of threads concurrently on
/// one searcher — scratch state is per query or per thread (the
/// candidate count-merge accumulator is thread_local, reused across a
/// thread's queries without clearing). Many searchers and join
/// contexts can borrow the same index.
class UnifiedSearcher {
 public:
  /// Serves the prepared index's T side (== S for a self-join world).
  explicit UnifiedSearcher(std::shared_ptr<const PreparedIndex> index)
      : knowledge_(index->knowledge()),
        msim_(index->msim_options()),
        index_(std::move(index)) {}

  /// Two-step construction: remember the world, then Index() a
  /// collection (builds a private PreparedIndex).
  UnifiedSearcher(const Knowledge& knowledge, const MsimOptions& msim)
      : knowledge_(knowledge), msim_(msim) {}

  /// Indexes the collection (the pointer must stay valid while
  /// searching). Replaces any previously adopted index.
  void Index(const std::vector<Record>* collection);

  struct Match {
    uint32_t id = 0;
    double similarity = 0.0;

    friend bool operator==(const Match& a, const Match& b) {
      return a.id == b.id && a.similarity == b.similarity;
    }
  };

  struct SearchOptions {
    double theta = 0.8;
    /// Overlap constraint on the query signature (subject to the query's
    /// effective tau).
    int tau = 1;
    FilterMethod method = FilterMethod::kAuDp;
  };

  /// Per-query statistics, accumulated into the caller's struct.
  struct QueryStats {
    uint64_t queries = 0;
    /// Candidate records surviving the signature filter (verified).
    uint64_t candidates = 0;
  };

  /// All indexed records with Approx USIM >= theta, sorted by descending
  /// similarity, ties by ascending id. An empty (zero-token) query
  /// matches nothing. Thread-safe.
  std::vector<Match> Search(const Record& query, const SearchOptions& options,
                            QueryStats* stats = nullptr) const;

  /// The k most similar records with similarity >= min_theta, under the
  /// same total order as Search (similarity desc, id asc) — ties at the
  /// cut are resolved toward lower ids, so results are deterministic
  /// and byte-identical to Search's k-prefix. Internally a bounded
  /// partial sort: k << matches never pays a full sort of the match
  /// set. k = 0 returns nothing; min_theta = 1.0 keeps only
  /// exact-similarity matches. Thread-safe.
  std::vector<Match> TopK(const Record& query, size_t k, double min_theta,
                          const SearchOptions& options,
                          QueryStats* stats = nullptr) const;

  size_t num_indexed() const {
    return index_ == nullptr ? 0 : index_->t_records().size();
  }

  const std::shared_ptr<const PreparedIndex>& index() const {
    return index_;
  }

 private:
  std::vector<uint32_t> Candidates(const Record& query,
                                   const SearchOptions& options) const;

  /// Shared Search/TopK core: candidates (CSR count-merge probe) plus
  /// Algorithm 1 verification, returned unsorted so each caller can
  /// apply the cheapest ordering (full sort vs bounded partial sort).
  std::vector<Match> VerifyCandidates(const Record& query,
                                      const SearchOptions& options,
                                      QueryStats* stats) const;

  Knowledge knowledge_;
  MsimOptions msim_;
  std::shared_ptr<const PreparedIndex> index_;
};

}  // namespace aujoin

#endif  // AUJOIN_JOIN_SEARCH_H_
