#include "join/partition.h"

namespace aujoin {

PartitionPlan PartitionPlan::Shard(size_t num_records,
                                   size_t max_partition_records) {
  PartitionPlan plan;
  if (num_records == 0) return plan;
  size_t parts = 1;
  if (max_partition_records > 0 && max_partition_records < num_records) {
    parts = (num_records + max_partition_records - 1) / max_partition_records;
  }
  // Balanced split: the first `num_records % parts` partitions take one
  // extra record, so every size is floor or ceil of num_records / parts
  // (and the ceil never exceeds max_partition_records by construction).
  size_t base = num_records / parts;
  size_t extra = num_records % parts;
  plan.partitions.reserve(parts);
  uint32_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    uint32_t size = static_cast<uint32_t>(base + (p < extra ? 1 : 0));
    plan.partitions.push_back(Partition{begin, begin + size});
    begin += size;
  }
  return plan;
}

std::vector<PartitionBlock> EnumerateBlocks(size_t s_parts, size_t t_parts,
                                            bool self_join) {
  std::vector<PartitionBlock> blocks;
  for (uint32_t i = 0; i < s_parts; ++i) {
    for (uint32_t j = self_join ? i : 0; j < t_parts; ++j) {
      blocks.push_back(PartitionBlock{i, j});
    }
  }
  return blocks;
}

}  // namespace aujoin
