#include "join/min_partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aujoin {

int GreedyMinPartitionSize(const std::vector<WellDefinedSegment>& segments,
                           size_t num_tokens) {
  if (num_tokens == 0) return 0;
  std::vector<char> uncovered(num_tokens, 1);
  size_t remaining = num_tokens;
  int picked = 0;
  size_t largest_segment = 1;
  for (const auto& seg : segments) {
    largest_segment = std::max<size_t>(largest_segment, seg.span.size());
  }
  while (remaining > 0) {
    // Pick the segment covering the most uncovered tokens. Single-token
    // segments guarantee progress.
    size_t best_cover = 0;
    const WellDefinedSegment* best = nullptr;
    for (const auto& seg : segments) {
      size_t cover = 0;
      for (uint32_t p = seg.span.begin; p < seg.span.end; ++p) {
        cover += uncovered[p];
      }
      if (cover > best_cover) {
        best_cover = cover;
        best = &seg;
      }
    }
    if (best == nullptr) break;  // unreachable: singles cover everything
    for (uint32_t p = best->span.begin; p < best->span.end; ++p) {
      if (uncovered[p]) {
        uncovered[p] = 0;
        --remaining;
      }
    }
    ++picked;
  }
  double denom = std::log(static_cast<double>(largest_segment)) + 1.0;
  return static_cast<int>(
      std::ceil(static_cast<double>(picked) / denom));
}

int ExactMinPartitionSize(const std::vector<WellDefinedSegment>& segments,
                          size_t num_tokens) {
  if (num_tokens == 0) return 0;
  const int kInf = std::numeric_limits<int>::max() / 2;
  // dp[p] = min segments to cover tokens [0, p).
  std::vector<int> dp(num_tokens + 1, kInf);
  dp[0] = 0;
  // Bucket segments by begin for a forward scan.
  std::vector<std::vector<uint32_t>> ends_by_begin(num_tokens);
  for (const auto& seg : segments) {
    ends_by_begin[seg.span.begin].push_back(seg.span.end);
  }
  for (size_t p = 0; p < num_tokens; ++p) {
    if (dp[p] == kInf) continue;
    for (uint32_t end : ends_by_begin[p]) {
      dp[end] = std::min(dp[end], dp[p] + 1);
    }
  }
  return dp[num_tokens] >= kInf ? static_cast<int>(num_tokens)
                                : dp[num_tokens];
}

}  // namespace aujoin
