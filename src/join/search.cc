#include "join/search.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace aujoin {
namespace {

/// The one total order of search results: similarity desc, id asc.
bool BetterMatch(const UnifiedSearcher::Match& a,
                 const UnifiedSearcher::Match& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.id < b.id;
}

}  // namespace

void UnifiedSearcher::Index(const std::vector<Record>* collection) {
  index_ = PreparedIndex::Build(knowledge_, msim_, *collection, nullptr);
}

std::vector<uint32_t> UnifiedSearcher::Candidates(
    const Record& query, const SearchOptions& options) const {
  RecordPebbles rp = index_->GenerateQueryPebbles(query);
  SignatureOptions sig_options;
  sig_options.theta = options.theta;
  sig_options.tau = options.tau;
  sig_options.method = options.method;
  Signature sig = SelectSignature(rp, query.num_tokens(), sig_options);

  const InvertedIndex& serving = index_->ServingIndex();
  std::unordered_map<uint32_t, int> overlap;
  for (uint64_t key : sig.keys) {
    const std::vector<uint32_t>* postings = serving.Find(key);
    if (postings == nullptr) continue;
    for (uint32_t id : *postings) ++overlap[id];
  }
  std::vector<uint32_t> out;
  for (const auto& [id, count] : overlap) {
    if (count >= sig.effective_tau) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::Search(
    const Record& query, const SearchOptions& options,
    QueryStats* stats) const {
  std::vector<Match> matches;
  if (index_ == nullptr) return matches;
  if (stats != nullptr) ++stats->queries;
  // An empty query has no segments, hence no pebbles and USIM 0 against
  // everything; return before signature selection sees a zero-token
  // record.
  if (query.num_tokens() == 0) return matches;
  // Per-query scratch state only from here on: the candidate overlap
  // map and one UsimComputer (whose gram cache is not thread-safe).
  UsimOptions usim_options;
  usim_options.msim = msim_;
  UsimComputer computer(knowledge_, usim_options);
  const std::vector<Record>& collection = index_->t_records();
  std::vector<uint32_t> candidates = Candidates(query, options);
  if (stats != nullptr) stats->candidates += candidates.size();
  for (uint32_t id : candidates) {
    double sim = computer.Approx(query, collection[id]);
    if (sim >= options.theta) matches.push_back(Match{id, sim});
  }
  std::sort(matches.begin(), matches.end(), BetterMatch);
  return matches;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::TopK(
    const Record& query, size_t k, double min_theta,
    const SearchOptions& options, QueryStats* stats) const {
  if (k == 0) {
    // Still a query: count it, answer nothing.
    if (stats != nullptr) ++stats->queries;
    return {};
  }
  SearchOptions opts = options;
  opts.theta = min_theta;
  std::vector<Match> all = Search(query, opts, stats);
  // Search returns the full order (similarity desc, id asc), so the
  // prefix is exactly the k best with deterministic tie-breaks at the
  // cut boundary.
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace aujoin
