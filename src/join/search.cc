#include "join/search.h"

#include <algorithm>
#include <unordered_map>

namespace aujoin {

void UnifiedSearcher::Index(const std::vector<Record>* collection) {
  collection_ = collection;
  order_ = GlobalOrder();
  index_ = InvertedIndex();

  // First pass: generate pebbles and count frequencies.
  std::vector<std::vector<uint64_t>> keys_per_record(collection->size());
  std::vector<RecordPebbles> all(collection->size());
  for (size_t i = 0; i < collection->size(); ++i) {
    all[i] = generator_.Generate((*collection)[i], &gram_dict_);
    order_.CountRecord(all[i]);
    std::vector<uint64_t> keys;
    keys.reserve(all[i].pebbles.size());
    for (const Pebble& p : all[i].pebbles) keys.push_back(p.key);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    keys_per_record[i] = std::move(keys);
  }
  order_.Finalize();
  for (size_t i = 0; i < collection->size(); ++i) {
    index_.Add(static_cast<uint32_t>(i), keys_per_record[i]);
  }
}

std::vector<uint32_t> UnifiedSearcher::Candidates(
    const Record& query, const SearchOptions& options) {
  RecordPebbles rp = generator_.Generate(query, &gram_dict_);
  order_.SortPebbles(&rp);
  SignatureOptions sig_options;
  sig_options.theta = options.theta;
  sig_options.tau = options.tau;
  sig_options.method = options.method;
  Signature sig = SelectSignature(rp, query.num_tokens(), sig_options);

  std::unordered_map<uint32_t, int> overlap;
  for (uint64_t key : sig.keys) {
    const std::vector<uint32_t>* postings = index_.Find(key);
    if (postings == nullptr) continue;
    for (uint32_t id : *postings) ++overlap[id];
  }
  std::vector<uint32_t> out;
  for (const auto& [id, count] : overlap) {
    if (count >= sig.effective_tau) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::Search(
    const Record& query, const SearchOptions& options) {
  std::vector<Match> matches;
  if (collection_ == nullptr) return matches;
  UsimOptions usim_options;
  usim_options.msim = msim_;
  UsimComputer computer(knowledge_, usim_options);
  for (uint32_t id : Candidates(query, options)) {
    double sim = computer.Approx(query, (*collection_)[id]);
    if (sim >= options.theta) matches.push_back(Match{id, sim});
  }
  std::sort(matches.begin(), matches.end(), [](const Match& a,
                                               const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  return matches;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::TopK(
    const Record& query, size_t k, double min_theta,
    const SearchOptions& options) {
  SearchOptions opts = options;
  opts.theta = min_theta;
  std::vector<Match> all = Search(query, opts);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace aujoin
