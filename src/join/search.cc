#include "join/search.h"

#include <algorithm>
#include <utility>

#include "index/csr_index.h"

namespace aujoin {
namespace {

/// The one total order of search results: similarity desc, id asc.
bool BetterMatch(const UnifiedSearcher::Match& a,
                 const UnifiedSearcher::Match& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.id < b.id;
}

}  // namespace

void UnifiedSearcher::Index(const std::vector<Record>* collection) {
  index_ = PreparedIndex::Build(knowledge_, msim_, *collection, nullptr);
}

std::vector<uint32_t> UnifiedSearcher::Candidates(
    const Record& query, const SearchOptions& options) const {
  RecordPebbles rp = index_->GenerateQueryPebbles(query);
  SignatureOptions sig_options;
  sig_options.theta = options.theta;
  sig_options.tau = options.tau;
  sig_options.method = options.method;
  Signature sig = SelectSignature(rp, query.num_tokens(), sig_options);

  // Count-based merge over the frozen CSR serving index. The scratch is
  // thread_local — sized once per thread to the collection, epoch-stamped
  // so each query starts in O(1) — which is what makes Search const and
  // concurrency-safe while still allocation-free on the hot path (a
  // batch worker reuses one accumulator across its whole query slice).
  // Deliberate trade-off: the arrays only grow (~8 bytes per indexed
  // record per serving thread) and live until the thread exits, even if
  // the index is dropped — acceptable for pooled serving threads, and
  // the join path's scoped per-worker accumulators show the bounded
  // alternative if a caller ever needs one.
  const CsrIndex& serving = index_->ServingIndex();
  thread_local CandidateAccumulator overlap;
  overlap.Begin(index_->t_prepared().size());
  // Resolve the whole signature's keys in one batched sweep (hashes
  // pipelined, home slots prefetched) before merging the runs.
  const CsrIndex::Postings* runs =
      overlap.ResolveRuns(serving, sig.keys.data(), sig.keys.size());
  for (size_t k = 0; k < sig.keys.size(); ++k) {
    overlap.BumpRun(runs[k].data, runs[k].size);
  }
  // Query signatures carry one uniform effective tau, so the survivor
  // scan is the kernel's flat count >= threshold select.
  CandidateAccumulator::IdSpan kept =
      overlap.SelectGE(static_cast<uint32_t>(sig.effective_tau));
  std::vector<uint32_t> out(kept.begin(), kept.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::VerifyCandidates(
    const Record& query, const SearchOptions& options,
    QueryStats* stats) const {
  std::vector<Match> matches;
  if (index_ == nullptr) return matches;
  if (stats != nullptr) ++stats->queries;
  // An empty query has no segments, hence no pebbles and USIM 0 against
  // everything; return before signature selection sees a zero-token
  // record.
  if (query.num_tokens() == 0) return matches;
  // Per-query scratch state only from here on: one UsimComputer (whose
  // gram cache is not thread-safe).
  UsimOptions usim_options;
  usim_options.msim = msim_;
  UsimComputer computer(knowledge_, usim_options);
  const std::vector<Record>& collection = index_->t_records();
  std::vector<uint32_t> candidates = Candidates(query, options);
  if (stats != nullptr) stats->candidates += candidates.size();
  for (uint32_t id : candidates) {
    double sim = computer.Approx(query, collection[id]);
    if (sim >= options.theta) matches.push_back(Match{id, sim});
  }
  return matches;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::Search(
    const Record& query, const SearchOptions& options,
    QueryStats* stats) const {
  std::vector<Match> matches = VerifyCandidates(query, options, stats);
  std::sort(matches.begin(), matches.end(), BetterMatch);
  return matches;
}

std::vector<UnifiedSearcher::Match> UnifiedSearcher::TopK(
    const Record& query, size_t k, double min_theta,
    const SearchOptions& options, QueryStats* stats) const {
  if (k == 0) {
    // Still a query: count it, answer nothing.
    if (stats != nullptr) ++stats->queries;
    return {};
  }
  SearchOptions opts = options;
  opts.theta = min_theta;
  std::vector<Match> matches = VerifyCandidates(query, opts, stats);
  // Bounded sort for k << matches: BetterMatch is a strict total order
  // (similarity desc, id asc — ids are distinct), so the k-prefix of a
  // partial sort is byte-identical to the k-prefix of the full sort,
  // including tie-breaks at the cut boundary.
  if (matches.size() > k) {
    std::partial_sort(matches.begin(),
                      matches.begin() + static_cast<ptrdiff_t>(k),
                      matches.end(), BetterMatch);
    matches.resize(k);
  } else {
    std::sort(matches.begin(), matches.end(), BetterMatch);
  }
  return matches;
}

}  // namespace aujoin
