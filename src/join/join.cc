#include "join/join.h"

#include <algorithm>

#include "index/csr_index.h"
#include "index/inverted_index.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace aujoin {

void JoinContext::Prepare(const std::vector<Record>& s,
                          const std::vector<Record>* t) {
  index_ = PreparedIndex::Build(knowledge_, msim_, s, t);
}

void JoinContext::Adopt(std::shared_ptr<const PreparedIndex> index) {
  index_ = std::move(index);
  knowledge_ = index_->knowledge();
  msim_ = index_->msim_options();
}

JoinContext::FilterOutput JoinContext::RunFilter(
    const SignatureOptions& sig_options,
    const std::vector<uint32_t>* s_subset,
    const std::vector<uint32_t>* t_subset, int num_threads) const {
  FilterOutput out;
  const auto& s_prep = s_prepared();
  const auto& t_prep = t_prepared();
  const bool self = self_join();

  // Materialise the record index lists.
  std::vector<uint32_t> s_ids, t_ids;
  if (s_subset != nullptr) {
    s_ids = *s_subset;
  } else {
    s_ids.resize(s_prep.size());
    for (uint32_t i = 0; i < s_prep.size(); ++i) s_ids[i] = i;
  }
  if (t_subset != nullptr) {
    t_ids = *t_subset;
  } else if (self && s_subset != nullptr) {
    t_ids = s_ids;
  } else {
    t_ids.resize(t_prep.size());
    for (uint32_t i = 0; i < t_prep.size(); ++i) t_ids[i] = i;
  }

  // Signature selection (read-only over the prepared records, so chunks
  // are embarrassingly parallel).
  WallTimer timer;
  std::vector<Signature> s_sigs(s_ids.size());
  std::vector<Signature> t_sigs;
  ParallelFor(s_ids.size(), num_threads,
              [&](size_t begin, size_t end, int /*worker*/) {
                for (size_t i = begin; i < end; ++i) {
                  const PreparedRecord& pr = s_prep[s_ids[i]];
                  s_sigs[i] = SelectSignature(pr.pebbles, pr.num_tokens,
                                              sig_options);
                }
              });
  const bool same_side = self && s_ids == t_ids;
  if (!same_side) {
    t_sigs.resize(t_ids.size());
    ParallelFor(t_ids.size(), num_threads,
                [&](size_t begin, size_t end, int /*worker*/) {
                  for (size_t j = begin; j < end; ++j) {
                    const PreparedRecord& pr = t_prep[t_ids[j]];
                    t_sigs[j] = SelectSignature(pr.pebbles, pr.num_tokens,
                                                sig_options);
                  }
                });
  }
  uint64_t total_sig_pebbles = 0;
  for (const Signature& sig : s_sigs) total_sig_pebbles += sig.prefix_len;
  for (const Signature& sig : t_sigs) total_sig_pebbles += sig.prefix_len;
  const std::vector<Signature>& t_side = same_side ? s_sigs : t_sigs;
  size_t sig_count = s_ids.size() + (same_side ? 0 : t_ids.size());
  out.avg_signature_pebbles =
      sig_count == 0 ? 0.0
                     : static_cast<double>(total_sig_pebbles) /
                           static_cast<double>(sig_count);
  out.signature_seconds = timer.Seconds();

  // Candidate generation: index T's signatures by *position* in t_ids
  // (dense 0..|T|-1, so counts live in flat arrays and the position
  // doubles as the handle to the indexed signature's effective tau),
  // freeze the staging map into CSR form, probe S. Each probe merges
  // whole posting runs into a reusable epoch-stamped scratch and
  // selects survivors by required overlap, both through the
  // runtime-dispatched batch kernels (src/kernels/) — sequential
  // vectorized scans of contiguous runs instead of per-key hash
  // lookups and hash-map dedup.
  timer.Restart();
  InvertedIndex staging;
  for (size_t j = 0; j < t_ids.size(); ++j) {
    staging.Add(static_cast<uint32_t>(j), t_side[j].keys);
  }
  const CsrIndex index = CsrIndex::Freeze(staging);
  // The indexed side's effective taus by position, for the kernel's
  // min(probe, indexed) required-overlap select.
  std::vector<uint32_t> t_eff(t_ids.size());
  for (size_t j = 0; j < t_ids.size(); ++j) {
    t_eff[j] = static_cast<uint32_t>(t_side[j].effective_tau);
  }
  // When T is the whole collection in id order, position j IS record
  // id j, and posting runs are ascending — a self-join's "skip pairs
  // with t <= s" becomes a prefix cut instead of a per-posting branch.
  const bool t_dense = t_subset == nullptr && !(self && s_subset != nullptr);
  // Probe phase: chunks of S records, per-worker outputs merged after.
  const int probe_workers = ResolveThreads(num_threads);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> worker_candidates(
      probe_workers);
  std::vector<uint64_t> worker_processed(probe_workers, 0);
  std::vector<CandidateAccumulator> accumulators(probe_workers);
  ParallelFor(
      s_ids.size(), num_threads,
      [&](size_t begin, size_t end, int worker) {
        CandidateAccumulator& overlap = accumulators[worker];
        const uint32_t* t_map = t_ids.data();
        for (size_t i = begin; i < end; ++i) {
          overlap.Begin(t_ids.size());
          uint32_t s_id = s_ids[i];
          // Resolve the whole signature's keys in one batched sweep
          // (hashes pipelined, home slots prefetched) before merging.
          const size_t num_keys = s_sigs[i].keys.size();
          const CsrIndex::Postings* runs =
              overlap.ResolveRuns(index, s_sigs[i].keys.data(), num_keys);
          for (size_t k = 0; k < num_keys; ++k) {
            const CsrIndex::Postings run = runs[k];
            if (run.empty()) continue;
            if (!self) {
              worker_processed[worker] += run.size;
              overlap.BumpRun(run.data, run.size);
            } else if (t_dense) {
              // Dedupe self pairs: drop the ascending run's prefix of
              // positions (== record ids) <= s_id in one cut.
              const uint32_t* cut =
                  std::upper_bound(run.begin(), run.end(), s_id);
              const size_t kept = static_cast<size_t>(run.end() - cut);
              worker_processed[worker] += kept;
              overlap.BumpRun(cut, kept);
            } else {
              // Subset self-join: positions map through t_map, so the
              // pair dedup stays a per-posting predicate.
              for (uint32_t j : run) {
                if (t_map[j] <= s_id) continue;
                ++worker_processed[worker];
                overlap.Bump(j);
              }
            }
          }
          const uint32_t probe_tau =
              static_cast<uint32_t>(s_sigs[i].effective_tau);
          for (uint32_t j : overlap.SelectMergedGE(t_eff.data(), probe_tau)) {
            worker_candidates[worker].emplace_back(s_id, t_map[j]);
          }
        }
      });
  for (int w = 0; w < probe_workers; ++w) {
    out.processed_pairs += worker_processed[w];
    out.candidates.insert(out.candidates.end(), worker_candidates[w].begin(),
                          worker_candidates[w].end());
  }
  out.filter_seconds = timer.Seconds();
  return out;
}

void VerifyCandidates(
    const JoinContext& context, const JoinOptions& options,
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    JoinResult* result) {
  WallTimer timer;
  UsimOptions usim_options = options.usim;
  usim_options.msim = context.msim_options();
  const auto& s_records = context.s_records();
  const auto& t_records = context.t_records();

  const int workers = ResolveThreads(options.num_threads);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> worker_pairs(
      workers);
  ParallelFor(
      candidates.size(), options.num_threads,
      [&](size_t begin, size_t end, int worker) {
        // One computer (and gram cache) per worker; MsimEvaluator is not
        // thread-safe.
        UsimComputer computer(context.knowledge(), usim_options);
        for (size_t c = begin; c < end; ++c) {
          const auto& [si, ti] = candidates[c];
          if (computer.evaluator()->CacheSize() >
              options.cache_evict_threshold) {
            computer.evaluator()->ClearCache();
          }
          // Verification only needs the predicate, so Algorithm 1 may
          // stop as soon as theta is reached.
          double sim = computer.Approx(s_records[si], t_records[ti],
                                       options.theta);
          if (sim >= options.theta) {
            worker_pairs[worker].emplace_back(si, ti);
          }
        }
      });
  for (int w = 0; w < workers; ++w) {
    result->pairs.insert(result->pairs.end(), worker_pairs[w].begin(),
                         worker_pairs[w].end());
  }
  // Deterministic output regardless of the worker split.
  std::sort(result->pairs.begin(), result->pairs.end());
  result->stats.verify_seconds += timer.Seconds();
  result->stats.results = result->pairs.size();
}

JoinResult UnifiedJoin(const JoinContext& context,
                       const JoinOptions& options) {
  JoinResult result;
  SignatureOptions sig_options;
  sig_options.theta = options.theta;
  sig_options.tau = options.tau;
  sig_options.method = options.method;
  sig_options.exact_min_partition = options.exact_min_partition;

  JoinContext::FilterOutput filtered =
      context.RunFilter(sig_options, nullptr, nullptr, options.num_threads);
  result.stats.prepare_seconds = context.prepare_seconds();
  result.stats.signature_seconds = filtered.signature_seconds;
  result.stats.filter_seconds = filtered.filter_seconds;
  result.stats.processed_pairs = filtered.processed_pairs;
  result.stats.candidates = filtered.candidates.size();
  result.stats.avg_signature_pebbles = filtered.avg_signature_pebbles;

  VerifyCandidates(context, options, filtered.candidates, &result);
  return result;
}

}  // namespace aujoin
