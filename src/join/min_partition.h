#ifndef AUJOIN_JOIN_MIN_PARTITION_H_
#define AUJOIN_JOIN_MIN_PARTITION_H_

#include <cstddef>
#include <vector>

#include "core/segment.h"

namespace aujoin {

/// The paper's GetMinPartitionSize (Algorithm 2, Lines 6-12): greedy
/// maximum-coverage over well-defined segments followed by the
/// Johnson [28] set-cover bound m = ceil(|A| / (ln n + 1)), where n is the
/// token count of the largest segment. Always a valid lower bound on the
/// number of segments in any well-defined partition.
int GreedyMinPartitionSize(const std::vector<WellDefinedSegment>& segments,
                           size_t num_tokens);

/// Exact minimum number of segments in any well-defined partition.
/// Because well-defined segments are *consecutive* token spans, the
/// minimum exact cover is a shortest-path DP over token positions —
/// polynomial, and a tighter (hence more pruning-effective) lower bound
/// than the greedy estimate. Used by default; the greedy variant is kept
/// for paper fidelity and as an ablation.
int ExactMinPartitionSize(const std::vector<WellDefinedSegment>& segments,
                          size_t num_tokens);

}  // namespace aujoin

#endif  // AUJOIN_JOIN_MIN_PARTITION_H_
