#include "join/pebble.h"

#include <cmath>

#include "text/qgram.h"
#include "util/hash.h"

namespace aujoin {

RecordPebbles PebbleGenerator::Generate(const Record& record,
                                        Vocabulary* gram_dict) const {
  RecordPebbles rp;
  rp.segments = EnumerateSegments(record, knowledge_);
  for (uint32_t seg_idx = 0; seg_idx < rp.segments.size(); ++seg_idx) {
    const WellDefinedSegment& seg = rp.segments[seg_idx];
    // Exact-span pebbles witness the equality contribution of
    // MsimOptions::exact_match. When the Jaccard measure is enabled they
    // are redundant for the filter bound — identical texts share all
    // their grams, whose weights sum to exactly 1.0 — and their 1.0
    // weight would inflate the TW/W insertion bounds of Lemmas 1-2,
    // shrinking the feasible tau. So they are emitted only when no gram
    // pebbles exist to witness equality.
    if (options_.exact_match && !(options_.measures & kMeasureJaccard)) {
      TokenSpan span = record.Span(seg.span.begin, seg.span.end);
      uint64_t h = HashTokenSpan(span.data(), span.size());
      rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kExact, h), 1.0,
                                  seg_idx, kMeasureExactBit});
    }
    if (options_.measures & kMeasureJaccard) {
      std::string text = SegmentText(record, seg.span, *knowledge_.vocab);
      std::vector<std::string> grams = QGrams(text, options_.q);
      if (!grams.empty()) {
        // Per-gram contribution bound: sim <= sum of shared grams' min
        // side weight, with weight 1/|G| for Jaccard/Dice and
        // 1/sqrt(|G|) for Cosine (see GramMeasure).
        double w =
            options_.gram_measure == GramMeasure::kCosine
                ? 1.0 / std::sqrt(static_cast<double>(grams.size()))
                : 1.0 / static_cast<double>(grams.size());
        for (const auto& gram : grams) {
          uint64_t gid = gram_dict->Intern(gram);
          rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kGram, gid),
                                      w, seg_idx, kMeasureJaccard});
        }
      }
    }
    if ((options_.measures & kMeasureSynonym) && seg.HasSynonym()) {
      for (const RuleMatch& m : seg.rule_matches) {
        double w = knowledge_.rules->rule(m.rule).closeness;
        rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kSynonym,
                                                  m.rule),
                                    w, seg_idx, kMeasureSynonym});
      }
    }
    if ((options_.measures & kMeasureTaxonomy) && seg.HasTaxonomy()) {
      for (NodeId n : seg.taxonomy_nodes) {
        double w = 1.0 / static_cast<double>(knowledge_.taxonomy->Depth(n));
        for (NodeId a : knowledge_.taxonomy->AncestorsInclusive(n)) {
          rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kTaxonomy, a),
                                      w, seg_idx, kMeasureTaxonomy});
        }
      }
    }
  }
  return rp;
}

}  // namespace aujoin
