#ifndef AUJOIN_JOIN_SIGNATURE_H_
#define AUJOIN_JOIN_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "index/pebble.h"

namespace aujoin {

/// Which signature-selection algorithm a join uses.
enum class FilterMethod {
  kUFilter,      // Algorithm 2 (one shared pebble suffices; tau forced to 1)
  kAuHeuristic,  // Algorithm 4 (Lemma 2, top-(tau-1) prefix bound)
  kAuDp,         // Algorithm 5 (tighter DP bound W_i[t, tau-1])
};

const char* FilterMethodName(FilterMethod m);

struct SignatureOptions {
  double theta = 0.8;
  /// Overlap constraint tau >= 1. U-Filter ignores it (behaves as tau=1).
  int tau = 1;
  FilterMethod method = FilterMethod::kAuDp;
  /// Use the exact DP minimum-partition lower bound MP(S) instead of the
  /// paper's greedy + Johnson-bound estimate (both are valid lower bounds;
  /// the exact one is tighter — see DESIGN.md).
  bool exact_min_partition = true;
};

/// A selected signature: the kept prefix length over the globally sorted
/// pebble list, plus the distinct keys inside it (what gets indexed).
///
/// `effective_tau` is the overlap requirement this signature actually
/// guarantees. When a string's similarity evidence is concentrated in
/// fewer than tau pebbles (e.g. one synonym rule spanning the whole
/// string), inequality (10)/(11) has no feasible boundary for the
/// requested tau — Lemma 2 presupposes one — so the selection lowers tau
/// until a boundary exists (tau' = 1 is always feasible). The join then
/// requires min(effective_tau_S, effective_tau_T) overlaps per pair,
/// which keeps the filter lossless.
struct Signature {
  size_t prefix_len = 0;
  int effective_tau = 1;
  std::vector<uint64_t> keys;  // sorted distinct keys of the kept prefix
};

/// The accumulated similarity AS(i, S) of Definition 4 for every i in
/// [1, n+1] (1-based; AS[n+1] = 0). `rp` must already be sorted by the
/// global order. Exposed for tests; the selection functions use it
/// internally.
std::vector<double> ComputeAccumulatedSimilarity(const RecordPebbles& rp);

/// MP(S): minimal number of well-defined partitions, per options.
int MinPartitionSize(const RecordPebbles& rp, size_t num_tokens,
                     bool exact_min_partition);

/// Selects the pebble signature of one record (rp sorted by global order).
Signature SelectSignature(const RecordPebbles& rp, size_t num_tokens,
                          const SignatureOptions& options);

/// The overlap a (probe, indexed) signature pair must witness before it
/// becomes a candidate: min of the two effective taus, so a record
/// whose selection had to lower its tau (see Signature::effective_tau)
/// never filters losslessly below what it guarantees. The count-based
/// candidate merge compares accumulated key counts against this.
inline int MergeRequiredOverlap(const Signature& probe,
                                const Signature& indexed) {
  return probe.effective_tau < indexed.effective_tau
             ? probe.effective_tau
             : indexed.effective_tau;
}

}  // namespace aujoin

#endif  // AUJOIN_JOIN_SIGNATURE_H_
