#ifndef AUJOIN_JOIN_PARTITION_H_
#define AUJOIN_JOIN_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aujoin {

/// A contiguous index range [begin, end) of one bound record collection.
struct Partition {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
};

/// A size-bounded sharding of one collection into contiguous partitions.
/// Contiguity keeps the partition→global index mapping a single offset
/// add, and lets the pipeline emit globally sorted matches stripe by
/// stripe (all firsts of stripe i precede all firsts of stripe i + 1).
struct PartitionPlan {
  std::vector<Partition> partitions;

  size_t num_partitions() const { return partitions.size(); }

  /// Shards [0, num_records) into the fewest balanced partitions of at
  /// most `max_partition_records` records each (sizes differ by at most
  /// one, so no straggler shard). `max_partition_records == 0` — and any
  /// bound at or above the collection size — yields one partition: the
  /// monolithic path.
  static PartitionPlan Shard(size_t num_records, size_t max_partition_records);
};

/// One unit of pipeline work: the cross product of an S partition and a
/// T partition (for self-joins, of two partitions of the same plan).
struct PartitionBlock {
  uint32_t s_part = 0;
  uint32_t t_part = 0;

  /// Self-join block over one partition (s_part == t_part); cross blocks
  /// keep only pairs straddling the two partitions, which is what makes
  /// partition-boundary dedup structural rather than hash-set based.
  bool diagonal() const { return s_part == t_part; }
};

/// Enumerates the blocks covering every record pair exactly once, in
/// stripe order (sorted by s_part, then t_part). Self-joins use the
/// upper triangle s_part <= t_part of one plan; R-S joins use the full
/// s_parts × t_parts grid.
std::vector<PartitionBlock> EnumerateBlocks(size_t s_parts, size_t t_parts,
                                            bool self_join);

}  // namespace aujoin

#endif  // AUJOIN_JOIN_PARTITION_H_
