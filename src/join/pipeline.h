#ifndef AUJOIN_JOIN_PIPELINE_H_
#define AUJOIN_JOIN_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>

#include "api/join_algorithm.h"
#include "api/match_sink.h"
#include "join/partition.h"
#include "shard/shard_plan.h"
#include "util/status.h"

namespace aujoin {

class Env;

/// Creates one algorithm instance; the pipeline calls it once per
/// partition block so stateful algorithms never run concurrently with
/// themselves. The Engine passes a registry lookup here, which keeps this
/// layer free of a registry dependency.
using AlgorithmFactory = std::function<std::unique_ptr<JoinAlgorithm>()>;

/// Execution policy of the blocked join pipeline. Two ways in: the
/// size-bounded partition mode (max_partition_records) and the
/// first-class shard mode (num_shards); both lower onto one ShardPlan
/// and share the block enumeration, execution and merge machinery.
struct PipelineOptions {
  /// Upper bound on records per partition; both sides of an R-S join are
  /// sharded with the same bound. Ignored when num_shards > 0; at least
  /// one of the two must be set (0/0 selects the monolithic path at the
  /// Engine level and never reaches the pipeline).
  size_t max_partition_records = 0;
  /// Worker count of the shared pool that runs blocks (ResolveThreads
  /// semantics: 0 = all hardware threads). Each block is
  /// single-threaded internally; parallelism comes from running blocks
  /// concurrently.
  int num_threads = 1;
  /// First-class shard mode: split the collection(s) into exactly this
  /// many shards (ShardPlan::Make) and enumerate shard-pair blocks.
  /// Takes precedence over max_partition_records.
  size_t num_shards = 0;
  /// Shard placement scheme of the shard mode (range keeps the
  /// stripe-streaming emission; hash models distributed placement and
  /// switches to collect-and-merge emission).
  ShardBy shard_by = ShardBy::kRange;
  /// Out-of-core budget: when > 0, the join buffers merged results and
  /// spills sorted runs to temp files in `spill_dir` once the buffer
  /// exceeds this many bytes, merging them back at emission — joins
  /// bigger than RAM degrade to sequential I/O instead of OOMing.
  /// 0 = never spill.
  size_t spill_budget_bytes = 0;
  /// Directory for spill temp files ("" = "."). Files are unlinked the
  /// moment they are mapped for merge-back, so nothing survives the
  /// join — crash included.
  std::string spill_dir;
  /// Storage environment for spill I/O (nullptr = Env::Default());
  /// tests inject a FaultInjectionEnv here.
  Env* env = nullptr;
};

/// Runs one join as a pipeline of shard-pair blocks.
///
/// The bound collection(s) are split under a ShardPlan — contiguous
/// size-bounded partitions (partition mode), or exactly num_shards
/// range/hash shards (shard mode) — and every shard pair becomes an
/// independent block: a self-contained prepare → candidate generation →
/// batched verification run over just that pair's record slices,
/// executed on a shared ThreadPool. Peak prepared-state memory is
/// bounded by the blocks in flight instead of the whole collection.
///
/// Result parity with the monolithic path is structural:
///  - self-joins run the upper triangle of blocks; a diagonal block
///    contributes its within-shard pairs, a cross block only pairs
///    straddling its two shards (via an R-S run when the algorithm
///    supports it, otherwise a concatenated self-join whose
///    within-shard pairs are dropped) — so every pair is produced by
///    exactly one block and boundary dedup needs no hash set;
///  - self-join pairs are normalised to (min, max) global ids, which is
///    a no-op on contiguous plans and makes hash plans agree with the
///    monolithic first < second contract;
///  - contiguous plans without a spill budget emit stripe by stripe
///    (sorted within each stripe) exactly as before; hash plans and
///    spilling joins collect every block's (disjoint) sorted pairs —
///    spilling sorted runs through the Env when over budget — and merge
///    them back in one globally ascending emission. Either way the sink
///    observes the MatchSink contract: globally ascending (first,
///    second), each pair exactly once, early termination honoured.
///
/// Stats: per-stage seconds are summed across blocks (aggregate work,
/// not wall time), counts are summed; `partitions`/`shards` +
/// `partition_blocks` record the plan shape and `spill_runs/pairs/bytes`
/// the out-of-core traffic. On early termination under stripe streaming
/// the stats cover the stripes emitted so far; the collect-and-merge
/// path has already run every block by emission time, so its stats
/// always cover the whole join.
Status RunPartitionedJoin(const AlgorithmFactory& factory,
                          const AlgorithmContext& context,
                          const EngineJoinOptions& options,
                          const PipelineOptions& pipeline_options,
                          MatchSink* sink, JoinStats* stats);

}  // namespace aujoin

#endif  // AUJOIN_JOIN_PIPELINE_H_
