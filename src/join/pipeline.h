#ifndef AUJOIN_JOIN_PIPELINE_H_
#define AUJOIN_JOIN_PIPELINE_H_

#include <functional>
#include <memory>

#include "api/join_algorithm.h"
#include "api/match_sink.h"
#include "join/partition.h"
#include "util/status.h"

namespace aujoin {

/// Creates one algorithm instance; the pipeline calls it once per
/// partition block so stateful algorithms never run concurrently with
/// themselves. The Engine passes a registry lookup here, which keeps this
/// layer free of a registry dependency.
using AlgorithmFactory = std::function<std::unique_ptr<JoinAlgorithm>()>;

/// Execution policy of the partitioned join pipeline.
struct PipelineOptions {
  /// Upper bound on records per partition; both sides of an R-S join are
  /// sharded with the same bound. Must be > 0 (0 selects the monolithic
  /// path at the Engine level and never reaches the pipeline).
  size_t max_partition_records = 0;
  /// Worker count of the shared pool that runs partition blocks
  /// (ResolveThreads semantics: 0 = all hardware threads). Each block is
  /// single-threaded internally; parallelism comes from running blocks
  /// concurrently.
  int num_threads = 1;
};

/// Runs one join as a pipeline of partition blocks.
///
/// The bound collection(s) are sharded into contiguous, size-bounded
/// partitions (PartitionPlan::Shard) and every partition pair becomes an
/// independent block: a self-contained prepare → candidate generation →
/// batched verification run over just that pair's records, executed on a
/// shared ThreadPool. Peak prepared-state memory is therefore bounded by
/// the blocks in flight (O(num_threads × max_partition_records) prepared
/// records) instead of the whole collection.
///
/// Result parity with the monolithic path is structural:
///  - self-joins run the upper triangle of blocks; a diagonal block
///    contributes its within-partition pairs, a cross block only pairs
///    straddling its two partitions (via an R-S run when the algorithm
///    supports it, otherwise a concatenated self-join whose
///    within-partition pairs are dropped) — so every pair is produced by
///    exactly one block and boundary dedup needs no hash set;
///  - blocks are merged a stripe (one S partition) at a time and each
///    stripe's union is sorted before emission, so the sink still
///    observes the MatchSink contract: globally ascending (first,
///    second), each pair exactly once, early termination honoured.
///
/// Stats: per-stage seconds are summed across blocks (aggregate work, not
/// wall time — with N pool workers the wall time is roughly the sum
/// divided by N), counts are summed, and `partitions` /
/// `partition_blocks` record the plan shape. On early termination the
/// stats cover the stripes emitted so far, mirroring the monolithic
/// contract.
Status RunPartitionedJoin(const AlgorithmFactory& factory,
                          const AlgorithmContext& context,
                          const EngineJoinOptions& options,
                          const PipelineOptions& pipeline_options,
                          MatchSink* sink, JoinStats* stats);

}  // namespace aujoin

#endif  // AUJOIN_JOIN_PIPELINE_H_
