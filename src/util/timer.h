#ifndef AUJOIN_UTIL_TIMER_H_
#define AUJOIN_UTIL_TIMER_H_

#include <chrono>

namespace aujoin {

/// Monotonic wall-clock stopwatch for the benchmark harnesses and the cost
/// model calibration.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aujoin

#endif  // AUJOIN_UTIL_TIMER_H_
