#ifndef AUJOIN_UTIL_PARALLEL_H_
#define AUJOIN_UTIL_PARALLEL_H_

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace aujoin {

/// Resolves a thread-count option: 0 means "all hardware threads",
/// anything else is clamped to [1, 256].
inline int ResolveThreads(int requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(requested, 1, 256);
}

/// Runs fn(begin, end, worker_index) over [0, n) split into contiguous
/// chunks, one per worker. Blocks until all workers finish. With one
/// worker (or tiny n) the call runs inline — no thread is spawned, which
/// keeps single-threaded paths allocation-free and easy to debug.
inline void ParallelFor(
    size_t n, int num_threads,
    const std::function<void(size_t, size_t, int)>& fn) {
  num_threads = ResolveThreads(num_threads);
  if (n == 0) return;
  size_t workers = std::min<size_t>(static_cast<size_t>(num_threads), n);
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back(fn, begin, end, static_cast<int>(w));
  }
  for (auto& t : threads) t.join();
}

}  // namespace aujoin

#endif  // AUJOIN_UTIL_PARALLEL_H_
