#ifndef AUJOIN_UTIL_PARALLEL_H_
#define AUJOIN_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aujoin {

/// Resolves a thread-count option: 0 means "all hardware threads",
/// anything else is clamped to [1, 256].
inline int ResolveThreads(int requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(requested, 1, 256);
}

/// A fixed-size worker pool draining a FIFO work queue. This is the one
/// parallel-execution primitive in the codebase: ParallelFor below chunks
/// onto a pool, and the partitioned join pipeline shares a single pool
/// across context preparation, candidate generation and verification of
/// every partition block.
///
/// Tasks must not call blocking pool operations (Submit-and-wait,
/// WaitIdle, ParallelFor) on the pool that runs them: with every worker
/// blocked waiting for queued work, no worker is left to drain the queue.
/// Nested data-parallel loops should run serially inside a task instead
/// (the pipeline runs per-block work with num_threads = 1 for exactly
/// this reason).
class ThreadPool {
 public:
  /// Spawns ResolveThreads(num_threads) workers.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  /// Runs fn(begin, end, chunk_index) over [0, n) split into contiguous
  /// chunks, one per worker, and blocks until all chunks finish. Safe to
  /// call while unrelated tasks are queued; chunk indexes are dense in
  /// [0, num_workers()).
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t, int)>& fn);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // signalled when work arrives / stops
  std::condition_variable idle_cv_;  // signalled when a task completes
  size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(begin, end, worker_index) over [0, n) split into contiguous
/// chunks, one per worker. Blocks until all workers finish. With one
/// worker (or tiny n) the call runs inline — no thread is spawned, which
/// keeps single-threaded paths allocation-free and easy to debug. Larger
/// runs delegate to a transient ThreadPool; long-lived callers that fan
/// out repeatedly should hold their own pool and use
/// ThreadPool::ParallelFor to amortise thread creation.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t, int)>& fn);

}  // namespace aujoin

#endif  // AUJOIN_UTIL_PARALLEL_H_
