#ifndef AUJOIN_UTIL_STATS_H_
#define AUJOIN_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace aujoin {

/// Numerically stable online mean/variance accumulator implementing the
/// recursive update of Eqs. (20)-(21) in the paper (Welford's algorithm;
/// the paper cites Finch [22]). Used by the tau-suggestion estimator.
class OnlineMeanVariance {
 public:
  /// Folds one observation into the running estimate.
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;

  /// Standard deviation of the sample.
  double stddev() const;

  /// Standard error of the mean: stddev / sqrt(n); 0 when n == 0.
  double standard_error() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the mean
};

/// Returns the p-th percentile (p in [0,100]) of `values` using linear
/// interpolation between closest ranks. The input is copied and sorted.
/// Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Two-sided Student's t quantile for the given confidence level (e.g.
/// 0.70 for the paper's Fig. 8 setting t* = 1.036) and degrees of freedom.
/// Implemented via a Cornish-Fisher style expansion of the normal quantile;
/// accurate to ~1e-3 for df >= 3, which is ample for stopping-rule use.
double StudentTQuantile(double confidence, int df);

}  // namespace aujoin

#endif  // AUJOIN_UTIL_STATS_H_
