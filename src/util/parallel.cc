#include "util/parallel.h"

#include <atomic>
#include <memory>
#include <utility>

namespace aujoin {

ThreadPool::ThreadPool(int num_threads) {
  int workers = ResolveThreads(num_threads);
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining work even when stopping, so the destructor's
      // contract ("drains outstanding tasks") holds.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  size_t workers = std::min<size_t>(static_cast<size_t>(num_workers()), n);
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  // Private completion state: WaitIdle would also wait on unrelated
  // queued tasks, so each loop tracks its own chunks.
  struct LoopState {
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t remaining;
  };
  auto state = std::make_shared<LoopState>();
  size_t chunk = (n + workers - 1) / workers;
  size_t chunks = 0;
  for (size_t begin = 0; begin < n; begin += chunk) ++chunks;
  state->remaining = chunks;
  for (size_t w = 0, begin = 0; begin < n; ++w, begin += chunk) {
    size_t end = std::min(n, begin + chunk);
    Submit([&fn, state, begin, end, w] {
      fn(begin, end, static_cast<int>(w));
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] { return state->remaining == 0; });
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  int workers =
      static_cast<int>(std::min<size_t>(ResolveThreads(num_threads), n));
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  ThreadPool pool(workers);
  pool.ParallelFor(n, fn);
}

}  // namespace aujoin
