#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace aujoin {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atoll(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> Flags::GetDoubleList(
    const std::string& key, const std::vector<double>& defaults) const {
  auto it = values_.find(key);
  if (it == values_.end()) return defaults;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atof(item.c_str()));
  }
  return out.empty() ? defaults : out;
}

std::vector<int64_t> Flags::GetIntList(
    const std::string& key, const std::vector<int64_t>& defaults) const {
  auto it = values_.find(key);
  if (it == values_.end()) return defaults;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atoll(item.c_str()));
  }
  return out.empty() ? defaults : out;
}

}  // namespace aujoin
