#include "util/json.h"

#include <cinttypes>
#include <cstdio>

namespace aujoin {

void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

void AppendJsonUint(uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendJsonKey(const std::string& key, std::string* out) {
  AppendJsonString(key, out);
  *out += ": ";
}

}  // namespace aujoin
