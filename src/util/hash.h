#ifndef AUJOIN_UTIL_HASH_H_
#define AUJOIN_UTIL_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace aujoin {

/// 64-bit FNV-1a over raw bytes; used to key token spans (rule sides,
/// taxonomy entity names) in hash maps.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashBytes(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Hash of a span of 32-bit token ids.
inline uint64_t HashTokenSpan(const uint32_t* tokens, size_t count) {
  return Fnv1a64(tokens, count * sizeof(uint32_t));
}

/// boost::hash_combine-style mixing for composing hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// SplitMix64 finaliser — a full-avalanche mix of one 64-bit value.
/// Used to assign records to hash shards: consecutive record ids
/// scatter uniformly instead of landing in the same shard, and the
/// assignment is a pure function of the id, stable across runs and
/// platforms.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace aujoin

#endif  // AUJOIN_UTIL_HASH_H_
