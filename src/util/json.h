#ifndef AUJOIN_UTIL_JSON_H_
#define AUJOIN_UTIL_JSON_H_

#include <cstdint>
#include <string>

namespace aujoin {

/// Minimal JSON serialisation helpers shared by every component that
/// emits machine-readable output (the bench harness's BENCH_*.json,
/// the dataset manifest, the aujoin CLI stats). Append-style so callers
/// compose documents into one growing string without intermediate
/// allocations.

/// Appends `value` as a JSON string literal: quotes, backslashes and
/// control bytes escaped per RFC 8259.
void AppendJsonString(const std::string& value, std::string* out);

/// Appends a double with enough precision to round-trip benchmark
/// timings ("%.9g"); always valid JSON (no trailing point ambiguity —
/// 1e+06 and 42 are both numeric tokens).
void AppendJsonDouble(double value, std::string* out);

/// Appends an unsigned integer.
void AppendJsonUint(uint64_t value, std::string* out);

/// Appends `"key": ` (the key quoted, ready for a value append).
void AppendJsonKey(const std::string& key, std::string* out);

}  // namespace aujoin

#endif  // AUJOIN_UTIL_JSON_H_
