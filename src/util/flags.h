#ifndef AUJOIN_UTIL_FLAGS_H_
#define AUJOIN_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace aujoin {

/// Minimal `--key=value` / `--flag` command-line parser for the benchmark
/// harnesses and examples. Unknown keys are kept and queryable so every
/// binary can expose its own knobs without a registry.
class Flags {
 public:
  /// Parses argv; arguments not starting with "--" are collected as
  /// positional.
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Comma-separated list of doubles, e.g. --theta=0.75,0.85,0.95.
  std::vector<double> GetDoubleList(const std::string& key,
                                    const std::vector<double>& defaults) const;
  /// Comma-separated list of integers.
  std::vector<int64_t> GetIntList(const std::string& key,
                                  const std::vector<int64_t>& defaults) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace aujoin

#endif  // AUJOIN_UTIL_FLAGS_H_
