#ifndef AUJOIN_UTIL_RNG_H_
#define AUJOIN_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace aujoin {

/// Deterministic pseudo-random source used by the data generators, the
/// Bernoulli sampler, and the tests. Wraps a 64-bit Mersenne twister so
/// experiment runs are reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric-like skewed index in [0, n): probability proportional to
  /// 1/(rank+1)^alpha (a Zipf draw via rejection-free inverse CDF table is
  /// overkill here; we use a simple power transform that preserves skew).
  size_t Zipf(size_t n, double alpha = 1.0) {
    if (n <= 1) return 0;
    // Inverse-transform on a truncated Pareto: rank ~ u^(1/(1-alpha'))
    // with alpha' < 1 mapped smoothly; clamp to the domain.
    double u = UniformReal();
    double x = std::pow(u, alpha + 1.0);  // denser near 0 as alpha grows
    size_t idx = static_cast<size_t>(x * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson draw (>= 0).
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element index weighted by `weights` (must be non-empty,
  /// non-negative, not all zero).
  size_t WeightedPick(const std::vector<double>& weights) {
    return std::discrete_distribution<size_t>(weights.begin(),
                                              weights.end())(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aujoin

#endif  // AUJOIN_UTIL_RNG_H_
