#include "util/io.h"

#include <fstream>
#include <sstream>

namespace aujoin {

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(line);
  }
  return lines;
}

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& line : lines) out << line << '\n';
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, delim)) out.push_back(item);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

}  // namespace aujoin
