/// \file
/// A 64-byte-aligned flat buffer for hot-path scratch arrays. The
/// vectorized kernels (src/kernels/) read and write these arrays with
/// full-width SIMD loads and stores; cache-line alignment keeps a
/// 64-byte vector access inside one line and lets the compiler emit
/// aligned instructions where it can prove the base pointer. This is
/// deliberately not a std::vector replacement: elements must be
/// trivial, growth zero-fills, and there is no per-element
/// construction — exactly the contract of a count/stamp scratch array.

#ifndef AUJOIN_UTIL_ALIGNED_BUFFER_H_
#define AUJOIN_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <utility>

namespace aujoin {

/// Cache-line alignment of every AlignedBuffer allocation, matching
/// the widest vector width the kernel layer dispatches to (AVX-512)
/// and the x86/ARM cache-line size.
inline constexpr size_t kCacheLineBytes = 64;

/// Fixed-alignment buffer of trivially copyable elements. Resize
/// preserves existing contents and zero-fills the newly exposed tail;
/// shrinking only trims the visible size (capacity never decreases,
/// the reuse pattern of per-thread probe scratch).
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer elements are moved with memcpy");
  static_assert(kCacheLineBytes % alignof(T) == 0,
                "element alignment must divide the cache line");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) { Resize(n); }
  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  /// Grows (zero-filling the new tail) or trims the visible size.
  /// Growth allocates geometrically so amortised Resize is O(1).
  void Resize(size_t n) {
    if (n > capacity_) {
      size_t new_capacity = capacity_ == 0 ? 64 : capacity_;
      while (new_capacity < n) new_capacity *= 2;
      // aligned_alloc requires the byte size to be a multiple of the
      // alignment; the capacity round-up below guarantees it.
      size_t bytes =
          ((new_capacity * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
          kCacheLineBytes;
      T* grown = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
      if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
      std::free(data_);
      data_ = grown;
      capacity_ = bytes / sizeof(T);
    }
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  /// Zeroes the visible range (capacity keeps whatever bytes it had).
  void ZeroFill() {
    if (size_ > 0) std::memset(data_, 0, size_ * sizeof(T));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_UTIL_ALIGNED_BUFFER_H_
