#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace aujoin {

void OnlineMeanVariance::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineMeanVariance::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMeanVariance::stddev() const { return std::sqrt(variance()); }

double OnlineMeanVariance::standard_error() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

// Inverse CDF of the standard normal (Acklam's rational approximation,
// max relative error ~1.15e-9).
double NormalQuantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

double StudentTQuantile(double confidence, int df) {
  if (confidence <= 0) return 0.0;
  if (confidence >= 1) confidence = 0.999999;
  if (df < 1) df = 1;
  // Two-sided: quantile at 1 - (1-conf)/2.
  double p = 1.0 - (1.0 - confidence) / 2.0;
  double z = NormalQuantile(p);
  // Cornish-Fisher expansion t ~= z + (z^3+z)/(4 df) + higher-order terms.
  double n = static_cast<double>(df);
  double z3 = z * z * z;
  double z5 = z3 * z * z;
  double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4 * n) +
             (5 * z5 + 16 * z3 + 3 * z) / (96 * n * n) +
             (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / (384 * n * n * n);
  return t;
}

}  // namespace aujoin
