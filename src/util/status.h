#ifndef AUJOIN_UTIL_STATUS_H_
#define AUJOIN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace aujoin {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of status-object error handling: no exceptions cross public
/// API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  /// On-disk data failed validation: bad magic, checksum mismatch,
  /// truncation, malformed section layout. Distinct from kIoError (the
  /// OS could not read the bytes) and from kFailedPrecondition (the
  /// bytes are valid but describe a different world). RocksDB draws the
  /// same line with Status::Corruption.
  kCorruption,
};

/// Lightweight status object. Cheap to copy in the OK case (no allocation);
/// error statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "code: message".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T> holds either a value or an error status (a minimal
/// StatusOr). Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps
  /// call sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define AUJOIN_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::aujoin::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace aujoin

#endif  // AUJOIN_UTIL_STATUS_H_
