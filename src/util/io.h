#ifndef AUJOIN_UTIL_IO_H_
#define AUJOIN_UTIL_IO_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace aujoin {

/// Reads a whole text file into lines (stripping trailing '\r'/'\n').
Result<std::vector<std::string>> ReadLines(const std::string& path);

/// Writes lines to a file, one per line. Overwrites.
Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines);

/// Splits `s` on a single-character delimiter; keeps empty fields.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Joins strings with a delimiter.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& delim);

}  // namespace aujoin

#endif  // AUJOIN_UTIL_IO_H_
