#include "tuner/estimator.h"

namespace aujoin {

BernoulliSample DrawBernoulliSample(size_t s_size, size_t t_size, bool self,
                                    double ps, double pt, Rng* rng) {
  BernoulliSample sample;
  for (uint32_t i = 0; i < s_size; ++i) {
    if (rng->Bernoulli(ps)) sample.s_ids.push_back(i);
  }
  if (self) {
    sample.t_ids = sample.s_ids;
  } else {
    for (uint32_t j = 0; j < t_size; ++j) {
      if (rng->Bernoulli(pt)) sample.t_ids.push_back(j);
    }
  }
  return sample;
}

void AccumulateSampleEstimate(const JoinContext& context,
                              const SignatureOptions& sig_options,
                              const BernoulliSample& sample, double ps,
                              double pt, TauEstimator* estimator) {
  JoinContext::FilterOutput out =
      context.RunFilter(sig_options, &sample.s_ids, &sample.t_ids);
  double scale = 1.0 / (ps * pt);
  estimator->t_hat.Add(static_cast<double>(out.processed_pairs) * scale);
  estimator->v_hat.Add(static_cast<double>(out.candidates.size()) * scale);
  estimator->last_raw_processed = out.processed_pairs;
}

}  // namespace aujoin
