#ifndef AUJOIN_TUNER_COST_MODEL_H_
#define AUJOIN_TUNER_COST_MODEL_H_

#include <cstdint>

#include "join/join.h"

namespace aujoin {

/// The per-unit costs of Eq. (15): c_f seconds per processed pair during
/// filtering and c_v seconds per verification. The paper treats both as
/// constants insensitive to tau.
struct CostModel {
  double cf = 2e-8;
  double cv = 2e-5;

  /// Eq. (15): total predicted cost for given cardinalities.
  double Cost(double t_tau, double v_tau) const {
    return cf * t_tau + cv * v_tau;
  }
};

/// Measures c_f and c_v on a small slice of the prepared collections: runs
/// the filter stage over `calibration_records` records per side and times
/// per processed pair, then verifies up to `calibration_verifications`
/// candidate (or random) pairs and times per verification. Falls back to
/// the defaults when the slice produces no work.
CostModel CalibrateCostModel(const JoinContext& context,
                             const JoinOptions& options,
                             size_t calibration_records = 256,
                             size_t calibration_verifications = 64,
                             uint64_t seed = 7);

}  // namespace aujoin

#endif  // AUJOIN_TUNER_COST_MODEL_H_
