#include "tuner/recommend.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"
#include "util/timer.h"

namespace aujoin {

TauRecommendation RecommendTau(const JoinContext& context,
                               const CostModel& cost_model,
                               const TunerOptions& options) {
  WallTimer timer;
  TauRecommendation rec;
  const size_t num_taus = options.tau_universe.size();
  rec.estimated_cost.assign(num_taus, 0.0);
  if (num_taus == 0) return rec;
  if (num_taus == 1) {
    rec.best_tau = options.tau_universe[0];
    rec.converged = true;
    rec.seconds = timer.Seconds();
    return rec;
  }

  Rng rng(options.seed);
  std::vector<TauEstimator> estimators(num_taus);
  const double ps = options.sample_prob_s;
  const double pt = context.self_join() ? options.sample_prob_s
                                        : options.sample_prob_t;

  SignatureOptions sig;
  sig.theta = options.theta;
  sig.method = options.method;
  sig.exact_min_partition = options.exact_min_partition;

  int n = 0;
  while (n < options.max_iterations) {
    ++n;
    BernoulliSample sample = DrawBernoulliSample(
        context.s_prepared().size(), context.t_prepared().size(),
        context.self_join(), ps, pt, &rng);
    for (size_t k = 0; k < num_taus; ++k) {
      sig.tau = options.tau_universe[k];
      AccumulateSampleEstimate(context, sig, sample, ps, pt, &estimators[k]);
    }
    if (n < options.min_iterations) continue;

    // Confidence intervals (Eq. 23).
    double t_star = StudentTQuantile(options.confidence, n - 1);
    size_t best_idx = 0;
    double best_mean = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < num_taus; ++k) {
      double mean = estimators[k].CostMean(cost_model.cf, cost_model.cv);
      rec.estimated_cost[k] = mean;
      if (mean < best_mean) {
        best_mean = mean;
        best_idx = k;
      }
    }
    auto half_width = [&](size_t k) {
      double var = estimators[k].CostVariance(cost_model.cf, cost_model.cv);
      return t_star * std::sqrt(var / static_cast<double>(n));
    };
    double upper_best = best_mean + half_width(best_idx);
    double lowest_other = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < num_taus; ++k) {
      if (k == best_idx) continue;
      lowest_other = std::min(
          lowest_other, rec.estimated_cost[k] - half_width(k));
    }

    // Ineq. (24): worst-case regret vs. the cost of one more iteration,
    // forecast from the latest sample's raw processed-pair counts.
    double next_iteration_cost = 0.0;
    for (const auto& est : estimators) {
      next_iteration_cost +=
          cost_model.cf * static_cast<double>(est.last_raw_processed);
    }
    if (upper_best - lowest_other < next_iteration_cost) {
      rec.best_tau = options.tau_universe[best_idx];
      rec.converged = true;
      break;
    }
    rec.best_tau = options.tau_universe[best_idx];
  }
  rec.iterations = n;
  rec.seconds = timer.Seconds();
  return rec;
}

JoinResult JoinWithSuggestedTau(const JoinContext& context,
                                JoinOptions join_options,
                                const TunerOptions& tuner_options,
                                TauRecommendation* recommendation) {
  WallTimer timer;
  CostModel cost_model = CalibrateCostModel(context, join_options);
  TauRecommendation rec = RecommendTau(context, cost_model, tuner_options);
  double suggest_seconds = timer.Seconds();

  join_options.tau = rec.best_tau;
  if (join_options.method == FilterMethod::kUFilter) {
    join_options.method = tuner_options.method;
  }
  JoinResult result = UnifiedJoin(context, join_options);
  result.stats.suggest_seconds = suggest_seconds;
  if (recommendation != nullptr) *recommendation = rec;
  return result;
}

}  // namespace aujoin
