#include "tuner/cost_model.h"

#include <algorithm>

#include "util/rng.h"
#include "util/timer.h"

namespace aujoin {

CostModel CalibrateCostModel(const JoinContext& context,
                             const JoinOptions& options,
                             size_t calibration_records,
                             size_t calibration_verifications, uint64_t seed) {
  CostModel model;
  Rng rng(seed);

  const size_t s_size = context.s_prepared().size();
  const size_t t_size = context.t_prepared().size();
  if (s_size == 0 || t_size == 0) return model;

  auto slice = [&](size_t size) {
    std::vector<uint32_t> ids(std::min(size, calibration_records));
    for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    return ids;
  };
  std::vector<uint32_t> s_ids = slice(s_size);
  std::vector<uint32_t> t_ids = slice(t_size);

  SignatureOptions sig;
  sig.theta = options.theta;
  sig.tau = std::max(2, options.tau);
  sig.method = options.method == FilterMethod::kUFilter
                   ? FilterMethod::kAuHeuristic
                   : options.method;
  sig.exact_min_partition = options.exact_min_partition;

  JoinContext::FilterOutput out = context.RunFilter(sig, &s_ids, &t_ids);
  if (out.processed_pairs > 0) {
    model.cf = out.filter_seconds / static_cast<double>(out.processed_pairs);
    model.cf = std::max(model.cf, 1e-10);
  }

  // Verification cost: time Algorithm 1 on candidates (or random pairs).
  std::vector<std::pair<uint32_t, uint32_t>> pairs = out.candidates;
  while (pairs.size() < calibration_verifications) {
    uint32_t si = static_cast<uint32_t>(
        rng.Uniform(0, static_cast<int64_t>(s_size) - 1));
    uint32_t ti = static_cast<uint32_t>(
        rng.Uniform(0, static_cast<int64_t>(t_size) - 1));
    if (context.self_join() && si == ti) continue;
    pairs.emplace_back(si, ti);
  }
  if (pairs.size() > calibration_verifications) {
    pairs.resize(calibration_verifications);
  }

  UsimOptions usim_options = options.usim;
  usim_options.msim = context.msim_options();
  UsimComputer computer(context.knowledge(), usim_options);
  WallTimer timer;
  for (const auto& [si, ti] : pairs) {
    // Mirror the join's early-exit verification so c_v matches reality.
    computer.Approx(context.s_records()[si], context.t_records()[ti],
                    options.theta);
  }
  double elapsed = timer.Seconds();
  if (!pairs.empty() && elapsed > 0) {
    model.cv = elapsed / static_cast<double>(pairs.size());
    model.cv = std::max(model.cv, 1e-9);
  }
  return model;
}

}  // namespace aujoin
