#ifndef AUJOIN_TUNER_ESTIMATOR_H_
#define AUJOIN_TUNER_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "join/join.h"
#include "util/rng.h"
#include "util/stats.h"

namespace aujoin {

/// One independent Bernoulli sample of record indexes from each collection
/// (Section 4.1): every record enters with probability ps (resp. pt).
struct BernoulliSample {
  std::vector<uint32_t> s_ids;
  std::vector<uint32_t> t_ids;
};

/// Draws a fresh sample. For self-joins pass the same size twice and use
/// the s_ids for both sides (the pair-sampling probability is then ps^2,
/// matching Eq. 17 with pt = ps).
BernoulliSample DrawBernoulliSample(size_t s_size, size_t t_size, bool self,
                                    double ps, double pt, Rng* rng);

/// Per-tau accumulation of the unbiased Bernoulli estimates
/// T-hat = T' / (ps * pt) and V-hat = V' / (ps * pt) (Eq. 17), with
/// online mean/variance (Eqs. 18-21).
struct TauEstimator {
  OnlineMeanVariance t_hat;
  OnlineMeanVariance v_hat;
  /// Raw processed-pair count of the most recent sample (T'^(n)_tau),
  /// used by the stopping rule's next-iteration cost forecast.
  uint64_t last_raw_processed = 0;

  /// Eq. (22): estimated cost mean for the given cost model.
  double CostMean(double cf, double cv) const {
    return cf * t_hat.mean() + cv * v_hat.mean();
  }

  /// Eq. (22): estimated cost variance.
  double CostVariance(double cf, double cv) const {
    return cf * cf * t_hat.variance() + cv * cv * v_hat.variance();
  }
};

/// Runs the filter stage on a sample for one tau and folds the scaled
/// estimates into `estimator`.
void AccumulateSampleEstimate(const JoinContext& context,
                              const SignatureOptions& sig_options,
                              const BernoulliSample& sample, double ps,
                              double pt, TauEstimator* estimator);

}  // namespace aujoin

#endif  // AUJOIN_TUNER_ESTIMATOR_H_
