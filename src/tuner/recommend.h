#ifndef AUJOIN_TUNER_RECOMMEND_H_
#define AUJOIN_TUNER_RECOMMEND_H_

#include <cstdint>
#include <vector>

#include "join/join.h"
#include "tuner/cost_model.h"
#include "tuner/estimator.h"

namespace aujoin {

/// Options of Algorithm 7 (tau suggestion).
struct TunerOptions {
  /// The universe U of candidate overlap constraints.
  std::vector<int> tau_universe = {1, 2, 3, 4, 5, 6, 8};
  /// Bernoulli sampling probabilities per side.
  double sample_prob_s = 0.01;
  double sample_prob_t = 0.01;
  /// Burn-in n* — the minimum number of iterations.
  int min_iterations = 10;
  /// Hard iteration cap (the CI rule normally stops much earlier).
  int max_iterations = 300;
  /// Two-sided confidence level for the Student's t quantile t*
  /// (paper Fig. 8 uses 70% => t* = 1.036).
  double confidence = 0.70;
  uint64_t seed = 1234;
  /// Filter settings the suggestion is for.
  double theta = 0.8;
  FilterMethod method = FilterMethod::kAuHeuristic;
  bool exact_min_partition = true;
};

/// Output of Algorithm 7.
struct TauRecommendation {
  int best_tau = 1;
  int iterations = 0;
  double seconds = 0.0;
  /// Final cost estimate per tau (aligned with TunerOptions::tau_universe).
  std::vector<double> estimated_cost;
  /// True when the CI stopping rule fired (vs. hitting max_iterations).
  bool converged = false;
};

/// Algorithm 7: iteratively samples, estimates Eq. (15) costs per tau with
/// confidence intervals, and stops when the worst-case regret of the
/// current winner is cheaper than one more estimation round (Ineq. 24).
TauRecommendation RecommendTau(const JoinContext& context,
                               const CostModel& cost_model,
                               const TunerOptions& options);

/// Convenience wrapper: calibrates the cost model, recommends tau, then
/// runs the full join with the suggested value. The suggestion time is
/// reported in the result's stats.suggest_seconds.
JoinResult JoinWithSuggestedTau(const JoinContext& context,
                                JoinOptions join_options,
                                const TunerOptions& tuner_options,
                                TauRecommendation* recommendation = nullptr);

}  // namespace aujoin

#endif  // AUJOIN_TUNER_RECOMMEND_H_
