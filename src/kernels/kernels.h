/// \file
/// Runtime-dispatched hot-path kernels for candidate generation and
/// verification. The CSR probe (index/csr_index.h) spends its time in
/// two tight loops over flat arrays: merging a posting run into the
/// epoch-stamped count scratch, and selecting the ids whose
/// accumulated count meets the required overlap. The verify stage
/// adds two more: sorted-set intersection over interned gram ids
/// (measures.cc, the adaptjoin baseline) and strided weight
/// accumulation over pair-graph vertices (squareimp.cc, usim.cc).
/// All are packaged here as batch kernels with a portable scalar
/// implementation plus vectorized variants (AVX2 and AVX-512 on
/// x86-64, NEON on AArch64) selected once per process from CPU
/// features — callers go through ActiveKernel() and never mention an
/// ISA.
///
/// Dispatch order: a ForceKernelForTesting override (parity tests and
/// the scalar-vs-SIMD bench race) beats the AUJOIN_FORCE_SCALAR
/// environment variable (any value except "0" pins the scalar
/// fallback — the CI leg that keeps that path exercised), which beats
/// the best variant the host supports. The scalar kernel is always
/// registered, so dispatch cannot fail.
///
/// Data model shared by every kernel: one packed 64-bit stamp per
/// record id, the probe epoch in the high 32 bits and the occurrence
/// count in the low 32 (CandidateAccumulator owns the array). A stamp
/// whose epoch half differs from the current probe's epoch is stale
/// and reads as count 0 — starting a probe is O(1), no clearing.

#ifndef AUJOIN_KERNELS_KERNELS_H_
#define AUJOIN_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aujoin {

/// Instruction-set family of one kernel implementation.
enum class KernelKind {
  kScalar,  // portable C++, always available
  kAvx2,    // x86-64 AVX2 (runtime CPUID-checked)
  kNeon,    // AArch64 NEON (baseline on AArch64)
  kAvx512,  // x86-64 AVX-512 F+VL (runtime CPUID-checked)
};

/// Vector kernels append through full-width stores: the final lanes of
/// a compressed block spill past the logical tail. Output buffers
/// handed to the kernels must own this many writable (scratch) slots
/// beyond the largest possible result.
inline constexpr size_t kKernelLaneSlack = 16;

/// One kernel family: a name for reports, its ISA kind, the three
/// batch operations of the count-merge probe, and the two batch
/// operations of the verify stage. All operations are pure functions
/// of their arguments (no hidden state), so one KernelOps may be used
/// from any number of threads concurrently.
struct KernelOps {
  const char* name;
  KernelKind kind;

  /// Merges one posting run into the stamp array: ids whose stamp is
  /// stale are stamped (epoch, count 1) and appended at touched_tail;
  /// current ids get their count incremented. Returns the new tail.
  /// `ids` are record ids < the stamp array's size, in any order
  /// (CSR runs are sorted and distinct, but neither is required);
  /// the touched buffer needs kKernelLaneSlack slots of headroom.
  uint32_t* (*count_merge_run)(uint64_t* stamps, uint32_t epoch,
                               const uint32_t* ids, size_t n,
                               uint32_t* touched_tail);

  /// Uniform required-overlap select (the serving path): appends to
  /// `out` every id of `touched` whose count reaches `threshold`,
  /// preserving order. Every id in `touched` must carry the current
  /// epoch (they came from count_merge_run this probe). Returns the
  /// new out tail; `out` needs kKernelLaneSlack slots of headroom.
  uint32_t* (*select_ge)(const uint64_t* stamps, uint32_t threshold,
                         const uint32_t* touched, size_t n, uint32_t* out);

  /// Pairwise required-overlap select (the join path): id j survives
  /// when its count reaches min(probe_tau, taus[j]) — the
  /// MergeRequiredOverlap rule of join/signature.h with the indexed
  /// side's effective taus in a flat array. Same contract as
  /// select_ge otherwise.
  uint32_t* (*select_ge_merged)(const uint64_t* stamps, const uint32_t* taus,
                                uint32_t probe_tau, const uint32_t* touched,
                                size_t n, uint32_t* out);

  /// Sorted-set intersection (the verify path's gram-set overlap):
  /// appends to `out` every element of `a`, in order and with a's
  /// multiplicity, that also occurs in `b`. Both inputs must be
  /// ascending (duplicates permitted; on deduplicated inputs this is
  /// plain set intersection). Returns the new out tail; `out` needs
  /// kKernelLaneSlack slots of headroom past na.
  uint32_t* (*intersect_sorted)(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb, uint32_t* out);

  /// Weight accumulation (pair-graph / usim sums): returns the sum of
  /// weights[idx[i]] for i in [0, n) — or of weights[i] when `idx` is
  /// nullptr (the contiguous case). Every kernel uses the same fixed
  /// reduction order — four interleaved partial sums, lane i%4, folded
  /// as (acc0+acc2)+(acc1+acc3) — so the result is bit-identical
  /// across variants (the kernel-parity contract extends to floats).
  double (*accumulate_weights)(const double* weights, const uint32_t* idx,
                               size_t n);
};

/// The portable fallback; always registered, semantics-defining.
const KernelOps& ScalarKernel();

/// The kernel every probe should use: the testing override if set,
/// else the scalar kernel when AUJOIN_FORCE_SCALAR is in effect, else
/// the best variant the CPU supports (selection is computed once and
/// cached). Thread-safe.
const KernelOps& ActiveKernel();

/// Every kernel usable on this host, scalar first. The parity suite
/// iterates this to pin identical results across variants.
std::vector<const KernelOps*> AvailableKernels();

/// Looks a kernel up by name ("scalar", "avx2", "avx512", "neon")
/// among the host's available kernels; nullptr when absent or
/// unsupported here.
const KernelOps* FindKernelByName(const char* name);

/// Overrides ActiveKernel() (nullptr restores normal dispatch). For
/// tests and the bench race only — takes effect for probes that start
/// after the call; do not flip it while probes run on other threads.
void ForceKernelForTesting(const KernelOps* kernel);

/// True when the AUJOIN_FORCE_SCALAR environment variable pins the
/// scalar kernel (set to anything but "0"). Exposed so benches can
/// report why vector variants are not racing.
bool ForceScalarEnvRequested();

}  // namespace aujoin

#endif  // AUJOIN_KERNELS_KERNELS_H_
