/// \file
/// NEON (AArch64) variants of the count-merge probe kernels. Same
/// shape as the AVX2 file at half the width: contiguous 4-lane id
/// loads, branchless per-lane stamp updates (the random-id accesses
/// stay scalar — AArch64 has no usable gather either), and
/// table-lookup compaction of surviving ids, with scalar tails so
/// vector loads never read past the caller's arrays. NEON is baseline
/// on AArch64, so there is no runtime feature probe — the compile-time
/// guard is the whole gate.

#include "kernels/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace aujoin {
namespace {

/// Byte-shuffle table: entry m rearranges a 4 x u32 vector so the
/// lanes whose bit is set in m land at the front (vqtbl1q_u8 indexes).
struct NeonCompressLut {
  alignas(64) uint8_t perm[16][16];
};

constexpr NeonCompressLut MakeNeonCompressLut() {
  NeonCompressLut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out_byte = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (((mask >> lane) & 1) == 0) continue;
      for (int b = 0; b < 4; ++b) {
        lut.perm[mask][out_byte++] = static_cast<uint8_t>(4 * lane + b);
      }
    }
    for (; out_byte < 16; ++out_byte) lut.perm[mask][out_byte] = 0;
  }
  return lut;
}

constexpr NeonCompressLut kNeonCompress = MakeNeonCompressLut();

/// Lane predicate vector (0 / 0xFFFFFFFF) -> 4-bit mask.
inline unsigned MaskOf(uint32x4_t pred) {
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  return vaddvq_u32(vandq_u32(pred, bits));
}

/// Compacts the masked lanes of `ids` to the front and stores the
/// block at `tail` (full-width store; callers guarantee headroom).
inline uint32_t* CompressAppend(uint32x4_t ids, unsigned mask,
                                uint32_t* tail) {
  const uint8x16_t perm = vld1q_u8(kNeonCompress.perm[mask]);
  const uint8x16_t packed = vqtbl1q_u8(vreinterpretq_u8_u32(ids), perm);
  vst1q_u32(tail, vreinterpretq_u32_u8(packed));
  return tail + __builtin_popcount(mask);
}

uint32_t* NeonCountMergeRun(uint64_t* stamps, uint32_t epoch,
                            const uint32_t* ids, size_t n,
                            uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      for (int lane = 0; lane < 4; ++lane) {
        __builtin_prefetch(&stamps[ids[i + 4 + lane]], 1, 3);
      }
    }
    unsigned mask = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t id = ids[i + lane];
      const uint64_t st = stamps[id];
      const unsigned is_new = static_cast<uint32_t>(st >> 32) != epoch;
      stamps[id] = is_new ? fresh : st + 1;  // csel, no branch
      mask |= is_new << lane;
    }
    touched_tail = CompressAppend(vld1q_u32(ids + i), mask, touched_tail);
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

uint32_t* NeonSelectGe(const uint64_t* stamps, uint32_t threshold,
                       const uint32_t* touched, size_t n, uint32_t* out) {
  const uint32x4_t limit = vdupq_n_u32(threshold);
  size_t i = 0;
  alignas(16) uint32_t counts[4];
  for (; i + 4 <= n; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      counts[lane] = static_cast<uint32_t>(stamps[touched[i + lane]]);
    }
    const unsigned mask = MaskOf(vcgeq_u32(vld1q_u32(counts), limit));
    out = CompressAppend(vld1q_u32(touched + i), mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

uint32_t* NeonSelectGeMerged(const uint64_t* stamps, const uint32_t* taus,
                             uint32_t probe_tau, const uint32_t* touched,
                             size_t n, uint32_t* out) {
  const uint32x4_t probe = vdupq_n_u32(probe_tau);
  size_t i = 0;
  alignas(16) uint32_t counts[4];
  alignas(16) uint32_t indexed_taus[4];
  for (; i + 4 <= n; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t id = touched[i + lane];
      counts[lane] = static_cast<uint32_t>(stamps[id]);
      indexed_taus[lane] = taus[id];
    }
    const uint32x4_t required = vminq_u32(probe, vld1q_u32(indexed_taus));
    const unsigned mask = MaskOf(vcgeq_u32(vld1q_u32(counts), required));
    out = CompressAppend(vld1q_u32(touched + i), mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

}  // namespace

namespace internal {

const KernelOps* NeonKernelOrNull() {
  static const KernelOps kNeonOps = {"neon", KernelKind::kNeon,
                                     &NeonCountMergeRun, &NeonSelectGe,
                                     &NeonSelectGeMerged};
  return &kNeonOps;
}

}  // namespace internal
}  // namespace aujoin

#else  // !AArch64

namespace aujoin {
namespace internal {

const KernelOps* NeonKernelOrNull() { return nullptr; }

}  // namespace internal
}  // namespace aujoin

#endif
