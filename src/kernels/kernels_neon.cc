/// \file
/// NEON (AArch64) variants of the count-merge probe kernels. Same
/// shape as the AVX2 file at half the width: contiguous 4-lane id
/// loads, branchless per-lane stamp updates (the random-id accesses
/// stay scalar — AArch64 has no usable gather either), and
/// table-lookup compaction of surviving ids, with scalar tails so
/// vector loads never read past the caller's arrays. NEON is baseline
/// on AArch64, so there is no runtime feature probe — the compile-time
/// guard is the whole gate.

#include "kernels/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace aujoin {
namespace {

/// Byte-shuffle table: entry m rearranges a 4 x u32 vector so the
/// lanes whose bit is set in m land at the front (vqtbl1q_u8 indexes).
struct NeonCompressLut {
  alignas(64) uint8_t perm[16][16];
};

constexpr NeonCompressLut MakeNeonCompressLut() {
  NeonCompressLut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out_byte = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (((mask >> lane) & 1) == 0) continue;
      for (int b = 0; b < 4; ++b) {
        lut.perm[mask][out_byte++] = static_cast<uint8_t>(4 * lane + b);
      }
    }
    for (; out_byte < 16; ++out_byte) lut.perm[mask][out_byte] = 0;
  }
  return lut;
}

constexpr NeonCompressLut kNeonCompress = MakeNeonCompressLut();

/// Lane predicate vector (0 / 0xFFFFFFFF) -> 4-bit mask.
inline unsigned MaskOf(uint32x4_t pred) {
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  return vaddvq_u32(vandq_u32(pred, bits));
}

/// Compacts the masked lanes of `ids` to the front and stores the
/// block at `tail` (full-width store; callers guarantee headroom).
inline uint32_t* CompressAppend(uint32x4_t ids, unsigned mask,
                                uint32_t* tail) {
  const uint8x16_t perm = vld1q_u8(kNeonCompress.perm[mask]);
  const uint8x16_t packed = vqtbl1q_u8(vreinterpretq_u8_u32(ids), perm);
  vst1q_u32(tail, vreinterpretq_u32_u8(packed));
  return tail + __builtin_popcount(mask);
}

uint32_t* NeonCountMergeRun(uint64_t* stamps, uint32_t epoch,
                            const uint32_t* ids, size_t n,
                            uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      for (int lane = 0; lane < 4; ++lane) {
        __builtin_prefetch(&stamps[ids[i + 4 + lane]], 1, 3);
      }
    }
    unsigned mask = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t id = ids[i + lane];
      const uint64_t st = stamps[id];
      const unsigned is_new = static_cast<uint32_t>(st >> 32) != epoch;
      stamps[id] = is_new ? fresh : st + 1;  // csel, no branch
      mask |= is_new << lane;
    }
    touched_tail = CompressAppend(vld1q_u32(ids + i), mask, touched_tail);
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

uint32_t* NeonSelectGe(const uint64_t* stamps, uint32_t threshold,
                       const uint32_t* touched, size_t n, uint32_t* out) {
  const uint32x4_t limit = vdupq_n_u32(threshold);
  size_t i = 0;
  alignas(16) uint32_t counts[4];
  for (; i + 4 <= n; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      counts[lane] = static_cast<uint32_t>(stamps[touched[i + lane]]);
    }
    const unsigned mask = MaskOf(vcgeq_u32(vld1q_u32(counts), limit));
    out = CompressAppend(vld1q_u32(touched + i), mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

uint32_t* NeonSelectGeMerged(const uint64_t* stamps, const uint32_t* taus,
                             uint32_t probe_tau, const uint32_t* touched,
                             size_t n, uint32_t* out) {
  const uint32x4_t probe = vdupq_n_u32(probe_tau);
  size_t i = 0;
  alignas(16) uint32_t counts[4];
  alignas(16) uint32_t indexed_taus[4];
  for (; i + 4 <= n; i += 4) {
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t id = touched[i + lane];
      counts[lane] = static_cast<uint32_t>(stamps[id]);
      indexed_taus[lane] = taus[id];
    }
    const uint32x4_t required = vminq_u32(probe, vld1q_u32(indexed_taus));
    const unsigned mask = MaskOf(vcgeq_u32(vld1q_u32(counts), required));
    out = CompressAppend(vld1q_u32(touched + i), mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

/// All-pairs equality of a 4-lane a-block against a 4-lane b-block:
/// bit L set when lane L of `va` equals any lane of `vb` (4 cmpeq over
/// the 4 lane-rotations of vb, rotated with vext).
inline unsigned MatchMask4(uint32x4_t va, uint32x4_t vb) {
  uint32x4_t eq = vceqq_u32(va, vb);
  uint32x4_t r = vextq_u32(vb, vb, 1);
  eq = vorrq_u32(eq, vceqq_u32(va, r));
  r = vextq_u32(vb, vb, 2);
  eq = vorrq_u32(eq, vceqq_u32(va, r));
  r = vextq_u32(vb, vb, 3);
  eq = vorrq_u32(eq, vceqq_u32(va, r));
  return MaskOf(eq);
}

uint32_t* NeonIntersectSorted(const uint32_t* a, size_t na, const uint32_t* b,
                              size_t nb, uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  // Match bits accumulated for the current (in-flight) a-block across
  // b-block advances; the block is emitted only when it retires.
  unsigned pending = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    // Gallop: a whole b-block below the a-block's first lane cannot
    // match it (or any later a value).
    if (b[j + 3] < a[i]) {
      j += 4;
      continue;
    }
    const uint32x4_t va = vld1q_u32(a + i);
    const uint32x4_t vb = vld1q_u32(b + j);
    pending |= MatchMask4(va, vb);
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) {
      // Later b values are all >= bmax >= amax; an equality would sit
      // inside this b-block, so the block's bits are final.
      out = CompressAppend(va, pending, out);
      pending = 0;
      i += 4;
    } else {
      // This b-block is entirely < amax <= all later a values.
      j += 4;
    }
  }
  if (pending != 0 || (i + 4 <= na && j < nb)) {
    // Resolve the in-flight a-block against the (< 4-element) b tail.
    for (int lane = 0; lane < 4 && i < na; ++lane, ++i) {
      const uint32_t v = a[i];
      bool hit = ((pending >> lane) & 1u) != 0;
      for (size_t k = j; !hit && k < nb && b[k] <= v; ++k) hit = b[k] == v;
      if (hit) *out++ = v;
    }
    pending = 0;
  }
  while (i < na && j < nb) {
    const uint32_t av = a[i];
    const uint32_t bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      *out++ = av;
      ++i;
    }
  }
  return out;
}

double NeonAccumulateWeights(const double* weights, const uint32_t* idx,
                             size_t n) {
  // Two 2 x f64 registers emulate the scalar kernel's four interleaved
  // partial sums (lanes {0,1} and {2,3}).
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  alignas(16) double lo[2];
  alignas(16) double hi[2];
  if (idx == nullptr) {
    for (; i + 4 <= n; i += 4) {
      acc01 = vaddq_f64(acc01, vld1q_f64(weights + i));
      acc23 = vaddq_f64(acc23, vld1q_f64(weights + i + 2));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      lo[0] = weights[idx[i]];
      lo[1] = weights[idx[i + 1]];
      hi[0] = weights[idx[i + 2]];
      hi[1] = weights[idx[i + 3]];
      acc01 = vaddq_f64(acc01, vld1q_f64(lo));
      acc23 = vaddq_f64(acc23, vld1q_f64(hi));
    }
  }
  vst1q_f64(lo, acc01);
  vst1q_f64(hi, acc23);
  double lanes[4] = {lo[0], lo[1], hi[0], hi[1]};
  for (; i < n; ++i) {
    lanes[i & 3] += idx == nullptr ? weights[i] : weights[idx[i]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

}  // namespace

namespace internal {

const KernelOps* NeonKernelOrNull() {
  static const KernelOps kNeonOps = {
      "neon",        KernelKind::kNeon,    &NeonCountMergeRun,
      &NeonSelectGe, &NeonSelectGeMerged,  &NeonIntersectSorted,
      &NeonAccumulateWeights};
  return &kNeonOps;
}

}  // namespace internal
}  // namespace aujoin

#else  // !AArch64

namespace aujoin {
namespace internal {

const KernelOps* NeonKernelOrNull() { return nullptr; }

}  // namespace internal
}  // namespace aujoin

#endif
