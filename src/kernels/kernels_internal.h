/// \file
/// Cross-translation-unit seams of the kernel layer: each ISA variant
/// lives in its own .cc (so vector code stays behind its compile-time
/// guard) and exposes exactly one probe — "your kernel, or nullptr" —
/// that the dispatcher in kernels.cc interrogates. Nothing outside
/// src/kernels/ includes this header.

#ifndef AUJOIN_KERNELS_KERNELS_INTERNAL_H_
#define AUJOIN_KERNELS_KERNELS_INTERNAL_H_

#include "kernels/kernels.h"

namespace aujoin {
namespace internal {

/// The AVX2 kernel when this build targets x86 and the CPU reports
/// AVX2 support at runtime; nullptr otherwise.
const KernelOps* Avx2KernelOrNull();

/// The AVX-512 kernel when this build targets x86 and the CPU reports
/// AVX-512 F+VL at runtime (compress-store replaces the LUT shuffle);
/// nullptr otherwise.
const KernelOps* Avx512KernelOrNull();

/// The NEON kernel when this build targets AArch64; nullptr otherwise.
const KernelOps* NeonKernelOrNull();

}  // namespace internal
}  // namespace aujoin

#endif  // AUJOIN_KERNELS_KERNELS_INTERNAL_H_
