/// \file
/// AVX2 variants of the count-merge probe kernels. Design notes:
///
/// - The stamp array is touched at random record ids, so the update
///   itself cannot use contiguous vector stores; what vectorizes is
///   everything around it — the contiguous posting-run loads, the
///   compaction of surviving ids (one permutevar8x32 shuffle + one
///   store per 8 lanes instead of a data-dependent branch per id),
///   and cache-line prefetch one block ahead of the stamp updates.
///   The per-lane stamp read-modify-write compiles to branchless
///   conditional moves: no gather/scatter instructions, which are
///   microcoded and slower than scalar loads on the cores CI runs on
///   (the "gather-free" half of the design).
/// - Lanes are processed in ascending order inside a block, so a run
///   that repeats an id (the scalar contract allows it) still counts
///   correctly — there is no lane-conflict hazard to handle.
/// - Tails shorter than a block fall back to the scalar loop; vector
///   loads never read past the caller's arrays (posting runs may end
///   at an mmap boundary). Only the *output* buffers need headroom
///   (kKernelLaneSlack) because compaction stores a full 8-lane block
///   at the tail and advances by popcount.
///
/// Everything here is compiled only on x86 and guarded twice: the
/// target attribute gates the instruction selection per function, and
/// Avx2KernelOrNull() checks CPUID before handing the kernel out.

#include "kernels/kernels_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <array>

namespace aujoin {
namespace {

/// perm[m] compacts the set bits of mask m to the front lanes of a
/// 256-bit vector of 8 x u32 via _mm256_permutevar8x32_epi32.
struct CompressLut {
  alignas(64) uint32_t perm[256][8];
};

constexpr CompressLut MakeCompressLut() {
  CompressLut lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int kept = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) lut.perm[mask][kept++] = lane;
    }
    for (; kept < 8; ++kept) lut.perm[mask][kept] = 0;
  }
  return lut;
}

constexpr CompressLut kCompress = MakeCompressLut();

/// Compacts the masked lanes of `ids` to the front and stores the
/// block at `tail` (full-width store; callers guarantee headroom).
__attribute__((target("avx2,popcnt"))) inline uint32_t* CompressAppend(
    __m256i ids, unsigned mask, uint32_t* tail) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress.perm[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(tail),
                      _mm256_permutevar8x32_epi32(ids, perm));
  return tail + __builtin_popcount(mask);
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2CountMergeRun(
    uint64_t* stamps, uint32_t epoch, const uint32_t* ids, size_t n,
    uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 16 <= n) {
      // Pull the next block's stamp lines while this block's updates
      // retire — the random-id loads are the loop's latency.
      for (int lane = 0; lane < 8; ++lane) {
        _mm_prefetch(reinterpret_cast<const char*>(&stamps[ids[i + 8 + lane]]),
                     _MM_HINT_T0);
      }
    }
    unsigned mask = 0;
    for (int lane = 0; lane < 8; ++lane) {
      const uint32_t id = ids[i + lane];
      const uint64_t st = stamps[id];
      const unsigned is_new = static_cast<uint32_t>(st >> 32) != epoch;
      stamps[id] = is_new ? fresh : st + 1;  // cmov, no branch
      mask |= is_new << lane;
    }
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    touched_tail = CompressAppend(idv, mask, touched_tail);
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2SelectGe(
    const uint64_t* stamps, uint32_t threshold, const uint32_t* touched,
    size_t n, uint32_t* out) {
  // count >= threshold  <=>  count > threshold - 1; counts are far
  // below 2^31 (bounded by a signature's key count), so the signed
  // compare is exact.
  const __m256i limit =
      _mm256_set1_epi32(static_cast<int32_t>(threshold) - 1);
  size_t i = 0;
  alignas(32) uint32_t counts[8];
  for (; i + 8 <= n; i += 8) {
    for (int lane = 0; lane < 8; ++lane) {
      counts[lane] = static_cast<uint32_t>(stamps[touched[i + lane]]);
    }
    const __m256i cv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(counts));
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(cv, limit))));
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(touched + i));
    out = CompressAppend(idv, mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2SelectGeMerged(
    const uint64_t* stamps, const uint32_t* taus, uint32_t probe_tau,
    const uint32_t* touched, size_t n, uint32_t* out) {
  const __m256i probe = _mm256_set1_epi32(static_cast<int32_t>(probe_tau));
  const __m256i ones = _mm256_set1_epi32(1);
  size_t i = 0;
  alignas(32) uint32_t counts[8];
  alignas(32) uint32_t indexed_taus[8];
  for (; i + 8 <= n; i += 8) {
    for (int lane = 0; lane < 8; ++lane) {
      const uint32_t id = touched[i + lane];
      counts[lane] = static_cast<uint32_t>(stamps[id]);
      indexed_taus[lane] = taus[id];
    }
    const __m256i cv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(counts));
    const __m256i tv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(indexed_taus));
    // required = min(probe_tau, taus[id]); keep when count > required-1.
    const __m256i required = _mm256_min_epi32(probe, tv);
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(cv, _mm256_sub_epi32(required, ones)))));
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(touched + i));
    out = CompressAppend(idv, mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

}  // namespace

namespace internal {

const KernelOps* Avx2KernelOrNull() {
  static const KernelOps kAvx2Ops = {"avx2", KernelKind::kAvx2,
                                     &Avx2CountMergeRun, &Avx2SelectGe,
                                     &Avx2SelectGeMerged};
  static const bool supported = __builtin_cpu_supports("avx2") != 0 &&
                                __builtin_cpu_supports("popcnt") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace internal
}  // namespace aujoin

#else  // !x86

namespace aujoin {
namespace internal {

const KernelOps* Avx2KernelOrNull() { return nullptr; }

}  // namespace internal
}  // namespace aujoin

#endif
