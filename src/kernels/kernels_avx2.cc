/// \file
/// AVX2 variants of the count-merge probe kernels. Design notes:
///
/// - The stamp array is touched at random record ids, so the update
///   itself cannot use contiguous vector stores; what vectorizes is
///   everything around it — the contiguous posting-run loads, the
///   compaction of surviving ids (one permutevar8x32 shuffle + one
///   store per 8 lanes instead of a data-dependent branch per id),
///   and cache-line prefetch one block ahead of the stamp updates.
///   The per-lane stamp read-modify-write compiles to branchless
///   conditional moves: no gather/scatter instructions, which are
///   microcoded and slower than scalar loads on the cores CI runs on
///   (the "gather-free" half of the design).
/// - Lanes are processed in ascending order inside a block, so a run
///   that repeats an id (the scalar contract allows it) still counts
///   correctly — there is no lane-conflict hazard to handle.
/// - Tails shorter than a block fall back to the scalar loop; vector
///   loads never read past the caller's arrays (posting runs may end
///   at an mmap boundary). Only the *output* buffers need headroom
///   (kKernelLaneSlack) because compaction stores a full 8-lane block
///   at the tail and advances by popcount.
///
/// Everything here is compiled only on x86 and guarded twice: the
/// target attribute gates the instruction selection per function, and
/// Avx2KernelOrNull() checks CPUID before handing the kernel out.

#include "kernels/kernels_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <array>

namespace aujoin {
namespace {

/// perm[m] compacts the set bits of mask m to the front lanes of a
/// 256-bit vector of 8 x u32 via _mm256_permutevar8x32_epi32.
struct CompressLut {
  alignas(64) uint32_t perm[256][8];
};

constexpr CompressLut MakeCompressLut() {
  CompressLut lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int kept = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) lut.perm[mask][kept++] = lane;
    }
    for (; kept < 8; ++kept) lut.perm[mask][kept] = 0;
  }
  return lut;
}

constexpr CompressLut kCompress = MakeCompressLut();

/// Compacts the masked lanes of `ids` to the front and stores the
/// block at `tail` (full-width store; callers guarantee headroom).
__attribute__((target("avx2,popcnt"))) inline uint32_t* CompressAppend(
    __m256i ids, unsigned mask, uint32_t* tail) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress.perm[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(tail),
                      _mm256_permutevar8x32_epi32(ids, perm));
  return tail + __builtin_popcount(mask);
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2CountMergeRun(
    uint64_t* stamps, uint32_t epoch, const uint32_t* ids, size_t n,
    uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 16 <= n) {
      // Pull the next block's stamp lines while this block's updates
      // retire — the random-id loads are the loop's latency.
      for (int lane = 0; lane < 8; ++lane) {
        _mm_prefetch(reinterpret_cast<const char*>(&stamps[ids[i + 8 + lane]]),
                     _MM_HINT_T0);
      }
    }
    unsigned mask = 0;
    for (int lane = 0; lane < 8; ++lane) {
      const uint32_t id = ids[i + lane];
      const uint64_t st = stamps[id];
      const unsigned is_new = static_cast<uint32_t>(st >> 32) != epoch;
      stamps[id] = is_new ? fresh : st + 1;  // cmov, no branch
      mask |= is_new << lane;
    }
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    touched_tail = CompressAppend(idv, mask, touched_tail);
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2SelectGe(
    const uint64_t* stamps, uint32_t threshold, const uint32_t* touched,
    size_t n, uint32_t* out) {
  // count >= threshold  <=>  count > threshold - 1; counts are far
  // below 2^31 (bounded by a signature's key count), so the signed
  // compare is exact.
  const __m256i limit =
      _mm256_set1_epi32(static_cast<int32_t>(threshold) - 1);
  size_t i = 0;
  alignas(32) uint32_t counts[8];
  for (; i + 8 <= n; i += 8) {
    for (int lane = 0; lane < 8; ++lane) {
      counts[lane] = static_cast<uint32_t>(stamps[touched[i + lane]]);
    }
    const __m256i cv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(counts));
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(cv, limit))));
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(touched + i));
    out = CompressAppend(idv, mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2SelectGeMerged(
    const uint64_t* stamps, const uint32_t* taus, uint32_t probe_tau,
    const uint32_t* touched, size_t n, uint32_t* out) {
  const __m256i probe = _mm256_set1_epi32(static_cast<int32_t>(probe_tau));
  const __m256i ones = _mm256_set1_epi32(1);
  size_t i = 0;
  alignas(32) uint32_t counts[8];
  alignas(32) uint32_t indexed_taus[8];
  for (; i + 8 <= n; i += 8) {
    for (int lane = 0; lane < 8; ++lane) {
      const uint32_t id = touched[i + lane];
      counts[lane] = static_cast<uint32_t>(stamps[id]);
      indexed_taus[lane] = taus[id];
    }
    const __m256i cv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(counts));
    const __m256i tv =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(indexed_taus));
    // required = min(probe_tau, taus[id]); keep when count > required-1.
    const __m256i required = _mm256_min_epi32(probe, tv);
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(cv, _mm256_sub_epi32(required, ones)))));
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(touched + i));
    out = CompressAppend(idv, mask, out);
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

/// All-pairs equality of an 8-lane a-block against an 8-lane b-block:
/// bit L of the result is set when lane L of `va` equals ANY lane of
/// `vb` (8 cmpeq over the 8 lane-rotations of vb).
__attribute__((target("avx2"))) inline unsigned MatchMask8(__m256i va,
                                                           __m256i vb) {
  const __m256i rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  for (int r = 1; r < 8; ++r) {
    vb = _mm256_permutevar8x32_epi32(vb, rot);
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
  }
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

__attribute__((target("avx2,popcnt"))) uint32_t* Avx2IntersectSorted(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  // Match bits accumulated for the current (in-flight) a-block across
  // b-block advances; the block is emitted only when it retires.
  unsigned pending = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    // Gallop: a whole b-block below the a-block's first lane cannot
    // match it (or any later a value).
    if (b[j + 7] < a[i]) {
      j += 8;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    pending |= MatchMask8(va, vb);
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) {
      // No later b value can equal a lane of this block (they are all
      // >= bmax; equality would put the match inside this b-block), so
      // the block's match bits are final: retire and emit it.
      out = CompressAppend(va, pending, out);
      pending = 0;
      i += 8;
    } else {
      // Every value of this b-block is < amax <= all later a values —
      // advance b, keep the a-block and its pending bits in flight.
      j += 8;
    }
  }
  if (pending != 0 || (i + 8 <= na && j < nb)) {
    // The in-flight a-block saw every full b-block but not the b tail:
    // resolve its lanes in order — a pending bit is a proven match, an
    // unset bit gets a scalar scan of the remaining (< 8) b values.
    for (int lane = 0; lane < 8 && i < na; ++lane, ++i) {
      const uint32_t v = a[i];
      bool hit = ((pending >> lane) & 1u) != 0;
      for (size_t k = j; !hit && k < nb && b[k] <= v; ++k) hit = b[k] == v;
      if (hit) *out++ = v;
    }
    pending = 0;
  }
  // Scalar two-pointer tail: everything in b before j is < any
  // remaining a value, so starting at j loses nothing.
  while (i < na && j < nb) {
    const uint32_t av = a[i];
    const uint32_t bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      *out++ = av;
      ++i;
    }
  }
  return out;
}

__attribute__((target("avx2"))) double Avx2AccumulateWeights(
    const double* weights, const uint32_t* idx, size_t n) {
  // One 4 x f64 accumulator = the scalar kernel's four interleaved
  // partial sums; the gather case loads lanes scalar (no vgatherdpd —
  // microcoded and slower on the cores CI runs on).
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  alignas(32) double lanes[4];
  if (idx == nullptr) {
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(weights + i));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      for (int lane = 0; lane < 4; ++lane) {
        lanes[lane] = weights[idx[i + lane]];
      }
      acc = _mm256_add_pd(acc, _mm256_load_pd(lanes));
    }
  }
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] += idx == nullptr ? weights[i] : weights[idx[i]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

}  // namespace

namespace internal {

const KernelOps* Avx2KernelOrNull() {
  static const KernelOps kAvx2Ops = {
      "avx2",        KernelKind::kAvx2,    &Avx2CountMergeRun,
      &Avx2SelectGe, &Avx2SelectGeMerged,  &Avx2IntersectSorted,
      &Avx2AccumulateWeights};
  static const bool supported = __builtin_cpu_supports("avx2") != 0 &&
                                __builtin_cpu_supports("popcnt") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace internal
}  // namespace aujoin

#else  // !x86

namespace aujoin {
namespace internal {

const KernelOps* Avx2KernelOrNull() { return nullptr; }

}  // namespace internal
}  // namespace aujoin

#endif
