#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernels_internal.h"

namespace aujoin {
namespace {

// ------------------------------------------------------------- scalar
// The semantics-defining implementations: every vector variant must
// produce byte-identical outputs (ids, order, counts) to these.

uint32_t* ScalarCountMergeRun(uint64_t* stamps, uint32_t epoch,
                              const uint32_t* ids, size_t n,
                              uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

uint32_t* ScalarSelectGe(const uint64_t* stamps, uint32_t threshold,
                         const uint32_t* touched, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

uint32_t* ScalarSelectGeMerged(const uint64_t* stamps, const uint32_t* taus,
                               uint32_t probe_tau, const uint32_t* touched,
                               size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

// ----------------------------------------------------------- dispatch

std::atomic<const KernelOps*> g_forced_kernel{nullptr};

const KernelOps* BestSupportedKernel() {
  // Later entries in AvailableKernels() are wider ISAs; prefer them.
  const KernelOps* best = &ScalarKernel();
  if (const KernelOps* neon = internal::NeonKernelOrNull()) best = neon;
  if (const KernelOps* avx2 = internal::Avx2KernelOrNull()) best = avx2;
  return best;
}

}  // namespace

const KernelOps& ScalarKernel() {
  static constexpr KernelOps kScalarOps = {
      "scalar", KernelKind::kScalar, &ScalarCountMergeRun, &ScalarSelectGe,
      &ScalarSelectGeMerged};
  return kScalarOps;
}

bool ForceScalarEnvRequested() {
  const char* env = std::getenv("AUJOIN_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

const KernelOps& ActiveKernel() {
  const KernelOps* forced = g_forced_kernel.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  // Environment and CPUID cannot change mid-process; resolve once.
  static const KernelOps* const selected =
      ForceScalarEnvRequested() ? &ScalarKernel() : BestSupportedKernel();
  return *selected;
}

std::vector<const KernelOps*> AvailableKernels() {
  std::vector<const KernelOps*> kernels = {&ScalarKernel()};
  if (const KernelOps* neon = internal::NeonKernelOrNull()) {
    kernels.push_back(neon);
  }
  if (const KernelOps* avx2 = internal::Avx2KernelOrNull()) {
    kernels.push_back(avx2);
  }
  return kernels;
}

const KernelOps* FindKernelByName(const char* name) {
  for (const KernelOps* kernel : AvailableKernels()) {
    if (std::strcmp(kernel->name, name) == 0) return kernel;
  }
  return nullptr;
}

void ForceKernelForTesting(const KernelOps* kernel) {
  g_forced_kernel.store(kernel, std::memory_order_release);
}

}  // namespace aujoin
