#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernels_internal.h"

namespace aujoin {
namespace {

// ------------------------------------------------------------- scalar
// The semantics-defining implementations: every vector variant must
// produce byte-identical outputs (ids, order, counts) to these.

uint32_t* ScalarCountMergeRun(uint64_t* stamps, uint32_t epoch,
                              const uint32_t* ids, size_t n,
                              uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

uint32_t* ScalarSelectGe(const uint64_t* stamps, uint32_t threshold,
                         const uint32_t* touched, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

uint32_t* ScalarSelectGeMerged(const uint64_t* stamps, const uint32_t* taus,
                               uint32_t probe_tau, const uint32_t* touched,
                               size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

uint32_t* ScalarIntersectSorted(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb, uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint32_t av = a[i];
    const uint32_t bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      // Emit and advance only a: each duplicate of av in a matches
      // (a's multiplicity is preserved, b's is ignored).
      *out++ = av;
      ++i;
    }
  }
  return out;
}

double ScalarAccumulateWeights(const double* weights, const uint32_t* idx,
                               size_t n) {
  // Four interleaved partial sums — the reduction order every vector
  // variant reproduces exactly (one 4-lane accumulator, scalar tail
  // continuing the same lanes), so sums are bit-identical across
  // kernels.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  if (idx == nullptr) {
    for (; i + 4 <= n; i += 4) {
      acc0 += weights[i];
      acc1 += weights[i + 1];
      acc2 += weights[i + 2];
      acc3 += weights[i + 3];
    }
    double* lanes[4] = {&acc0, &acc1, &acc2, &acc3};
    for (; i < n; ++i) *lanes[i & 3] += weights[i];
  } else {
    for (; i + 4 <= n; i += 4) {
      acc0 += weights[idx[i]];
      acc1 += weights[idx[i + 1]];
      acc2 += weights[idx[i + 2]];
      acc3 += weights[idx[i + 3]];
    }
    double* lanes[4] = {&acc0, &acc1, &acc2, &acc3};
    for (; i < n; ++i) *lanes[i & 3] += weights[idx[i]];
  }
  return (acc0 + acc2) + (acc1 + acc3);
}

// ----------------------------------------------------------- dispatch

std::atomic<const KernelOps*> g_forced_kernel{nullptr};

const KernelOps* BestSupportedKernel() {
  // Later entries in AvailableKernels() are wider ISAs; prefer them.
  const KernelOps* best = &ScalarKernel();
  if (const KernelOps* neon = internal::NeonKernelOrNull()) best = neon;
  if (const KernelOps* avx2 = internal::Avx2KernelOrNull()) best = avx2;
  if (const KernelOps* avx512 = internal::Avx512KernelOrNull()) best = avx512;
  return best;
}

}  // namespace

const KernelOps& ScalarKernel() {
  static constexpr KernelOps kScalarOps = {
      "scalar",           KernelKind::kScalar,     &ScalarCountMergeRun,
      &ScalarSelectGe,    &ScalarSelectGeMerged,   &ScalarIntersectSorted,
      &ScalarAccumulateWeights};
  return kScalarOps;
}

bool ForceScalarEnvRequested() {
  const char* env = std::getenv("AUJOIN_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

const KernelOps& ActiveKernel() {
  const KernelOps* forced = g_forced_kernel.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  // Environment and CPUID cannot change mid-process; resolve once.
  static const KernelOps* const selected =
      ForceScalarEnvRequested() ? &ScalarKernel() : BestSupportedKernel();
  return *selected;
}

std::vector<const KernelOps*> AvailableKernels() {
  std::vector<const KernelOps*> kernels = {&ScalarKernel()};
  if (const KernelOps* neon = internal::NeonKernelOrNull()) {
    kernels.push_back(neon);
  }
  if (const KernelOps* avx2 = internal::Avx2KernelOrNull()) {
    kernels.push_back(avx2);
  }
  if (const KernelOps* avx512 = internal::Avx512KernelOrNull()) {
    kernels.push_back(avx512);
  }
  return kernels;
}

const KernelOps* FindKernelByName(const char* name) {
  for (const KernelOps* kernel : AvailableKernels()) {
    if (std::strcmp(kernel->name, name) == 0) return kernel;
  }
  return nullptr;
}

void ForceKernelForTesting(const KernelOps* kernel) {
  g_forced_kernel.store(kernel, std::memory_order_release);
}

}  // namespace aujoin
