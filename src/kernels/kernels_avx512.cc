/// \file
/// AVX-512 variants of the probe and verify kernels. Same shape as the
/// AVX2 file at double the probe width (16-lane blocks), with the one
/// structural upgrade the ISA buys: `vpcompressd` compress-stores
/// replace the 256-entry LUT shuffle — the survivor mask feeds
/// _mm512_mask_compressstoreu_epi32 directly, so there is no
/// permutation table to keep hot in L1 and only the surviving lanes
/// are written (the kKernelLaneSlack headroom contract is kept anyway
/// so callers stay kernel-agnostic). The intersection kernel runs at
/// 8 lanes through the AVX512VL 256-bit forms: the all-pairs match
/// needs W rotations for W lanes, so quadratic match cost outgrows
/// the wider retire step at 16 lanes on the b-advance-heavy inputs
/// the verify stage feeds it.
///
/// Compiled only on x86 and guarded twice: per-function target
/// attributes gate instruction selection, and Avx512KernelOrNull()
/// checks CPUID (F + VL) before handing the kernel out.

#include "kernels/kernels_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace aujoin {
namespace {

__attribute__((target("avx512f,avx512vl,popcnt"))) uint32_t*
Avx512CountMergeRun(uint64_t* stamps, uint32_t epoch, const uint32_t* ids,
                    size_t n, uint32_t* touched_tail) {
  const uint64_t fresh = (static_cast<uint64_t>(epoch) << 32) | 1u;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if (i + 32 <= n) {
      // Pull the next block's stamp lines while this block's updates
      // retire — the random-id loads are the loop's latency.
      for (int lane = 0; lane < 16; ++lane) {
        _mm_prefetch(
            reinterpret_cast<const char*>(&stamps[ids[i + 16 + lane]]),
            _MM_HINT_T0);
      }
    }
    unsigned mask = 0;
    for (int lane = 0; lane < 16; ++lane) {
      const uint32_t id = ids[i + lane];
      const uint64_t st = stamps[id];
      const unsigned is_new = static_cast<uint32_t>(st >> 32) != epoch;
      stamps[id] = is_new ? fresh : st + 1;  // cmov, no branch
      mask |= is_new << lane;
    }
    const __m512i idv =
        _mm512_loadu_si512(reinterpret_cast<const void*>(ids + i));
    _mm512_mask_compressstoreu_epi32(touched_tail,
                                     static_cast<__mmask16>(mask), idv);
    touched_tail += __builtin_popcount(mask);
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    const uint64_t st = stamps[id];
    if (static_cast<uint32_t>(st >> 32) != epoch) {
      stamps[id] = fresh;
      *touched_tail++ = id;
    } else {
      stamps[id] = st + 1;
    }
  }
  return touched_tail;
}

__attribute__((target("avx512f,avx512vl,popcnt"))) uint32_t* Avx512SelectGe(
    const uint64_t* stamps, uint32_t threshold, const uint32_t* touched,
    size_t n, uint32_t* out) {
  // AVX-512 has native unsigned compares, so no threshold-1 signed
  // trick is needed.
  const __m512i limit = _mm512_set1_epi32(static_cast<int32_t>(threshold));
  size_t i = 0;
  alignas(64) uint32_t counts[16];
  for (; i + 16 <= n; i += 16) {
    for (int lane = 0; lane < 16; ++lane) {
      counts[lane] = static_cast<uint32_t>(stamps[touched[i + lane]]);
    }
    const __m512i cv =
        _mm512_load_si512(reinterpret_cast<const void*>(counts));
    const __mmask16 mask = _mm512_cmpge_epu32_mask(cv, limit);
    const __m512i idv =
        _mm512_loadu_si512(reinterpret_cast<const void*>(touched + i));
    _mm512_mask_compressstoreu_epi32(out, mask, idv);
    out += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    if (static_cast<uint32_t>(stamps[id]) >= threshold) *out++ = id;
  }
  return out;
}

__attribute__((target("avx512f,avx512vl,popcnt"))) uint32_t*
Avx512SelectGeMerged(const uint64_t* stamps, const uint32_t* taus,
                     uint32_t probe_tau, const uint32_t* touched, size_t n,
                     uint32_t* out) {
  const __m512i probe = _mm512_set1_epi32(static_cast<int32_t>(probe_tau));
  size_t i = 0;
  alignas(64) uint32_t counts[16];
  alignas(64) uint32_t indexed_taus[16];
  for (; i + 16 <= n; i += 16) {
    for (int lane = 0; lane < 16; ++lane) {
      const uint32_t id = touched[i + lane];
      counts[lane] = static_cast<uint32_t>(stamps[id]);
      indexed_taus[lane] = taus[id];
    }
    const __m512i cv =
        _mm512_load_si512(reinterpret_cast<const void*>(counts));
    const __m512i tv =
        _mm512_load_si512(reinterpret_cast<const void*>(indexed_taus));
    const __m512i required = _mm512_min_epu32(probe, tv);
    const __mmask16 mask = _mm512_cmpge_epu32_mask(cv, required);
    const __m512i idv =
        _mm512_loadu_si512(reinterpret_cast<const void*>(touched + i));
    _mm512_mask_compressstoreu_epi32(out, mask, idv);
    out += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    const uint32_t id = touched[i];
    const uint32_t required = taus[id] < probe_tau ? taus[id] : probe_tau;
    if (static_cast<uint32_t>(stamps[id]) >= required) *out++ = id;
  }
  return out;
}

/// All-pairs equality of an 8-lane a-block against an 8-lane b-block:
/// the AVX-512 compare-to-mask forms give the lane mask directly.
__attribute__((target("avx512f,avx512vl"))) inline unsigned MatchMask8(
    __m256i va, __m256i vb) {
  const __m256i rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __mmask8 eq = _mm256_cmpeq_epi32_mask(va, vb);
  for (int r = 1; r < 8; ++r) {
    vb = _mm256_permutevar8x32_epi32(vb, rot);
    eq |= _mm256_cmpeq_epi32_mask(va, vb);
  }
  return static_cast<unsigned>(eq);
}

__attribute__((target("avx512f,avx512vl,popcnt"))) uint32_t*
Avx512IntersectSorted(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  // Match bits accumulated for the current (in-flight) a-block across
  // b-block advances; the block is emitted only when it retires.
  unsigned pending = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    // Gallop: a whole b-block below the a-block's first lane cannot
    // match it (or any later a value).
    if (b[j + 7] < a[i]) {
      j += 8;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    pending |= MatchMask8(va, vb);
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) {
      // Later b values are all >= bmax >= amax; an equality would sit
      // inside this b-block, so the block's bits are final: vpcompressd
      // the survivors straight to the tail.
      _mm256_mask_compressstoreu_epi32(out, static_cast<__mmask8>(pending),
                                       va);
      out += __builtin_popcount(pending);
      pending = 0;
      i += 8;
    } else {
      // This b-block is entirely < amax <= all later a values.
      j += 8;
    }
  }
  if (pending != 0 || (i + 8 <= na && j < nb)) {
    // Resolve the in-flight a-block against the (< 8-element) b tail.
    for (int lane = 0; lane < 8 && i < na; ++lane, ++i) {
      const uint32_t v = a[i];
      bool hit = ((pending >> lane) & 1u) != 0;
      for (size_t k = j; !hit && k < nb && b[k] <= v; ++k) hit = b[k] == v;
      if (hit) *out++ = v;
    }
    pending = 0;
  }
  while (i < na && j < nb) {
    const uint32_t av = a[i];
    const uint32_t bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      *out++ = av;
      ++i;
    }
  }
  return out;
}

__attribute__((target("avx512f,avx512vl"))) double Avx512AccumulateWeights(
    const double* weights, const uint32_t* idx, size_t n) {
  // The reduction-order contract pins four partial sums, so the
  // accumulator stays 4 x f64 (a 512-bit one would change the float
  // result); what AVX-512 adds here it adds via the shared dispatch,
  // not a wider loop.
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  alignas(32) double lanes[4];
  if (idx == nullptr) {
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(weights + i));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      for (int lane = 0; lane < 4; ++lane) {
        lanes[lane] = weights[idx[i + lane]];
      }
      acc = _mm256_add_pd(acc, _mm256_load_pd(lanes));
    }
  }
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] += idx == nullptr ? weights[i] : weights[idx[i]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

}  // namespace

namespace internal {

const KernelOps* Avx512KernelOrNull() {
  static const KernelOps kAvx512Ops = {
      "avx512",        KernelKind::kAvx512,    &Avx512CountMergeRun,
      &Avx512SelectGe, &Avx512SelectGeMerged,  &Avx512IntersectSorted,
      &Avx512AccumulateWeights};
  static const bool supported = __builtin_cpu_supports("avx512f") != 0 &&
                                __builtin_cpu_supports("avx512vl") != 0 &&
                                __builtin_cpu_supports("popcnt") != 0;
  return supported ? &kAvx512Ops : nullptr;
}

}  // namespace internal
}  // namespace aujoin

#else  // !x86

namespace aujoin {
namespace internal {

const KernelOps* Avx512KernelOrNull() { return nullptr; }

}  // namespace internal
}  // namespace aujoin

#endif
