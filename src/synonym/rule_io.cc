#include "synonym/rule_io.h"

#include <cstdlib>

#include "text/tokenizer.h"
#include "util/io.h"

namespace aujoin {

Result<RuleSet> LoadRulesFromTsv(const std::string& path, Vocabulary* vocab,
                                 const TokenizerOptions& tokenizer) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();

  RuleSet rules;
  for (size_t lineno = 0; lineno < lines->size(); ++lineno) {
    const std::string& line = (*lines)[lineno];
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() < 2) {
      return Status::InvalidArgument("rule line " +
                                     std::to_string(lineno + 1) +
                                     ": expected at least 2 fields");
    }
    double closeness =
        fields.size() >= 3 ? std::atof(fields[2].c_str()) : 1.0;
    Result<RuleId> added = rules.AddRule(Tokenize(fields[0], vocab, tokenizer),
                                         Tokenize(fields[1], vocab, tokenizer),
                                         closeness);
    if (!added.ok()) {
      return Status::InvalidArgument("rule line " +
                                     std::to_string(lineno + 1) + ": " +
                                     added.status().message());
    }
  }
  return rules;
}

Status SaveRulesToTsv(const RuleSet& rules, const Vocabulary& vocab,
                      const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(rules.num_rules() + 1);
  lines.push_back("# lhs\trhs\tcloseness");
  char buffer[64];
  for (RuleId r = 0; r < rules.num_rules(); ++r) {
    const SynonymRule& rule = rules.rule(r);
    std::snprintf(buffer, sizeof(buffer), "%.6g", rule.closeness);
    lines.push_back(
        vocab.Render(TokenSpan(rule.lhs.data(), rule.lhs.size())) + "\t" +
        vocab.Render(TokenSpan(rule.rhs.data(), rule.rhs.size())) + "\t" +
        buffer);
  }
  return WriteLines(path, lines);
}

}  // namespace aujoin
