#ifndef AUJOIN_SYNONYM_RULE_IO_H_
#define AUJOIN_SYNONYM_RULE_IO_H_

#include <string>

#include "synonym/rule_set.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace aujoin {

/// Loads synonym rules from a TSV file with one rule per line:
///
///   lhs phrase <TAB> rhs phrase [<TAB> closeness]
///
/// The closeness column defaults to 1.0 and must be in (0, 1]. Phrases
/// are tokenised with `tokenizer` (default: lowercased,
/// whitespace-split) and interned into `vocab` — pass the same options
/// used for the record corpus so rule sides and record tokens share
/// TokenIds. Lines starting with '#' and blank lines are skipped.
Result<RuleSet> LoadRulesFromTsv(const std::string& path, Vocabulary* vocab,
                                 const TokenizerOptions& tokenizer = {});

/// Writes rules in the same format.
Status SaveRulesToTsv(const RuleSet& rules, const Vocabulary& vocab,
                      const std::string& path);

}  // namespace aujoin

#endif  // AUJOIN_SYNONYM_RULE_IO_H_
