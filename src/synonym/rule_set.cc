#include "synonym/rule_set.h"

#include <algorithm>

#include "util/hash.h"

namespace aujoin {

Result<RuleId> RuleSet::AddRule(std::vector<TokenId> lhs,
                                std::vector<TokenId> rhs, double closeness) {
  if (lhs.empty() || rhs.empty()) {
    return Status::InvalidArgument("synonym rule sides must be non-empty");
  }
  if (!(closeness > 0.0 && closeness <= 1.0)) {
    return Status::InvalidArgument("closeness must be in (0, 1]");
  }
  RuleId id = static_cast<RuleId>(rules_.size());
  max_side_tokens_ = std::max({max_side_tokens_, lhs.size(), rhs.size()});
  uint64_t lhs_hash = HashTokenSpan(lhs.data(), lhs.size());
  uint64_t rhs_hash = HashTokenSpan(rhs.data(), rhs.size());
  side_index_.emplace(lhs_hash, RuleMatch{id, RuleSide::kLhs});
  side_index_.emplace(rhs_hash, RuleMatch{id, RuleSide::kRhs});
  rules_.push_back(SynonymRule{std::move(lhs), std::move(rhs), closeness});
  return id;
}

std::vector<RuleMatch> RuleSet::Match(TokenSpan span) const {
  std::vector<RuleMatch> out;
  uint64_t h = HashTokenSpan(span.data(), span.size());
  auto [lo, hi] = side_index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    const auto& side = MatchedSide(it->second);
    if (side.size() == span.size() &&
        std::equal(side.begin(), side.end(), span.begin())) {
      out.push_back(it->second);
    }
  }
  return out;
}

}  // namespace aujoin
