#ifndef AUJOIN_SYNONYM_RULE_SET_H_
#define AUJOIN_SYNONYM_RULE_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace aujoin {

/// Identifier of a synonym rule inside a RuleSet.
using RuleId = uint32_t;

/// A synonym / abbreviation rule lhs -> rhs with closeness C(R) in (0, 1]
/// (Eq. 2). Rules are directed in the paper's notation, but matching is
/// symmetric: a segment equal to either side can pair with a segment equal
/// to the other side.
struct SynonymRule {
  std::vector<TokenId> lhs;
  std::vector<TokenId> rhs;
  double closeness = 1.0;
};

/// Which side of a rule a segment matched.
enum class RuleSide : uint8_t { kLhs, kRhs };

/// A (rule, side) hit produced when looking up a token span.
struct RuleMatch {
  RuleId rule;
  RuleSide side;
};

/// Dictionary of synonym rules with O(1) lookup of all rules whose lhs or
/// rhs equals a given token span.
class RuleSet {
 public:
  RuleSet() = default;

  /// Adds a rule; rejects empty sides or closeness outside (0, 1].
  Result<RuleId> AddRule(std::vector<TokenId> lhs, std::vector<TokenId> rhs,
                         double closeness = 1.0);

  size_t num_rules() const { return rules_.size(); }
  const SynonymRule& rule(RuleId id) const { return rules_[id]; }

  /// All rules for which `span` equals the lhs or the rhs.
  std::vector<RuleMatch> Match(TokenSpan span) const;

  /// The other side of a matched rule.
  const std::vector<TokenId>& OtherSide(const RuleMatch& m) const {
    const auto& r = rules_[m.rule];
    return m.side == RuleSide::kLhs ? r.rhs : r.lhs;
  }

  /// The side that was matched.
  const std::vector<TokenId>& MatchedSide(const RuleMatch& m) const {
    const auto& r = rules_[m.rule];
    return m.side == RuleSide::kLhs ? r.lhs : r.rhs;
  }

  /// Maximum number of tokens on any side of any rule (the synonym side of
  /// the paper's claw parameter k).
  size_t max_side_tokens() const { return max_side_tokens_; }

 private:
  std::vector<SynonymRule> rules_;
  std::unordered_multimap<uint64_t, RuleMatch> side_index_;
  size_t max_side_tokens_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_SYNONYM_RULE_SET_H_
