#include "storage/spill_file.h"

#include <algorithm>
#include <atomic>

namespace aujoin {
namespace {

/// Process-wide run sequence so concurrent joins spilling into the
/// same directory never collide on a name.
std::atomic<uint64_t> g_spill_seq{0};

}  // namespace

SpillWriter::SpillWriter(Env* env, std::string dir)
    : env_(env != nullptr ? env : Env::Default()),
      dir_(dir.empty() ? std::string(".") : std::move(dir)) {}

Status SpillWriter::Spill(
    std::vector<std::pair<uint32_t, uint32_t>>* pairs) {
  if (pairs->empty()) return Status::OK();
  std::sort(pairs->begin(), pairs->end());

  // Pack explicitly (two u32 words per pair) rather than dumping the
  // std::pair layout, so the on-disk run shape is pinned.
  std::vector<uint32_t> words;
  words.reserve(pairs->size() * 2);
  for (const auto& [first, second] : *pairs) {
    words.push_back(first);
    words.push_back(second);
  }
  const uint64_t bytes = words.size() * sizeof(uint32_t);

  std::string path =
      dir_ + "/aujoin-spill-" +
      std::to_string(g_spill_seq.fetch_add(1, std::memory_order_relaxed)) +
      ".run";
  Result<std::unique_ptr<WritableFile>> file =
      env_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(words.data(), bytes);
  if (status.ok()) status = (*file)->Close();
  if (!status.ok()) {
    (*file)->Close();                    // best effort if Append failed
    (void)env_->RemoveFile(path);        // best effort; crash cleans too
    return status;
  }
  // Map, then unlink: the mapping keeps the run readable while the
  // name disappears, so nothing can leak past this point.
  Result<std::shared_ptr<const FileMapping>> mapping = env_->MapFile(path);
  if (!mapping.ok()) {
    (void)env_->RemoveFile(path);
    return mapping.status();
  }
  AUJOIN_RETURN_NOT_OK(env_->RemoveFile(path));

  SpillRun run;
  run.mapping = std::move(*mapping);
  run.num_pairs = pairs->size();
  runs_.push_back(std::move(run));
  spilled_pairs_ += pairs->size();
  spilled_bytes_ += bytes;
  std::vector<std::pair<uint32_t, uint32_t>>().swap(*pairs);
  return Status::OK();
}

SpillMerger::SpillMerger(
    const std::vector<SpillRun>& runs,
    const std::vector<std::pair<uint32_t, uint32_t>>& tail) {
  sources_.reserve(runs.size() + 1);
  for (const SpillRun& run : runs) {
    if (run.num_pairs == 0) continue;
    Source source;
    source.run = &run;
    source.size = run.num_pairs;
    sources_.push_back(source);
  }
  if (!tail.empty()) {
    Source source;
    source.tail = &tail;
    source.size = tail.size();
    sources_.push_back(source);
  }
}

bool SpillMerger::Next(std::pair<uint32_t, uint32_t>* out) {
  // Linear scan over the (few) sources for the smallest head; run
  // counts are bounded by working-set / budget, not by result size.
  size_t best = sources_.size();
  std::pair<uint32_t, uint32_t> best_pair{0, 0};
  for (size_t i = 0; i < sources_.size(); ++i) {
    Source& source = sources_[i];
    if (source.pos >= source.size) continue;
    std::pair<uint32_t, uint32_t> head =
        source.run != nullptr ? source.run->at(source.pos)
                              : (*source.tail)[source.pos];
    if (best == sources_.size() || head < best_pair) {
      best = i;
      best_pair = head;
    }
  }
  if (best == sources_.size()) return false;
  ++sources_[best].pos;
  *out = best_pair;
  return true;
}

}  // namespace aujoin
