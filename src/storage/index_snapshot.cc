/// \file
/// PreparedIndex::Save / PreparedIndex::Load — the bridge between the
/// in-memory prepared state and the on-disk snapshot format. Lives in
/// storage/ (not index/) because everything format-specific is here:
/// prepared_index.h only declares the two entry points.
///
/// What is persisted is the *derived* state — pebble tables for both
/// sides, the gram dictionary, the global frequency order and the
/// frozen CSR serving index. Records and knowledge are cheap to
/// re-ingest and are re-borrowed by Load exactly as Build borrows
/// them; the snapshot pins their identity with order-sensitive
/// fingerprints so a snapshot can never silently serve a different
/// world (kFailedPrecondition on mismatch). The CSR sections are
/// adopted zero-copy from the snapshot mapping via
/// CsrIndex::FromSections; the variable-shape structures are decoded
/// with full bounds validation (kCorruption, never UB).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "index/prepared_index.h"
#include "storage/env.h"
#include "storage/index_checkpoint.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "util/hash.h"

namespace aujoin {
namespace {

// --- fingerprints -----------------------------------------------------

uint64_t HashDouble(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Order-sensitive fingerprint of a collection's token-id sequences.
/// Token ids index the shared vocabulary, so this also pins the
/// interning the records were tokenised under.
uint64_t HashRecords(const std::vector<Record>& records) {
  uint64_t h = records.size();
  for (const Record& r : records) {
    h = HashCombine(h, r.id);
    h = HashCombine(h, HashTokenSpan(r.tokens.data(), r.tokens.size()));
  }
  return h;
}

/// Fingerprint of the knowledge the pebbles were generated from: every
/// rule's sides and closeness, every taxonomy node's parent and name.
uint64_t HashKnowledge(const Knowledge& knowledge) {
  uint64_t h = 0;
  if (knowledge.vocab != nullptr) h = HashCombine(h, knowledge.vocab->size());
  size_t num_rules =
      knowledge.rules == nullptr ? 0 : knowledge.rules->num_rules();
  h = HashCombine(h, num_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    const SynonymRule& rule = knowledge.rules->rule(static_cast<RuleId>(i));
    h = HashCombine(h, HashTokenSpan(rule.lhs.data(), rule.lhs.size()));
    h = HashCombine(h, HashTokenSpan(rule.rhs.data(), rule.rhs.size()));
    h = HashCombine(h, HashDouble(rule.closeness));
  }
  size_t num_nodes =
      knowledge.taxonomy == nullptr ? 0 : knowledge.taxonomy->num_nodes();
  h = HashCombine(h, num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeId node = static_cast<NodeId>(i);
    h = HashCombine(h, knowledge.taxonomy->Parent(node));
    const std::vector<TokenId>& name = knowledge.taxonomy->Name(node);
    h = HashCombine(h, HashTokenSpan(name.data(), name.size()));
  }
  return h;
}

// --- flat-buffer encode/decode helpers --------------------------------

constexpr size_t kArrayAlign = 8;

/// Appends raw bytes to a section buffer, 8-byte aligning each array so
/// the mmap'd reader can hand out naturally aligned typed pointers.
class ByteWriter {
 public:
  void Align() { buffer_.resize((buffer_.size() + kArrayAlign - 1) &
                                ~(kArrayAlign - 1)); }

  template <typename T>
  void Append(const T* data, size_t count) {
    Align();
    const auto* bytes = reinterpret_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + count * sizeof(T));
  }

  template <typename T>
  void AppendValue(const T& value) {
    Append(&value, 1);
  }

  std::vector<uint8_t> Take() {
    Align();
    return std::move(buffer_);
  }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked sequential reads over one section's payload. Every
/// Take validates against the remaining size, so a malformed (yet
/// checksum-consistent) section surfaces as kCorruption, never as an
/// out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, uint64_t size, std::string what)
      : data_(data), size_(size), what_(std::move(what)) {}

  template <typename T>
  Result<const T*> Take(uint64_t count) {
    pos_ = (pos_ + kArrayAlign - 1) & ~(kArrayAlign - 1);
    // Compare in element space: `count * sizeof(T)` can wrap for a
    // hostile count, silently passing the bounds check.
    if (pos_ > size_ || count > (size_ - pos_) / sizeof(T)) {
      return Status::Corruption(what_ + ": array of " + std::to_string(count) +
                                " elements overruns the section");
    }
    const T* out = reinterpret_cast<const T*>(data_ + pos_);
    pos_ += count * sizeof(T);
    return out;
  }

  /// All payload consumed (up to alignment padding)?
  bool Exhausted() const {
    uint64_t aligned = (pos_ + kArrayAlign - 1) & ~(kArrayAlign - 1);
    return aligned >= size_;
  }

  const std::string& what() const { return what_; }

 private:
  const uint8_t* data_;
  uint64_t size_;
  uint64_t pos_ = 0;
  std::string what_;
};

// --- gram dictionary --------------------------------------------------

std::vector<uint8_t> EncodeGramDict(const Vocabulary& dict) {
  ByteWriter out;
  uint64_t count = dict.size();
  out.AppendValue(count);
  std::vector<uint64_t> offsets(count + 1, 0);
  for (uint64_t i = 0; i < count; ++i) {
    offsets[i + 1] =
        offsets[i] + dict.Spelling(static_cast<TokenId>(i)).size();
  }
  out.Append(offsets.data(), offsets.size());
  // One contiguous blob: Append aligns each call, which would inject
  // padding between spellings and desynchronise the offsets.
  std::string blob;
  blob.reserve(offsets[count]);
  for (uint64_t i = 0; i < count; ++i) {
    blob += dict.Spelling(static_cast<TokenId>(i));
  }
  out.Append(blob.data(), blob.size());
  return out.Take();
}

Status DecodeGramDict(const SnapshotReader& reader, Vocabulary* dict) {
  Result<SnapshotReader::Section> section = reader.Find(kSectionGramDict);
  if (!section.ok()) return section.status();
  ByteReader in(section->data, section->size, "gram dictionary");
  Result<const uint64_t*> count_r = in.Take<uint64_t>(1);
  if (!count_r.ok()) return count_r.status();
  uint64_t count = **count_r;
  if (count >= section->size) {  // also blocks count + 1 wrapping to 0
    return Status::Corruption("gram dictionary count exceeds the section");
  }
  Result<const uint64_t*> offsets_r = in.Take<uint64_t>(count + 1);
  if (!offsets_r.ok()) return offsets_r.status();
  const uint64_t* offsets = *offsets_r;
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("gram dictionary offsets not monotone");
    }
  }
  Result<const char*> blob_r = in.Take<char>(count == 0 ? 0 : offsets[count]);
  if (!blob_r.ok()) return blob_r.status();
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view spelling(*blob_r + offsets[i],
                              offsets[i + 1] - offsets[i]);
    // Interning in id order reproduces dense ids 0..count-1; a repeated
    // spelling would collapse onto an earlier id and shift the rest.
    if (dict->Intern(spelling) != static_cast<TokenId>(i)) {
      return Status::Corruption("gram dictionary spellings not distinct");
    }
  }
  return Status::OK();
}

// --- global order -----------------------------------------------------

std::vector<uint8_t> EncodeGlobalOrder(const GlobalOrder& order) {
  ByteWriter out;
  std::vector<GlobalOrder::RankedKey> rows = order.ExportRankOrder();
  out.AppendValue<uint64_t>(rows.size());
  out.Append(rows.data(), rows.size());
  return out.Take();
}

Status DecodeGlobalOrder(const SnapshotReader& reader, GlobalOrder* order) {
  Result<SnapshotReader::Section> section = reader.Find(kSectionGlobalOrder);
  if (!section.ok()) return section.status();
  ByteReader in(section->data, section->size, "global order");
  Result<const uint64_t*> count_r = in.Take<uint64_t>(1);
  if (!count_r.ok()) return count_r.status();
  uint64_t count = **count_r;
  Result<const GlobalOrder::RankedKey*> rows_r =
      in.Take<GlobalOrder::RankedKey>(count);
  if (!rows_r.ok()) return rows_r.status();
  order->ImportRankOrder(*rows_r, count);
  // Duplicate keys collapse inside the import maps, so a key-count
  // mismatch afterwards is exactly the non-distinct case.
  if (order->num_keys() != count) {
    return Status::Corruption("global order keys not distinct");
  }
  return Status::OK();
}

// --- pebble tables ----------------------------------------------------

std::vector<uint8_t> EncodePebbleTable(
    const std::vector<PreparedRecord>& prepared) {
  PebbleTableHeader header;
  header.num_records = prepared.size();
  for (const PreparedRecord& pr : prepared) {
    header.total_pebbles += pr.pebbles.pebbles.size();
    header.total_segments += pr.pebbles.segments.size();
    for (const WellDefinedSegment& seg : pr.pebbles.segments) {
      header.total_rule_matches += seg.rule_matches.size();
      header.total_taxonomy_nodes += seg.taxonomy_nodes.size();
    }
  }

  ByteWriter out;
  out.AppendValue(header);

  std::vector<uint64_t> pebble_offsets(prepared.size() + 1, 0);
  std::vector<uint64_t> segment_offsets(prepared.size() + 1, 0);
  std::vector<uint32_t> num_tokens(prepared.size(), 0);
  for (size_t i = 0; i < prepared.size(); ++i) {
    pebble_offsets[i + 1] =
        pebble_offsets[i] + prepared[i].pebbles.pebbles.size();
    segment_offsets[i + 1] =
        segment_offsets[i] + prepared[i].pebbles.segments.size();
    num_tokens[i] = static_cast<uint32_t>(prepared[i].num_tokens);
  }
  out.Append(pebble_offsets.data(), pebble_offsets.size());
  out.Append(segment_offsets.data(), segment_offsets.size());
  out.Append(num_tokens.data(), num_tokens.size());

  std::vector<PebbleRow> pebbles;
  pebbles.reserve(header.total_pebbles);
  std::vector<SegmentRow> segments;
  segments.reserve(header.total_segments);
  std::vector<RuleMatchRow> rules;
  rules.reserve(header.total_rule_matches);
  std::vector<uint32_t> nodes;
  nodes.reserve(header.total_taxonomy_nodes);
  for (const PreparedRecord& pr : prepared) {
    for (const Pebble& p : pr.pebbles.pebbles) {
      pebbles.push_back(PebbleRow{p.key, p.weight, p.segment, p.measure});
    }
    for (const WellDefinedSegment& seg : pr.pebbles.segments) {
      segments.push_back(SegmentRow{
          seg.span.begin, seg.span.end,
          static_cast<uint32_t>(seg.rule_matches.size()),
          static_cast<uint32_t>(seg.taxonomy_nodes.size())});
      for (const RuleMatch& m : seg.rule_matches) {
        rules.push_back(RuleMatchRow{
            m.rule, static_cast<uint32_t>(m.side == RuleSide::kRhs)});
      }
      nodes.insert(nodes.end(), seg.taxonomy_nodes.begin(),
                   seg.taxonomy_nodes.end());
    }
  }
  out.Append(pebbles.data(), pebbles.size());
  out.Append(segments.data(), segments.size());
  out.Append(rules.data(), rules.size());
  out.Append(nodes.data(), nodes.size());
  return out.Take();
}

Status DecodePebbleTable(const SnapshotReader& reader, uint32_t section_id,
                         const std::vector<Record>& records,
                         const Knowledge& knowledge,
                         std::vector<PreparedRecord>* prepared) {
  Result<SnapshotReader::Section> section = reader.Find(section_id);
  if (!section.ok()) return section.status();
  std::string what = "pebble table section " + std::to_string(section_id);
  ByteReader in(section->data, section->size, what);

  Result<const PebbleTableHeader*> header_r = in.Take<PebbleTableHeader>(1);
  if (!header_r.ok()) return header_r.status();
  const PebbleTableHeader& header = **header_r;
  if (header.num_records != records.size()) {
    return Status::FailedPrecondition(
        what + " holds " + std::to_string(header.num_records) +
        " records, the collection has " + std::to_string(records.size()));
  }
  uint64_t n = header.num_records;

  Result<const uint64_t*> pebble_offsets_r = in.Take<uint64_t>(n + 1);
  if (!pebble_offsets_r.ok()) return pebble_offsets_r.status();
  Result<const uint64_t*> segment_offsets_r = in.Take<uint64_t>(n + 1);
  if (!segment_offsets_r.ok()) return segment_offsets_r.status();
  Result<const uint32_t*> num_tokens_r = in.Take<uint32_t>(n);
  if (!num_tokens_r.ok()) return num_tokens_r.status();
  const uint64_t* pebble_offsets = *pebble_offsets_r;
  const uint64_t* segment_offsets = *segment_offsets_r;
  const uint32_t* num_tokens = *num_tokens_r;
  if (pebble_offsets[0] != 0 || segment_offsets[0] != 0 ||
      pebble_offsets[n] != header.total_pebbles ||
      segment_offsets[n] != header.total_segments) {
    return Status::Corruption(what + ": offsets disagree with totals");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (pebble_offsets[i] > pebble_offsets[i + 1] ||
        segment_offsets[i] > segment_offsets[i + 1]) {
      return Status::Corruption(what + ": offsets not monotone");
    }
    if (num_tokens[i] != records[i].num_tokens()) {
      return Status::FailedPrecondition(
          what + ": record " + std::to_string(i) + " has " +
          std::to_string(records[i].num_tokens()) +
          " tokens, the snapshot stored " + std::to_string(num_tokens[i]));
    }
  }

  Result<const PebbleRow*> pebbles_r =
      in.Take<PebbleRow>(header.total_pebbles);
  if (!pebbles_r.ok()) return pebbles_r.status();
  Result<const SegmentRow*> segments_r =
      in.Take<SegmentRow>(header.total_segments);
  if (!segments_r.ok()) return segments_r.status();
  Result<const RuleMatchRow*> rules_r =
      in.Take<RuleMatchRow>(header.total_rule_matches);
  if (!rules_r.ok()) return rules_r.status();
  Result<const uint32_t*> nodes_r =
      in.Take<uint32_t>(header.total_taxonomy_nodes);
  if (!nodes_r.ok()) return nodes_r.status();
  if (!in.Exhausted()) {
    return Status::Corruption(what + ": trailing bytes after the arrays");
  }

  uint64_t num_rules =
      knowledge.rules == nullptr ? 0 : knowledge.rules->num_rules();
  uint64_t num_nodes =
      knowledge.taxonomy == nullptr ? 0 : knowledge.taxonomy->num_nodes();
  uint64_t rule_cursor = 0;
  uint64_t node_cursor = 0;
  prepared->clear();
  prepared->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PreparedRecord& pr = (*prepared)[i];
    pr.num_tokens = num_tokens[i];
    uint64_t seg_count = segment_offsets[i + 1] - segment_offsets[i];
    pr.pebbles.segments.reserve(seg_count);
    for (uint64_t s = segment_offsets[i]; s < segment_offsets[i + 1]; ++s) {
      const SegmentRow& row = (*segments_r)[s];
      if (row.begin > row.end || row.end > num_tokens[i]) {
        return Status::Corruption(what + ": segment span out of range");
      }
      if (row.rule_count > header.total_rule_matches - rule_cursor ||
          row.node_count > header.total_taxonomy_nodes - node_cursor) {
        return Status::Corruption(what + ": segment consumes more matches " +
                                  "than the flat arrays hold");
      }
      WellDefinedSegment seg;
      seg.span = Segment{row.begin, row.end};
      seg.rule_matches.reserve(row.rule_count);
      for (uint32_t r = 0; r < row.rule_count; ++r) {
        const RuleMatchRow& m = (*rules_r)[rule_cursor++];
        if (m.rule >= num_rules || m.side > 1) {
          return Status::Corruption(what + ": rule match out of range");
        }
        seg.rule_matches.push_back(RuleMatch{
            m.rule, m.side == 0 ? RuleSide::kLhs : RuleSide::kRhs});
      }
      seg.taxonomy_nodes.reserve(row.node_count);
      for (uint32_t r = 0; r < row.node_count; ++r) {
        uint32_t node = (*nodes_r)[node_cursor++];
        if (node >= num_nodes) {
          return Status::Corruption(what + ": taxonomy node out of range");
        }
        seg.taxonomy_nodes.push_back(node);
      }
      pr.pebbles.segments.push_back(std::move(seg));
    }
    uint64_t pebble_count = pebble_offsets[i + 1] - pebble_offsets[i];
    pr.pebbles.pebbles.reserve(pebble_count);
    for (uint64_t p = pebble_offsets[i]; p < pebble_offsets[i + 1]; ++p) {
      const PebbleRow& row = (*pebbles_r)[p];
      if (row.segment >= seg_count || row.measure > 0xFF) {
        return Status::Corruption(what + ": pebble provenance out of range");
      }
      pr.pebbles.pebbles.push_back(Pebble{row.key, row.weight, row.segment,
                                          static_cast<uint8_t>(row.measure)});
    }
  }
  if (rule_cursor != header.total_rule_matches ||
      node_cursor != header.total_taxonomy_nodes) {
    return Status::Corruption(what + ": flat match arrays not fully consumed");
  }
  return Status::OK();
}

// --- appended-record texts (generational checkpoints) -----------------

/// kSectionAppendedTexts payload: u64 base_count, u64 count, u64
/// byte_offsets[count + 1], then the concatenated raw texts of records
/// base_count .. base_count + count - 1 in id order.
std::vector<uint8_t> EncodeAppendedTexts(const std::vector<Record>& records,
                                         uint64_t base_count) {
  ByteWriter out;
  uint64_t count = records.size() - base_count;
  out.AppendValue(base_count);
  out.AppendValue(count);
  std::vector<uint64_t> offsets(count + 1, 0);
  for (uint64_t i = 0; i < count; ++i) {
    offsets[i + 1] = offsets[i] + records[base_count + i].text.size();
  }
  out.Append(offsets.data(), offsets.size());
  // One contiguous blob (same reasoning as the gram dictionary: per-text
  // Append calls would inject alignment padding between texts).
  std::string blob;
  blob.reserve(offsets[count]);
  for (uint64_t i = 0; i < count; ++i) blob += records[base_count + i].text;
  out.Append(blob.data(), blob.size());
  return out.Take();
}

/// Shared body of PreparedIndex::Save and SaveIndexCheckpoint; when
/// `appended_texts` is non-null it is written as kSectionAppendedTexts.
Status SaveSnapshotImpl(const PreparedIndex& index, const std::string& path,
                        Env* env, const std::vector<uint8_t>* appended_texts) {
  // The snapshot's whole point is skipping the two expensive phases
  // (pebble generation and the CSR freeze), so the CSR must exist
  // before serialisation; ServingIndex() builds it on first use.
  const CsrIndex& csr = index.ServingIndex();

  SnapshotMeta meta;
  const MsimOptions& msim = index.msim_options();
  meta.msim_q = static_cast<uint32_t>(msim.q);
  meta.gram_measure = static_cast<uint32_t>(msim.gram_measure);
  meta.measures = msim.measures;
  meta.exact_match = msim.exact_match ? 1 : 0;
  meta.s_count = index.s_records().size();
  meta.t_count = index.t_records().size();
  meta.self_join = index.self_join() ? 1 : 0;
  meta.s_records_hash = HashRecords(index.s_records());
  meta.t_records_hash = index.self_join() ? meta.s_records_hash
                                          : HashRecords(index.t_records());
  meta.knowledge_hash = HashKnowledge(index.knowledge());
  meta.gram_dict_size = index.gram_dict().size();
  meta.csr_record_universe = csr.record_universe();
  meta.prepare_seconds = index.prepare_seconds();

  std::vector<uint8_t> gram_dict = EncodeGramDict(index.gram_dict());
  std::vector<uint8_t> order = EncodeGlobalOrder(index.global_order());
  std::vector<uint8_t> s_table = EncodePebbleTable(index.s_prepared());
  std::vector<uint8_t> t_table;
  if (!index.self_join()) t_table = EncodePebbleTable(index.t_prepared());

  SnapshotWriter writer(path, env);
  writer.AddSection(kSectionMeta, &meta, sizeof(meta));
  writer.AddSection(kSectionGramDict, gram_dict.data(), gram_dict.size());
  writer.AddSection(kSectionGlobalOrder, order.data(), order.size());
  writer.AddSection(kSectionSPrepared, s_table.data(), s_table.size());
  if (!index.self_join()) {
    writer.AddSection(kSectionTPrepared, t_table.data(), t_table.size());
  }
  writer.AddSection(kSectionCsrKeys, csr.keys_data(),
                    csr.num_keys() * sizeof(uint64_t));
  writer.AddSection(kSectionCsrOffsets, csr.offsets_data(),
                    (csr.num_keys() + 1) * sizeof(uint32_t));
  writer.AddSection(kSectionCsrPostings, csr.postings_data(),
                    csr.total_postings() * sizeof(uint32_t));
  writer.AddSection(kSectionCsrSlots, csr.slots_data(),
                    csr.num_slots() * sizeof(uint32_t));
  if (appended_texts != nullptr) {
    writer.AddSection(kSectionAppendedTexts, appended_texts->data(),
                      appended_texts->size());
  }
  return writer.Finish();
}

}  // namespace

// --- PreparedIndex::Save ----------------------------------------------

Status PreparedIndex::Save(const std::string& path, Env* env) const {
  return SaveSnapshotImpl(*this, path, env, nullptr);
}

// --- generational checkpoints -----------------------------------------

Status SaveIndexCheckpoint(const PreparedIndex& index, uint64_t base_count,
                           const std::string& path, Env* env) {
  if (!index.self_join()) {
    return Status::InvalidArgument(
        "checkpoints only apply to self-join (serving) indexes");
  }
  if (base_count > index.s_records().size()) {
    return Status::InvalidArgument(
        "checkpoint base_count " + std::to_string(base_count) +
        " exceeds the record count " +
        std::to_string(index.s_records().size()));
  }
  std::vector<uint8_t> texts =
      EncodeAppendedTexts(index.s_records(), base_count);
  return SaveSnapshotImpl(index, path, env, &texts);
}

Result<CheckpointTexts> ReadCheckpointTexts(const std::string& path,
                                            Env* env) {
  Result<std::shared_ptr<const SnapshotReader>> reader_r =
      SnapshotReader::Open(path, env);
  if (!reader_r.ok()) return reader_r.status();
  const SnapshotReader& reader = **reader_r;

  Result<const SnapshotMeta*> meta_r =
      reader.Array<SnapshotMeta>(kSectionMeta, 1);
  if (!meta_r.ok()) return meta_r.status();
  const SnapshotMeta& meta = **meta_r;

  CheckpointTexts out;
  if (!reader.Has(kSectionAppendedTexts)) {
    // A plain snapshot: everything is base, nothing was appended.
    out.base_count = meta.t_count;
    return out;
  }

  Result<SnapshotReader::Section> section =
      reader.Find(kSectionAppendedTexts);
  if (!section.ok()) return section.status();
  ByteReader in(section->data, section->size, "appended texts");
  Result<const uint64_t*> base_r = in.Take<uint64_t>(1);
  if (!base_r.ok()) return base_r.status();
  Result<const uint64_t*> count_r = in.Take<uint64_t>(1);
  if (!count_r.ok()) return count_r.status();
  uint64_t base_count = **base_r;
  uint64_t count = **count_r;
  if (count >= section->size) {  // also blocks count + 1 wrapping to 0
    return Status::Corruption(path +
                              ": appended-texts count exceeds the section");
  }
  if (base_count + count != meta.t_count) {
    return Status::Corruption(
        path + ": appended-texts base " + std::to_string(base_count) + " + " +
        std::to_string(count) + " disagrees with the snapshot record count " +
        std::to_string(meta.t_count));
  }
  Result<const uint64_t*> offsets_r = in.Take<uint64_t>(count + 1);
  if (!offsets_r.ok()) return offsets_r.status();
  const uint64_t* offsets = *offsets_r;
  if (offsets[0] != 0) {
    return Status::Corruption(path + ": appended-texts offsets must start " +
                              "at 0");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(path +
                                ": appended-texts offsets not monotone");
    }
  }
  Result<const char*> blob_r = in.Take<char>(count == 0 ? 0 : offsets[count]);
  if (!blob_r.ok()) return blob_r.status();
  out.base_count = base_count;
  out.texts.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.texts.emplace_back(*blob_r + offsets[i], offsets[i + 1] - offsets[i]);
  }
  return out;
}

// --- PreparedIndex::Load ----------------------------------------------

Result<std::shared_ptr<const PreparedIndex>> PreparedIndex::Load(
    const Knowledge& knowledge, const MsimOptions& msim,
    const std::vector<Record>& s, const std::vector<Record>* t,
    const std::string& path, Env* env) {
  Result<std::shared_ptr<const SnapshotReader>> reader_r =
      SnapshotReader::Open(path, env);
  if (!reader_r.ok()) return reader_r.status();
  std::shared_ptr<const SnapshotReader> reader = *reader_r;

  Result<const SnapshotMeta*> meta_r =
      reader->Array<SnapshotMeta>(kSectionMeta, 1);
  if (!meta_r.ok()) return meta_r.status();
  const SnapshotMeta& meta = **meta_r;

  // World identity first: a valid snapshot of the wrong inputs must be
  // refused before any derived state is adopted.
  const std::vector<Record>* t_ptr = (t == nullptr) ? &s : t;
  bool self = (t_ptr == &s);
  if (meta.msim_q != static_cast<uint32_t>(msim.q) ||
      meta.gram_measure != static_cast<uint32_t>(msim.gram_measure) ||
      meta.measures != msim.measures ||
      meta.exact_match != (msim.exact_match ? 1u : 0u)) {
    return Status::FailedPrecondition(
        path + ": snapshot was built with different similarity options");
  }
  if ((meta.self_join != 0) != self || meta.s_count != s.size() ||
      meta.t_count != t_ptr->size()) {
    return Status::FailedPrecondition(
        path + ": snapshot records " + std::to_string(meta.s_count) + "/" +
        std::to_string(meta.t_count) + " (self_join=" +
        std::to_string(meta.self_join) + ") do not match the collections");
  }
  if (meta.s_records_hash != HashRecords(s) ||
      meta.t_records_hash !=
          (self ? meta.s_records_hash : HashRecords(*t_ptr))) {
    return Status::FailedPrecondition(
        path + ": snapshot was built from different record contents");
  }
  if (meta.knowledge_hash != HashKnowledge(knowledge)) {
    return Status::FailedPrecondition(
        path + ": snapshot was built against different knowledge " +
        "(rules/taxonomy/vocabulary)");
  }

  std::shared_ptr<PreparedIndex> index(new PreparedIndex());
  index->knowledge_ = knowledge;
  index->msim_ = msim;
  index->s_records_ = &s;
  index->t_records_ = t_ptr;
  index->prepare_seconds_ = meta.prepare_seconds;

  AUJOIN_RETURN_NOT_OK(DecodeGramDict(*reader, &index->gram_dict_));
  if (index->gram_dict_.size() != meta.gram_dict_size) {
    return Status::Corruption(path + ": gram dictionary size disagrees " +
                              "with the snapshot meta");
  }
  AUJOIN_RETURN_NOT_OK(DecodeGlobalOrder(*reader, &index->order_));
  AUJOIN_RETURN_NOT_OK(DecodePebbleTable(*reader, kSectionSPrepared, s,
                                         knowledge, &index->s_prepared_));
  if (!self) {
    AUJOIN_RETURN_NOT_OK(DecodePebbleTable(*reader, kSectionTPrepared, *t_ptr,
                                           knowledge, &index->t_prepared_));
  }

  // CSR serving sections: adopted in place, no copy — the index keeps
  // the reader (and thus the mapping) alive through the CsrIndex owner
  // handle. Counts are derived from the section sizes themselves.
  Result<SnapshotReader::Section> keys_section =
      reader->Find(kSectionCsrKeys);
  if (!keys_section.ok()) return keys_section.status();
  if (keys_section->size % sizeof(uint64_t) != 0) {
    return Status::Corruption(path + ": CSR keys section size not a " +
                              "multiple of 8");
  }
  uint64_t num_keys = keys_section->size / sizeof(uint64_t);
  Result<const uint64_t*> keys_r =
      reader->Array<uint64_t>(kSectionCsrKeys, num_keys);
  if (!keys_r.ok()) return keys_r.status();
  Result<const uint32_t*> offsets_r =
      reader->Array<uint32_t>(kSectionCsrOffsets, num_keys + 1);
  if (!offsets_r.ok()) return offsets_r.status();
  Result<SnapshotReader::Section> postings_section =
      reader->Find(kSectionCsrPostings);
  if (!postings_section.ok()) return postings_section.status();
  if (postings_section->size % sizeof(uint32_t) != 0) {
    return Status::Corruption(path + ": CSR postings section size not a " +
                              "multiple of 4");
  }
  uint64_t num_postings = postings_section->size / sizeof(uint32_t);
  Result<const uint32_t*> postings_r =
      reader->Array<uint32_t>(kSectionCsrPostings, num_postings);
  if (!postings_r.ok()) return postings_r.status();
  Result<SnapshotReader::Section> slots_section =
      reader->Find(kSectionCsrSlots);
  if (!slots_section.ok()) return slots_section.status();
  if (slots_section->size % sizeof(uint32_t) != 0) {
    return Status::Corruption(path + ": CSR slots section size not a " +
                              "multiple of 4");
  }
  uint64_t num_slots = slots_section->size / sizeof(uint32_t);
  Result<const uint32_t*> slots_r =
      reader->Array<uint32_t>(kSectionCsrSlots, num_slots);
  if (!slots_r.ok()) return slots_r.status();
  if (meta.csr_record_universe > t_ptr->size()) {
    return Status::Corruption(path + ": CSR record universe exceeds the " +
                              "T-side record count");
  }

  Result<CsrIndex> csr = CsrIndex::FromSections(
      *keys_r, num_keys, *offsets_r, *postings_r, num_postings, *slots_r,
      num_slots, meta.csr_record_universe, reader);
  if (!csr.ok()) return csr.status();
  index->serving_index_ = std::move(*csr);
  // The serving index exists from birth; index_seconds() stays 0.0
  // because this process never paid the freeze (callers measure the
  // snapshot load separately).
  index->serving_built_.store(true, std::memory_order_release);
  return std::shared_ptr<const PreparedIndex>(std::move(index));
}

}  // namespace aujoin
