/// \file
/// The write-ahead-log file format — RocksDB's log format, sized for
/// aujoin. A log is a sequence of fixed 32 KiB blocks; a record is
/// length-prefixed, XXH64-checksummed, and fragmented across blocks
/// with FULL / FIRST / MIDDLE / LAST fragment types so the reader can
/// resynchronise per block and a torn tail damages at most the records
/// it physically covers. Full rules and recovery semantics:
/// docs/wal-format.md.
///
/// Fragment layout (little-endian, 11-byte header + payload):
///   u64 checksum   XXH64 over the payload bytes, seeded with the
///                  fragment type — a payload sliding between types
///                  (or a zeroed header) can never validate.
///   u16 length     payload bytes; the fragment never crosses a block
///                  boundary, so length <= block space remaining.
///   u8  type       1 = FULL, 2 = FIRST, 3 = MIDDLE, 4 = LAST.
///
/// When fewer than 11 bytes remain in a block the writer zero-fills
/// them (the trailer); a reader sees type 0 / length 0 / checksum 0
/// and skips to the next block. Zero is deliberately not a valid
/// fragment type: preallocated or padded regions read as padding, and
/// any non-zero damage inside them is detectable.
///
/// The payload aujoin logs is one staged append:
///   u32 id         the record's global id (frozen + staging position)
///   bytes          the raw record text (re-tokenised on replay)
/// The id makes replay idempotent across the checkpoint window: a
/// record already compacted into a snapshot (id < current size) is
/// skipped; the next expected id (== size) is appended; anything past
/// that (a gap) is typed corruption.

#ifndef AUJOIN_STORAGE_WAL_FORMAT_H_
#define AUJOIN_STORAGE_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "storage/checksum.h"

namespace aujoin {

/// Fixed block size; fragments never span a block boundary.
constexpr size_t kWalBlockSize = 1u << 15;  // 32 KiB

/// Fragment header bytes: u64 checksum + u16 length + u8 type.
constexpr size_t kWalHeaderSize = 11;

/// The largest payload one fragment can carry.
constexpr size_t kWalMaxFragmentPayload = kWalBlockSize - kWalHeaderSize;

enum WalFragmentType : uint8_t {
  /// Never written as a fragment: zeroed trailers/preallocation only.
  kWalZeroType = 0,
  kWalFull = 1,
  kWalFirst = 2,
  kWalMiddle = 3,
  kWalLast = 4,
};
constexpr uint8_t kWalMaxFragmentType = kWalLast;

/// The checksum stored in a fragment header: XXH64 of the payload,
/// seeded with the type so FIRST/MIDDLE/LAST fragments of identical
/// bytes cannot be confused for one another.
inline uint64_t WalFragmentChecksum(uint8_t type, const void* payload,
                                    size_t length) {
  return Xxh64(payload, length, /*seed=*/0x77616Cu ^ type);
}

/// Serialises one fragment header into `out[0..kWalHeaderSize)`.
inline void EncodeWalFragmentHeader(uint8_t type, const void* payload,
                                    uint16_t length, uint8_t* out) {
  uint64_t checksum = WalFragmentChecksum(type, payload, length);
  std::memcpy(out, &checksum, sizeof(checksum));
  std::memcpy(out + 8, &length, sizeof(length));
  out[10] = type;
}

/// One staged-append log entry: global record id + raw text.
inline void EncodeWalAppend(uint32_t id, std::string_view text,
                            std::string* out) {
  out->clear();
  out->reserve(sizeof(id) + text.size());
  out->append(reinterpret_cast<const char*>(&id), sizeof(id));
  out->append(text.data(), text.size());
}

/// False when the payload is too short to hold the id prefix.
inline bool DecodeWalAppend(std::string_view payload, uint32_t* id,
                            std::string_view* text) {
  if (payload.size() < sizeof(*id)) return false;
  std::memcpy(id, payload.data(), sizeof(*id));
  *text = payload.substr(sizeof(*id));
  return true;
}

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_WAL_FORMAT_H_
