#include "storage/wal_reader.h"

#include <cstring>
#include <utility>

#include "storage/wal_format.h"

namespace aujoin {
namespace {

struct FragmentHeader {
  uint64_t checksum = 0;
  uint16_t length = 0;
  uint8_t type = 0;
};

FragmentHeader ReadHeader(const uint8_t* at) {
  FragmentHeader h;
  std::memcpy(&h.checksum, at, sizeof(h.checksum));
  std::memcpy(&h.length, at + 8, sizeof(h.length));
  h.type = at[10];
  return h;
}

bool AllZero(const uint8_t* data, uint64_t size) {
  for (uint64_t i = 0; i < size; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

/// A checksum-valid fragment parses at `pos` (respecting block
/// geometry)? Used only after damage, to tell a torn tail (nothing
/// valid follows) from mid-log corruption (something does).
bool ValidFragmentAt(const uint8_t* data, uint64_t size, uint64_t pos) {
  uint64_t block_left = kWalBlockSize - pos % kWalBlockSize;
  if (block_left < kWalHeaderSize) return false;
  if (pos + kWalHeaderSize > size) return false;
  FragmentHeader h = ReadHeader(data + pos);
  if (h.type == kWalZeroType || h.type > kWalMaxFragmentType) return false;
  if (h.length > block_left - kWalHeaderSize) return false;
  if (pos + kWalHeaderSize + h.length > size) return false;
  return WalFragmentChecksum(h.type, data + pos + kWalHeaderSize, h.length) ==
         h.checksum;
}

}  // namespace

Result<WalReplay> WalReader::ReadAll(Env* env, const std::string& path) {
  Result<std::shared_ptr<const FileMapping>> mapping_r = env->MapFile(path);
  if (!mapping_r.ok()) return mapping_r.status();
  std::shared_ptr<const FileMapping> mapping = *mapping_r;
  const uint8_t* data = mapping->data();
  const uint64_t size = mapping->size();

  WalReplay out;
  std::string pending;  // accumulates FIRST..MIDDLE..LAST fragments
  bool in_record = false;
  uint64_t pos = 0;
  bool damaged = false;
  uint64_t damage_at = 0;

  while (pos < size) {
    uint64_t block_left = kWalBlockSize - pos % kWalBlockSize;
    uint64_t file_left = size - pos;
    if (block_left < kWalHeaderSize || file_left < kWalHeaderSize) {
      // Block trailer (or a cut inside one): legal only as zeros.
      uint64_t span = block_left < file_left ? block_left : file_left;
      if (!AllZero(data + pos, span)) {
        damaged = true;
        damage_at = pos;
        break;
      }
      pos += span;
      continue;
    }
    FragmentHeader h = ReadHeader(data + pos);
    if (h.type == kWalZeroType) {
      // Padding claim: the rest of this block (a writer never emits a
      // zero-type fragment) — every byte of it must actually be zero,
      // so flipped bits inside padding still read as damage.
      uint64_t span = block_left < file_left ? block_left : file_left;
      if (!AllZero(data + pos, span)) {
        damaged = true;
        damage_at = pos;
        break;
      }
      pos += span;
      continue;
    }
    if (h.type > kWalMaxFragmentType ||
        h.length > block_left - kWalHeaderSize ||
        kWalHeaderSize + h.length > file_left ||
        WalFragmentChecksum(h.type, data + pos + kWalHeaderSize, h.length) !=
            h.checksum) {
      damaged = true;
      damage_at = pos;
      break;
    }
    // A valid fragment in an impossible position (FULL/FIRST inside a
    // fragmented record, MIDDLE/LAST outside one) means fragments were
    // lost: damage, not a parse quirk.
    bool starts = (h.type == kWalFull || h.type == kWalFirst);
    if (starts == in_record) {
      damaged = true;
      damage_at = pos;
      break;
    }
    const char* payload = reinterpret_cast<const char*>(data) + pos +
                          kWalHeaderSize;
    pos += kWalHeaderSize + h.length;
    switch (h.type) {
      case kWalFull:
        out.records.emplace_back(payload, h.length);
        out.valid_bytes = pos;
        break;
      case kWalFirst:
        pending.assign(payload, h.length);
        in_record = true;
        break;
      case kWalMiddle:
        pending.append(payload, h.length);
        break;
      case kWalLast:
        pending.append(payload, h.length);
        out.records.push_back(std::move(pending));
        pending.clear();
        in_record = false;
        out.valid_bytes = pos;
        break;
    }
  }

  if (damaged) {
    // Torn tail or mid-log damage? Scan every later position for a
    // checksum-valid fragment: one hit means intact (acknowledged)
    // records sit beyond the hole, and replay must not silently drop
    // them. Runs only on damaged files, so clean recovery never pays
    // for it.
    for (uint64_t q = damage_at + 1; q + kWalHeaderSize <= size; ++q) {
      if (ValidFragmentAt(data, size, q)) {
        return Status::Corruption(
            path + ": log damaged at offset " + std::to_string(damage_at) +
            " with intact records after it (mid-log corruption)");
      }
    }
    out.torn_tail = true;
  } else if (in_record) {
    // The file ends cleanly but mid-record: the unfinished chain was
    // never acknowledged; drop it as a torn tail.
    out.torn_tail = true;
  }
  return out;
}

}  // namespace aujoin
