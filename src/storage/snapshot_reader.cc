#include "storage/snapshot_reader.h"

#include <cstring>

#include "storage/checksum.h"

namespace aujoin {
namespace {

Status CorruptionAt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

}  // namespace

Result<std::shared_ptr<const SnapshotReader>> SnapshotReader::Open(
    const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  // Private constructor: build through a raw new, publish as const.
  std::shared_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->path_ = path;

  Result<std::shared_ptr<const FileMapping>> mapping = env->MapFile(path);
  if (!mapping.ok()) return mapping.status();
  reader->mapping_ = *mapping;
  reader->data_ = reader->mapping_->data();
  reader->size_ = reader->mapping_->size();

  // Header: size, magic, checksum, then version (a corrupted file must
  // not pass as "wrong version", so the checksum gates the skew check).
  if (reader->size_ < sizeof(SnapshotHeader)) {
    return CorruptionAt(path, "truncated before the header (" +
                                  std::to_string(reader->size_) + " bytes)");
  }
  SnapshotHeader header;
  std::memcpy(&header, reader->data_, sizeof(header));
  if (header.magic != kSnapshotMagic) {
    return CorruptionAt(path, "bad magic (not an aujoin snapshot)");
  }
  uint64_t expected_checksum =
      Xxh64(reader->data_, sizeof(header) - sizeof(header.header_checksum));
  if (header.header_checksum != expected_checksum) {
    return CorruptionAt(path, "header checksum mismatch");
  }
  if (header.format_version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        path + ": snapshot format version " +
        std::to_string(header.format_version) + ", this build reads version " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (header.file_size != reader->size_) {
    return CorruptionAt(path, "file is " + std::to_string(reader->size_) +
                                  " bytes, header declares " +
                                  std::to_string(header.file_size) +
                                  " (truncated or appended)");
  }

  // Section table bounds, then each section's bounds + checksum. After
  // this loop every byte a consumer can reach has been validated.
  uint64_t table_bytes = static_cast<uint64_t>(header.section_count) *
                         sizeof(SnapshotSectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > reader->size_) {
    return CorruptionAt(path, "section table overruns the file");
  }
  reader->table_.resize(header.section_count);
  std::memcpy(reader->table_.data(), reader->data_ + sizeof(SnapshotHeader),
              table_bytes);
  for (const SnapshotSectionEntry& entry : reader->table_) {
    if (entry.offset % kSnapshotAlignment != 0) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " is misaligned");
    }
    if (entry.offset > reader->size_ ||
        entry.size > reader->size_ - entry.offset) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " overruns the file");
    }
    uint64_t checksum = Xxh64(reader->data_ + entry.offset, entry.size);
    if (checksum != entry.checksum) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " checksum mismatch");
    }
  }
  return std::shared_ptr<const SnapshotReader>(std::move(reader));
}

bool SnapshotReader::Has(uint32_t id) const {
  for (const SnapshotSectionEntry& entry : table_) {
    if (entry.id == id) return true;
  }
  return false;
}

Result<SnapshotReader::Section> SnapshotReader::Find(uint32_t id) const {
  for (const SnapshotSectionEntry& entry : table_) {
    if (entry.id == id) {
      return Section{data_ + entry.offset, entry.size};
    }
  }
  return Status::NotFound(path_ + ": snapshot has no section " +
                          std::to_string(id));
}

}  // namespace aujoin
