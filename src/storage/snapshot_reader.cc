#include "storage/snapshot_reader.h"

#include <cstdio>
#include <cstring>

#include "storage/checksum.h"

#if defined(__unix__) || defined(__APPLE__)
#define AUJOIN_SNAPSHOT_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace aujoin {
namespace {

Status CorruptionAt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

}  // namespace

SnapshotReader::~SnapshotReader() {
  if (data_ == nullptr) return;
#if AUJOIN_SNAPSHOT_MMAP
  if (mapped_) {
    munmap(const_cast<uint8_t*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

Result<std::shared_ptr<const SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  // Private constructor: build through a raw new, publish as const.
  std::shared_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->path_ = path;

#if AUJOIN_SNAPSHOT_MMAP
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return Status::IoError("cannot stat " + path);
  }
  reader->size_ = static_cast<uint64_t>(st.st_size);
  if (reader->size_ > 0) {
    void* map = mmap(nullptr, reader->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      close(fd);
      return Status::IoError("cannot mmap " + path);
    }
    reader->data_ = static_cast<const uint8_t*>(map);
    reader->mapped_ = true;
  }
  close(fd);
#else
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  reader->size_ = size < 0 ? 0 : static_cast<uint64_t>(size);
  if (reader->size_ > 0) {
    auto* buffer = new uint8_t[reader->size_];
    if (std::fread(buffer, 1, reader->size_, file) != reader->size_) {
      delete[] buffer;
      std::fclose(file);
      return Status::IoError("short read from " + path);
    }
    reader->data_ = buffer;
  }
  std::fclose(file);
#endif

  // Header: size, magic, checksum, then version (a corrupted file must
  // not pass as "wrong version", so the checksum gates the skew check).
  if (reader->size_ < sizeof(SnapshotHeader)) {
    return CorruptionAt(path, "truncated before the header (" +
                                  std::to_string(reader->size_) + " bytes)");
  }
  SnapshotHeader header;
  std::memcpy(&header, reader->data_, sizeof(header));
  if (header.magic != kSnapshotMagic) {
    return CorruptionAt(path, "bad magic (not an aujoin snapshot)");
  }
  uint64_t expected_checksum =
      Xxh64(reader->data_, sizeof(header) - sizeof(header.header_checksum));
  if (header.header_checksum != expected_checksum) {
    return CorruptionAt(path, "header checksum mismatch");
  }
  if (header.format_version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        path + ": snapshot format version " +
        std::to_string(header.format_version) + ", this build reads version " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (header.file_size != reader->size_) {
    return CorruptionAt(path, "file is " + std::to_string(reader->size_) +
                                  " bytes, header declares " +
                                  std::to_string(header.file_size) +
                                  " (truncated or appended)");
  }

  // Section table bounds, then each section's bounds + checksum. After
  // this loop every byte a consumer can reach has been validated.
  uint64_t table_bytes = static_cast<uint64_t>(header.section_count) *
                         sizeof(SnapshotSectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > reader->size_) {
    return CorruptionAt(path, "section table overruns the file");
  }
  reader->table_.resize(header.section_count);
  std::memcpy(reader->table_.data(), reader->data_ + sizeof(SnapshotHeader),
              table_bytes);
  for (const SnapshotSectionEntry& entry : reader->table_) {
    if (entry.offset % kSnapshotAlignment != 0) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " is misaligned");
    }
    if (entry.offset > reader->size_ ||
        entry.size > reader->size_ - entry.offset) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " overruns the file");
    }
    uint64_t checksum = Xxh64(reader->data_ + entry.offset, entry.size);
    if (checksum != entry.checksum) {
      return CorruptionAt(path, "section " + std::to_string(entry.id) +
                                    " checksum mismatch");
    }
  }
  return std::shared_ptr<const SnapshotReader>(std::move(reader));
}

bool SnapshotReader::Has(uint32_t id) const {
  for (const SnapshotSectionEntry& entry : table_) {
    if (entry.id == id) return true;
  }
  return false;
}

Result<SnapshotReader::Section> SnapshotReader::Find(uint32_t id) const {
  for (const SnapshotSectionEntry& entry : table_) {
    if (entry.id == id) {
      return Section{data_ + entry.offset, entry.size};
    }
  }
  return Status::NotFound(path_ + ": snapshot has no section " +
                          std::to_string(id));
}

}  // namespace aujoin
