/// \file
/// FaultInjectionEnv — a deterministic crash machine wrapped around a
/// real Env (the RocksDB FaultInjectionTestEnv pattern). It tracks, for
/// every file written through it, how many bytes have actually been
/// fsynced, and journals every directory-entry mutation (create /
/// rename / remove / truncate) that has not yet been made durable by a
/// SyncDir on its parent. Tests then drive two controls:
///
///   - FailAfterOps(n): the first n mutating operations succeed, the
///     (n+1)-th and every later one fail with kIoError — a process
///     dying at an arbitrary syscall. Sweeping n over a workload visits
///     every kill point it contains.
///   - SimulateCrash(): models the machine dying — every file is
///     truncated back to its synced size (unsynced appends vanish) and
///     every un-SyncDir'd directory mutation is rolled back (an
///     unpublished rename loses the new name, an unsynced creation
///     disappears). What remains is exactly what POSIX guarantees
///     survives, and recovery code must cope with it.
///
/// Read operations (MapFile / GetFileSize / FileExists) pass through
/// untouched: a live process always sees its own writes; only the
/// crash boundary loses them.

#ifndef AUJOIN_STORAGE_FAULT_INJECTION_ENV_H_
#define AUJOIN_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"

namespace aujoin {

class FaultInjectionEnv : public Env {
 public:
  /// `base` (usually Env::Default()) must outlive this env.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // --- test controls --------------------------------------------------

  /// Lets the next `n` mutating operations succeed; the one after that
  /// and every later one fail with kIoError until ClearFault. Counted
  /// operations: NewWritableFile, Append, Sync, Allocate, Close,
  /// RenameFile, RemoveFile, TruncateFile, SyncDir.
  void FailAfterOps(int n);
  void ClearFault();
  /// True once an injected fault has fired.
  bool fault_fired() const;

  /// Total mutating operations attempted so far — the sweep bound for
  /// a FailAfterOps kill-point matrix.
  int mutating_ops() const;

  /// Drops everything a real crash would drop: truncates every tracked
  /// file to its synced size and rolls back unsynced directory-entry
  /// mutations in reverse order. Clears all tracking and any armed
  /// fault, so the same env then observes the recovered world.
  Status SimulateCrash();

  /// Human-readable log of successful mutating operations since the
  /// last call ("rename a -> b", "syncdir d", ...) — for asserting
  /// durability ordering (e.g. SyncDir follows the snapshot rename).
  std::vector<std::string> TakeOpLog();

  // --- Env ------------------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::shared_ptr<const FileMapping>> MapFile(
      const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultInjectionWritableFile;

  /// Bytes appended / bytes synced for one file written through this
  /// env. Tracking survives renames (the state follows the new name).
  struct FileState {
    uint64_t size = 0;
    uint64_t synced_size = 0;
  };

  /// One directory-entry mutation not yet made durable by SyncDir on
  /// its parent; `old_bytes` holds whatever content the operation
  /// destroyed, so SimulateCrash can restore it.
  struct DirOp {
    enum Kind { kCreate, kRename, kRemove, kTruncate };
    Kind kind = kCreate;
    std::string path;  // created / rename target / removed / truncated
    std::string from;  // rename source
    bool had_old = false;
    std::string old_bytes;
  };

  /// Counts the op, applies an armed fault, and appends to the op log
  /// on success. Callers hold `mutex_`.
  Status CountOpLocked(const std::string& what);
  /// Reads a whole file into `out` through the base env (for undo
  /// journaling); missing file yields had_old = false.
  bool SnapshotFile(const std::string& path, std::string* out);
  Status WriteWholeFile(const std::string& path, const std::string& bytes);

  // Hooks for the wrapped WritableFile.
  Status FileAppend(const std::string& path, WritableFile* base_file,
                    const void* data, size_t size);
  Status FileSync(const std::string& path, WritableFile* base_file);
  Status FileAllocate(const std::string& path, WritableFile* base_file,
                      uint64_t size);
  Status FileClose(const std::string& path, WritableFile* base_file);

  Env* base_;
  mutable std::mutex mutex_;
  std::map<std::string, FileState> files_;
  std::vector<DirOp> journal_;
  std::vector<std::string> op_log_;
  bool fault_armed_ = false;
  bool fault_fired_ = false;
  int ops_until_fault_ = 0;
  int total_ops_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_FAULT_INJECTION_ENV_H_
