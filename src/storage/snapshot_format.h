/// \file
/// The versioned on-disk snapshot format shared by SnapshotWriter and
/// SnapshotReader — the persistence layer that lets a PreparedIndex /
/// CsrIndex cold-start in milliseconds instead of re-running pebble
/// generation and CSR freezing. Full layout reference with invariants:
/// docs/snapshot-format.md.
///
/// A snapshot is a fixed little-endian header, a section table, and a
/// sequence of independently checksummed payload sections, each
/// 64-byte aligned in the file so a reader can mmap the whole file and
/// hand out usable typed pointers into it (the flat CSR arrays are
/// served directly from the mapping; variable-shape structures are
/// bulk-copied into their in-memory form). Everything a reader
/// dereferences is bounds-checked against the file size first, and
/// every payload byte is covered by an XXH64 checksum validated at
/// open — truncation, bit flips, bad magic and version skew all
/// surface as typed Status errors (StatusCode::kCorruption /
/// kFailedPrecondition), never as undefined behaviour.

#ifndef AUJOIN_STORAGE_SNAPSHOT_FORMAT_H_
#define AUJOIN_STORAGE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace aujoin {

/// "AUJSNAP1" little-endian; the first 8 bytes of every snapshot.
constexpr uint64_t kSnapshotMagic = 0x3150414E534A5541ULL;

/// Bumped on any incompatible layout change. Readers reject other
/// versions with a typed error instead of guessing.
constexpr uint32_t kSnapshotFormatVersion = 1;

/// Every section payload (and the section table itself) starts at a
/// multiple of this within the file, so pointers into the mapping are
/// safely aligned for the widest element type (u64/f64) and each
/// section begins on its own cache line.
constexpr size_t kSnapshotAlignment = 64;

inline constexpr uint64_t AlignUpSnapshot(uint64_t offset) {
  return (offset + kSnapshotAlignment - 1) & ~(kSnapshotAlignment - 1);
}

/// Section identifiers. Ids are stable across format versions; readers
/// look sections up by id, so section order in the file is free and
/// unknown ids from newer minor writers are ignorable.
enum SnapshotSectionId : uint32_t {
  /// SnapshotMeta: the world fingerprint + global counts (must be
  /// first logically; readers validate it before trusting any other
  /// section's interpretation).
  kSectionMeta = 1,
  /// Gram dictionary: u64 count, u64 byte_offsets[count + 1], then the
  /// concatenated token bytes.
  kSectionGramDict = 2,
  /// Global frequency order: u64 count, then count rows of
  /// (key u64, frequency u64) in rank order (rank i+1 = row i), the
  /// exact shape of GlobalOrder::ExportRankOrder.
  kSectionGlobalOrder = 3,
  /// S-side pebble table (PebbleTableHeader + flat arrays).
  kSectionSPrepared = 4,
  /// T-side pebble table; absent for self-joins.
  kSectionTPrepared = 5,
  /// Frozen CSR serving index, one flat array per section so each is
  /// aligned, individually checksummed and mmap-servable as-is.
  kSectionCsrKeys = 6,      // u64[num_keys], ascending
  kSectionCsrOffsets = 7,   // u32[num_keys + 1], monotone
  kSectionCsrPostings = 8,  // u32[total_postings], sorted+distinct per run
  kSectionCsrSlots = 9,     // u32[slot table], power-of-two sized
  /// Appended-record texts of a generational checkpoint (absent from
  /// plain snapshots): u64 base_count, u64 count, u64
  /// byte_offsets[count + 1], then the concatenated raw texts of
  /// records with id >= base_count. Lets a restarting process rebuild
  /// the full record vector (dataset base + re-tokenised appends)
  /// before mounting the snapshot, since record contents beyond the
  /// dataset exist nowhere else once the WAL is truncated. Readers
  /// that don't know the id ignore it, so plain Load still works.
  kSectionAppendedTexts = 10,
  /// Sharded-index manifest (the only section of a shard-manifest
  /// file): ShardManifestHeader + u64 shard_record_counts[num_shards].
  /// The per-shard indexes live in sibling `<path>.shard-<i>` files,
  /// each a complete self-validating snapshot over that shard's record
  /// slice, so one shard can be mmap'd without touching the rest.
  kSectionShardManifest = 11,
};

/// Fixed 64-byte file header. `header_checksum` is XXH64 over the
/// preceding 56 bytes; it is validated before anything else is read.
struct SnapshotHeader {
  uint64_t magic = kSnapshotMagic;
  uint32_t format_version = kSnapshotFormatVersion;
  uint32_t section_count = 0;
  /// Total file size in bytes; a cheap truncation check before the
  /// per-section bounds checks.
  uint64_t file_size = 0;
  uint64_t reserved0 = 0;
  uint64_t reserved1 = 0;
  uint64_t reserved2 = 0;
  uint64_t reserved3 = 0;
  uint64_t header_checksum = 0;
};
static_assert(sizeof(SnapshotHeader) == 64, "header must stay 64 bytes");

/// One section-table entry. The table follows the header, aligned, one
/// entry per section; `checksum` is XXH64 over the payload bytes.
struct SnapshotSectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // absolute file offset, kSnapshotAlignment-aligned
  uint64_t size = 0;    // payload bytes (padding excluded)
  uint64_t checksum = 0;
};
static_assert(sizeof(SnapshotSectionEntry) == 32,
              "section entry must stay 32 bytes");

/// The kSectionMeta payload: enough of the build inputs' identity to
/// refuse serving a snapshot against a different world. Record and
/// knowledge hashes are order-sensitive fingerprints over token ids,
/// so they also pin the vocabulary the records were interned into.
struct SnapshotMeta {
  // MsimOptions identity.
  uint32_t msim_q = 0;
  uint32_t gram_measure = 0;
  uint32_t measures = 0;
  uint32_t exact_match = 0;
  // Collections.
  uint64_t s_count = 0;
  uint64_t t_count = 0;  // == s_count for self-joins
  uint32_t self_join = 0;
  uint32_t reserved = 0;
  uint64_t s_records_hash = 0;
  uint64_t t_records_hash = 0;
  uint64_t knowledge_hash = 0;
  // Derived-state counts cross-checked against section payloads.
  uint64_t gram_dict_size = 0;
  uint64_t csr_record_universe = 0;
  double prepare_seconds = 0.0;  // informational: original build cost
  uint64_t reserved1 = 0;
};
static_assert(sizeof(SnapshotMeta) == 96, "meta must stay 96 bytes");

/// Leading payload of kSectionShardManifest. `records_hash` is the
/// order-sensitive fingerprint of the FULL (unsharded) record vector,
/// so a manifest refuses to mount over a different collection before
/// any shard file is touched; each shard file additionally embeds its
/// own slice + knowledge fingerprints, validated on that shard's first
/// (lazy) mount.
struct ShardManifestHeader {
  uint64_t num_records = 0;
  uint32_t num_shards = 0;
  uint32_t shard_by = 0;  // ShardBy enum value
  uint64_t records_hash = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(ShardManifestHeader) == 32,
              "shard manifest header must stay 32 bytes");

/// Leading header of the kSection{S,T}Prepared payloads; the flat
/// arrays follow in this order, each 8-byte aligned within the
/// section:
///   u64 pebble_offsets[num_records + 1]
///   u64 segment_offsets[num_records + 1]
///   u32 num_tokens[num_records]            (padded to 8 bytes)
///   PebbleRow[total_pebbles]
///   SegmentRow[total_segments]
///   RuleMatchRow[total_rule_matches]
///   u32 taxonomy_nodes[total_taxonomy_nodes]  (padded to 8 bytes)
struct PebbleTableHeader {
  uint64_t num_records = 0;
  uint64_t total_pebbles = 0;
  uint64_t total_segments = 0;
  uint64_t total_rule_matches = 0;
  uint64_t total_taxonomy_nodes = 0;
};

/// One pebble of one record (mirrors aujoin::Pebble, fixed layout).
struct PebbleRow {
  uint64_t key = 0;
  double weight = 0.0;
  uint32_t segment = 0;
  uint32_t measure = 0;
};
static_assert(sizeof(PebbleRow) == 24, "pebble row must stay 24 bytes");

/// One well-defined segment; its rule matches and taxonomy nodes are
/// the next `rule_count` / `node_count` entries of the flat
/// RuleMatchRow / node arrays (records and segments are written in
/// order, so consumption order reconstructs the per-segment runs).
struct SegmentRow {
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t rule_count = 0;
  uint32_t node_count = 0;
};
static_assert(sizeof(SegmentRow) == 16, "segment row must stay 16 bytes");

/// One (rule, side) hit of a segment (mirrors aujoin::RuleMatch).
struct RuleMatchRow {
  uint32_t rule = 0;
  uint32_t side = 0;  // 0 = lhs, 1 = rhs
};
static_assert(sizeof(RuleMatchRow) == 8, "rule match row must stay 8 bytes");

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_SNAPSHOT_FORMAT_H_
