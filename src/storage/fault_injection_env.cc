#include "storage/fault_injection_env.h"

#include <algorithm>
#include <utility>

namespace aujoin {

/// Wraps one base WritableFile, routing every mutation through the
/// env's fault/tracking hooks.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const void* data, size_t size) override {
    return env_->FileAppend(path_, base_.get(), data, size);
  }
  Status Sync() override { return env_->FileSync(path_, base_.get()); }
  Status Allocate(uint64_t size) override {
    return env_->FileAllocate(path_, base_.get(), size);
  }
  Status Close() override { return env_->FileClose(path_, base_.get()); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

void FaultInjectionEnv::FailAfterOps(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_armed_ = true;
  fault_fired_ = false;
  ops_until_fault_ = n;
}

void FaultInjectionEnv::ClearFault() {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_armed_ = false;
  fault_fired_ = false;
}

bool FaultInjectionEnv::fault_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_fired_;
}

int FaultInjectionEnv::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ops_;
}

std::vector<std::string> FaultInjectionEnv::TakeOpLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.swap(op_log_);
  return out;
}

Status FaultInjectionEnv::CountOpLocked(const std::string& what) {
  ++total_ops_;
  if (fault_armed_) {
    if (ops_until_fault_ == 0) {
      // Sticky: once the "process" has died at an operation, every
      // later one fails too, until the test clears or crashes the env.
      fault_fired_ = true;
      return Status::IoError("injected fault at " + what);
    }
    --ops_until_fault_;
  }
  op_log_.push_back(what);
  return Status::OK();
}

bool FaultInjectionEnv::SnapshotFile(const std::string& path,
                                     std::string* out) {
  if (!base_->FileExists(path)) return false;
  Result<std::shared_ptr<const FileMapping>> mapping = base_->MapFile(path);
  if (!mapping.ok()) return false;
  out->assign(reinterpret_cast<const char*>((*mapping)->data()),
              (*mapping)->size());
  return true;
}

Status FaultInjectionEnv::WriteWholeFile(const std::string& path,
                                         const std::string& bytes) {
  Result<std::unique_ptr<WritableFile>> file =
      base_->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(bytes.data(), bytes.size());
  Status close_status = (*file)->Close();
  return status.ok() ? close_status : status;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("create " + path));
  bool existed = base_->FileExists(path);
  // Truncation destroys durable content — snapshot it BEFORE the open
  // empties the file, so a crash can restore the old bytes.
  DirOp truncate_op{DirOp::kTruncate, path, "", false, ""};
  if (existed && truncate) {
    truncate_op.had_old = SnapshotFile(path, &truncate_op.old_bytes);
  }
  Result<std::unique_ptr<WritableFile>> base_file =
      base_->NewWritableFile(path, truncate);
  if (!base_file.ok()) return base_file.status();
  if (!existed) {
    journal_.push_back(DirOp{DirOp::kCreate, path, "", false, ""});
    files_[path] = FileState{};
  } else if (truncate) {
    journal_.push_back(std::move(truncate_op));
    files_[path] = FileState{};
  } else if (files_.find(path) == files_.end()) {
    // Appending to a pre-existing, never-tracked file: its current
    // bytes are the durable baseline.
    Result<uint64_t> size = base_->GetFileSize(path);
    FileState state;
    state.size = size.ok() ? *size : 0;
    state.synced_size = state.size;
    files_[path] = state;
  }
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(*base_file)));
}

Result<std::shared_ptr<const FileMapping>> FaultInjectionEnv::MapFile(
    const std::string& path) {
  return base_->MapFile(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("rename " + from + " -> " + to));
  DirOp op{DirOp::kRename, to, from, false, ""};
  op.had_old = SnapshotFile(to, &op.old_bytes);
  AUJOIN_RETURN_NOT_OK(base_->RenameFile(from, to));
  journal_.push_back(std::move(op));
  // Sync tracking follows the new name.
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("remove " + path));
  DirOp op{DirOp::kRemove, path, "", false, ""};
  op.had_old = SnapshotFile(path, &op.old_bytes);
  AUJOIN_RETURN_NOT_OK(base_->RemoveFile(path));
  journal_.push_back(std::move(op));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(
      CountOpLocked("truncate " + path + " " + std::to_string(size)));
  DirOp op{DirOp::kTruncate, path, "", false, ""};
  op.had_old = SnapshotFile(path, &op.old_bytes);
  AUJOIN_RETURN_NOT_OK(base_->TruncateFile(path, size));
  journal_.push_back(std::move(op));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = std::min(it->second.size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("syncdir " + dir));
  AUJOIN_RETURN_NOT_OK(base_->SyncDir(dir));
  // Directory-entry mutations inside `dir` are now durable.
  journal_.erase(
      std::remove_if(journal_.begin(), journal_.end(),
                     [&dir](const DirOp& op) {
                       return ParentDirectory(op.path) == dir;
                     }),
      journal_.end());
  return Status::OK();
}

Status FaultInjectionEnv::FileAppend(const std::string& path,
                                     WritableFile* base_file,
                                     const void* data, size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(
      CountOpLocked("append " + path + " " + std::to_string(size)));
  AUJOIN_RETURN_NOT_OK(base_file->Append(data, size));
  files_[path].size += size;
  return Status::OK();
}

Status FaultInjectionEnv::FileSync(const std::string& path,
                                   WritableFile* base_file) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("sync " + path));
  AUJOIN_RETURN_NOT_OK(base_file->Sync());
  FileState& state = files_[path];
  state.synced_size = state.size;
  // fsync persists the file's inode, so a truncation that preceded it
  // can no longer be rolled back by a crash. Only the NAME (creation /
  // rename) still waits on its parent-directory sync.
  journal_.erase(std::remove_if(journal_.begin(), journal_.end(),
                                [&path](const DirOp& op) {
                                  return op.kind == DirOp::kTruncate &&
                                         op.path == path;
                                }),
                 journal_.end());
  return Status::OK();
}

Status FaultInjectionEnv::FileAllocate(const std::string& path,
                                       WritableFile* base_file,
                                       uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A mutating syscall like any other: kill-point sweeps must be able
  // to die here. Logical size is untouched (KEEP_SIZE), so no FileState
  // update — a crash simply drops the reservation, which is harmless.
  AUJOIN_RETURN_NOT_OK(
      CountOpLocked("allocate " + path + " " + std::to_string(size)));
  return base_file->Allocate(size);
}

Status FaultInjectionEnv::FileClose(const std::string& path,
                                    WritableFile* base_file) {
  std::lock_guard<std::mutex> lock(mutex_);
  AUJOIN_RETURN_NOT_OK(CountOpLocked("close " + path));
  return base_file->Close();
}

Status FaultInjectionEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  // 1. Unsynced appended bytes vanish: truncate every tracked file
  //    back to its synced prefix (at whatever name it now has).
  for (const auto& entry : files_) {
    const std::string& path = entry.first;
    const FileState& state = entry.second;
    if (!base_->FileExists(path)) continue;
    Result<uint64_t> real = base_->GetFileSize(path);
    if (real.ok() && *real > state.synced_size) {
      AUJOIN_RETURN_NOT_OK(base_->TruncateFile(path, state.synced_size));
    }
  }
  // 2. Unsynced directory-entry mutations roll back, newest first.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    const DirOp& op = *it;
    switch (op.kind) {
      case DirOp::kCreate:
        if (base_->FileExists(op.path)) {
          AUJOIN_RETURN_NOT_OK(base_->RemoveFile(op.path));
        }
        break;
      case DirOp::kRename:
        if (base_->FileExists(op.path)) {
          AUJOIN_RETURN_NOT_OK(base_->RenameFile(op.path, op.from));
        }
        if (op.had_old) {
          AUJOIN_RETURN_NOT_OK(WriteWholeFile(op.path, op.old_bytes));
        }
        break;
      case DirOp::kRemove:
      case DirOp::kTruncate:
        if (op.had_old) {
          AUJOIN_RETURN_NOT_OK(WriteWholeFile(op.path, op.old_bytes));
        }
        break;
    }
  }
  // The surviving filesystem state is the new durable baseline.
  files_.clear();
  journal_.clear();
  op_log_.clear();
  fault_armed_ = false;
  fault_fired_ = false;
  return Status::OK();
}

}  // namespace aujoin
