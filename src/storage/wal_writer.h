/// \file
/// WalWriter — appends checksummed, block-fragmented records to a
/// write-ahead log through the storage Env (storage/wal_format.h for
/// the layout). The writer is the durability half of the staged-append
/// path: GenerationalIndex logs a record here and Syncs BEFORE staging
/// it in memory, so an append is acknowledged only once it would
/// survive a crash.
///
/// Not thread-safe: the owner serialises AddRecord/Sync (the
/// generational index holds a WAL mutex above this). After any failed
/// operation the writer is broken — the log's physical tail is
/// unknown, so further appends are refused with the original error
/// rather than risking an undetectable gap.

#ifndef AUJOIN_STORAGE_WAL_WRITER_H_
#define AUJOIN_STORAGE_WAL_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/wal_format.h"
#include "util/status.h"

namespace aujoin {

class WalWriter {
 public:
  /// Default extent reservation append-mode owners pass to Open.
  static constexpr uint64_t kDefaultPreallocateBytes = 1ull << 20;

  /// Opens `path` for appending through `env` (creating it if absent).
  /// With `truncate` the log restarts empty; otherwise new records
  /// continue at the current end of file, resuming the block phase
  /// mid-block exactly where the last writer stopped. The caller must
  /// trim any torn tail first (WalReader reports valid_bytes).
  ///
  /// `preallocate_bytes` > 0 reserves that many bytes of extents up
  /// front (WritableFile::Allocate, KEEP_SIZE semantics — logical size
  /// is untouched), so steady-state appends stop paying per-fsync
  /// block-allocation metadata; Reset re-reserves the same amount. Best
  /// effort on filesystems without support.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path,
                                                 bool truncate,
                                                 uint64_t preallocate_bytes = 0);

  /// Appends one record, fragmenting across blocks as needed. Buffered
  /// by the Env file: not durable until Sync returns OK.
  Status AddRecord(const void* data, size_t size);

  /// Makes everything appended so far durable.
  Status Sync();

  /// Seals the log after a checkpoint: truncates it to empty and syncs,
  /// so replay starts from the snapshot alone. Clears a broken state —
  /// the empty log is trivially well-formed again. The log FILE is
  /// recycled, not recreated: its (already durable) name and directory
  /// entry survive, so a reset never pays another parent-directory
  /// fsync, and the extent reservation is renewed.
  Status Reset();

  /// Logical bytes appended (fragment headers + payloads + padding).
  uint64_t size() const { return size_; }
  /// Successful Sync calls since Open — the fsync count group commit
  /// amortises. Observational only; read it from the owning thread (or
  /// quiesced), like every other accessor here.
  uint64_t sync_count() const { return syncs_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(Env* env, std::string path, std::unique_ptr<WritableFile> file,
            uint64_t size, uint64_t preallocate_bytes)
      : env_(env),
        path_(std::move(path)),
        file_(std::move(file)),
        size_(size),
        block_offset_(size % kWalBlockSize),
        preallocate_bytes_(preallocate_bytes) {}

  /// One fragment: header + payload in a single Append call, so the
  /// smallest torn-write unit the base env can produce is a fragment.
  Status EmitFragment(uint8_t type, const uint8_t* data, size_t length);

  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t size_;
  size_t block_offset_;
  uint64_t preallocate_bytes_ = 0;
  uint64_t syncs_ = 0;
  Status broken_ = Status::OK();
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_WAL_WRITER_H_
