/// \file
/// Env — the storage environment every byte of src/storage/ I/O goes
/// through. The abstraction exists for exactly one reason: durability
/// claims are only as good as their tests, and testing crash recovery
/// requires controlling the filesystem. Production code runs on
/// Env::Default() (plain POSIX); tests wrap it in a FaultInjectionEnv
/// (storage/fault_injection_env.h) that can drop unsynced writes, fail
/// the Nth operation, or roll back un-fsynced directory entries — the
/// RocksDB Env / FaultInjectionTestEnv pattern.
///
/// The durability contract the interface encodes:
///   - WritableFile::Append buffers; nothing is durable until Sync
///     returns OK (Sync implies a flush + fsync).
///   - RenameFile atomically replaces the target, but the *directory
///     entry* is only durable after SyncDir on the parent directory —
///     the classic create-tmp / fsync / rename / fsync-dir sequence.
///   - TruncateFile discards a file suffix (used to trim a torn WAL
///     tail before resuming appends).

#ifndef AUJOIN_STORAGE_ENV_H_
#define AUJOIN_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace aujoin {

/// An open file being written sequentially. Not thread-safe; callers
/// serialise access (the WAL writer holds its own mutex above this).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `size` bytes at the end of the file. Buffered: the data is
  /// not durable (and after a crash may not even be visible) until the
  /// next successful Sync.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Flushes buffered writes and fsyncs. After OK, every byte appended
  /// so far survives a crash.
  virtual Status Sync() = 0;

  /// Hints that the file will grow to about `size` bytes, reserving
  /// disk extents WITHOUT changing the logical file size (fallocate
  /// KEEP_SIZE semantics — readers and GetFileSize never see the
  /// reservation). Best effort: a filesystem that cannot preallocate
  /// returns OK and does nothing; only real I/O errors surface. The
  /// WAL uses this so steady-state appends stop paying block-allocation
  /// metadata journaling on every fsync.
  virtual Status Allocate(uint64_t size) {
    (void)size;
    return Status::OK();
  }

  /// Flushes and closes. The destructor closes too (best effort), but
  /// only Close reports errors.
  virtual Status Close() = 0;
};

/// A read-only view of one whole file, either mmap'd or heap-backed;
/// the bytes stay valid while the mapping object is alive.
class FileMapping {
 public:
  virtual ~FileMapping() = default;
  virtual const uint8_t* data() const = 0;
  virtual uint64_t size() const = 0;
};

/// The injectable storage environment. All methods are thread-safe.
/// Implementations own no global state beyond the filesystem itself,
/// so one Env can back any number of writers and readers.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never destroyed).
  static Env* Default();

  /// Opens `path` for sequential writing, creating it if absent. With
  /// `truncate` the file is emptied; otherwise writes continue at the
  /// current end of file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Maps the whole file read-only (heap-copy fallback where mmap is
  /// unavailable). An empty file yields a mapping with size() == 0.
  virtual Result<std::shared_ptr<const FileMapping>> MapFile(
      const std::string& path) = 0;

  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`. Durable only after SyncDir
  /// on the parent directory.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Shrinks (or zero-extends) `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Fsyncs the directory itself, making renames/creations/removals of
  /// entries inside it durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The directory component of `path` ("." when it has none) — what
/// SyncDir needs after renaming a file into place.
std::string ParentDirectory(const std::string& path);

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_ENV_H_
