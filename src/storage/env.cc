#include "storage/env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define AUJOIN_ENV_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace aujoin {

std::string ParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

namespace {

Status PosixError(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}

#if AUJOIN_ENV_POSIX

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t size) override {
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
      ssize_t n = ::write(fd_, p, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_);
      }
      p += n;
      size -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_);
    return Status::OK();
  }

  Status Allocate(uint64_t size) override {
#if defined(__linux__)
    if (size == 0) return Status::OK();
    // KEEP_SIZE: reserve extents without moving the logical EOF, so a
    // crash never exposes unwritten reserved bytes as file content.
    if (::fallocate(fd_, FALLOC_FL_KEEP_SIZE, 0,
                    static_cast<off_t>(size)) != 0) {
      // Filesystems without fallocate support say EOPNOTSUPP/EINVAL;
      // preallocation is an optimisation, not a requirement.
      if (errno == EOPNOTSUPP || errno == ENOSYS || errno == EINVAL) {
        return Status::OK();
      }
      return PosixError("fallocate " + path_);
    }
#else
    (void)size;
#endif
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

/// mmap-backed read view; heap fallback below covers empty files too.
class PosixFileMapping : public FileMapping {
 public:
  PosixFileMapping(const uint8_t* data, uint64_t size, bool mapped)
      : data_(data), size_(size), mapped_(mapped) {}

  ~PosixFileMapping() override {
    if (data_ == nullptr) return;
    if (mapped_) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    } else {
      delete[] data_;
    }
  }

  const uint8_t* data() const override { return data_; }
  uint64_t size() const override { return size_; }

 private:
  const uint8_t* data_;
  uint64_t size_;
  bool mapped_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return PosixError("open " + path);
    if (!truncate && ::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return PosixError("seek to end of " + path);
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::shared_ptr<const FileMapping>> MapFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return PosixError("stat " + path);
    }
    uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::shared_ptr<const FileMapping>(
          new PosixFileMapping(nullptr, 0, false));
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) return PosixError("mmap " + path);
    return std::shared_ptr<const FileMapping>(new PosixFileMapping(
        static_cast<const uint8_t*>(map), size, true));
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return PosixError("stat " + path);
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return PosixError("remove " + path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("truncate " + path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open directory " + dir);
    Status status = Status::OK();
    if (::fsync(fd) != 0) status = PosixError("fsync directory " + dir);
    ::close(fd);
    return status;
  }
};

#else  // !AUJOIN_ENV_POSIX — stdio fallback, no real durability control.

class StdioWritableFile : public WritableFile {
 public:
  StdioWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~StdioWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t size) override {
    if (size == 0) return Status::OK();
    if (std::fwrite(data, 1, size, file_) != size) {
      return Status::IoError("short write to " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (std::fflush(file_) != 0) {
      return Status::IoError("flush failed for " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) {
      return Status::IoError("close failed for " + path_);
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class HeapFileMapping : public FileMapping {
 public:
  explicit HeapFileMapping(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}
  const uint8_t* data() const override {
    return bytes_.empty() ? nullptr : bytes_.data();
  }
  uint64_t size() const override { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

class PosixEnv : public Env {  // name kept so Default() reads the same
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) {
      return Status::IoError("cannot open " + path + " for writing");
    }
    return std::unique_ptr<WritableFile>(new StdioWritableFile(file, path));
  }

  Result<std::shared_ptr<const FileMapping>> MapFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return Status::IoError("cannot open " + path);
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(size < 0 ? 0 : static_cast<size_t>(size));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      return Status::IoError("short read from " + path);
    }
    std::fclose(file);
    return std::shared_ptr<const FileMapping>(
        new HeapFileMapping(std::move(bytes)));
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return Status::IoError("cannot open " + path);
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fclose(file);
    return size < 0 ? 0 : static_cast<uint64_t>(size);
  }

  bool FileExists(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return false;
    std::fclose(file);
    return true;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("cannot rename " + from + " to " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IoError("cannot remove " + path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    Result<std::shared_ptr<const FileMapping>> mapping = MapFile(path);
    if (!mapping.ok()) return mapping.status();
    if ((*mapping)->size() < size) {
      return Status::InvalidArgument("cannot extend " + path);
    }
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return Status::IoError("cannot rewrite " + path);
    if (size > 0 &&
        std::fwrite((*mapping)->data(), 1, size, file) != size) {
      std::fclose(file);
      return Status::IoError("short write to " + path);
    }
    std::fclose(file);
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    (void)dir;  // no directory durability control without POSIX
    return Status::OK();
  }
};

#endif  // AUJOIN_ENV_POSIX

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace aujoin
