/// \file
/// Generational checkpoints — snapshotting an index whose records grew
/// beyond the ingested dataset. A plain snapshot (PreparedIndex::Save)
/// assumes the loader can re-derive the exact record vector from its
/// own inputs; once WAL-appended records have been compacted into the
/// frozen generation that stops being true — their contents exist
/// nowhere else after Checkpoint truncates the log. A checkpoint is
/// therefore a normal snapshot plus one extra section
/// (kSectionAppendedTexts) carrying the raw texts of every record past
/// `base_count`, in id order. Recovery re-reads those texts, runs them
/// through the caller's record factory (re-tokenising against the same
/// vocabulary in the same order, which reproduces the original token
/// ids), and mounts the snapshot against dataset-base + rebuilt
/// appends — fingerprints and all.

#ifndef AUJOIN_STORAGE_INDEX_CHECKPOINT_H_
#define AUJOIN_STORAGE_INDEX_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/prepared_index.h"
#include "storage/env.h"
#include "util/status.h"

namespace aujoin {

/// Saves `index` (a frozen generation; must be a self-join index) as a
/// snapshot that additionally embeds the raw texts of records with id
/// >= base_count. With base_count == the record count this is exactly
/// PreparedIndex::Save.
Status SaveIndexCheckpoint(const PreparedIndex& index, uint64_t base_count,
                           const std::string& path, Env* env = nullptr);

/// The embedded appended-texts of a checkpoint at `path`.
struct CheckpointTexts {
  /// Records below this id come from the loader's own dataset.
  uint64_t base_count = 0;
  /// Raw texts of records base_count, base_count + 1, ... in order.
  std::vector<std::string> texts;
};

/// Reads the appended-texts section (validating the whole snapshot on
/// the way). A plain snapshot without the section yields base_count =
/// its full record count and no texts, so callers can mount either
/// kind uniformly.
Result<CheckpointTexts> ReadCheckpointTexts(const std::string& path,
                                            Env* env = nullptr);

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_INDEX_CHECKPOINT_H_
