#include "storage/wal_writer.h"

#include <cstring>
#include <vector>

namespace aujoin {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path,
                                                   bool truncate,
                                                   uint64_t preallocate_bytes) {
  bool existed = env->FileExists(path);
  uint64_t size = 0;
  if (!truncate && existed) {
    Result<uint64_t> existing = env->GetFileSize(path);
    if (!existing.ok()) return existing.status();
    size = *existing;
  }
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, truncate);
  if (!file.ok()) return file.status();
  if (!existed) {
    // Publish the creation: without a parent-directory sync the new
    // log's NAME is not durable, so a crash could drop the whole file —
    // fsynced appends included. Same window SnapshotWriter closes
    // after its rename. This is the ONLY directory fsync the log ever
    // pays: Reset recycles the file under the same name.
    AUJOIN_RETURN_NOT_OK(env->SyncDir(ParentDirectory(path)));
  }
  if (preallocate_bytes > 0) {
    AUJOIN_RETURN_NOT_OK((*file)->Allocate(preallocate_bytes));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      env, path, std::move(*file), size, preallocate_bytes));
}

Status WalWriter::EmitFragment(uint8_t type, const uint8_t* data,
                               size_t length) {
  std::vector<uint8_t> buffer(kWalHeaderSize + length);
  EncodeWalFragmentHeader(type, data, static_cast<uint16_t>(length),
                          buffer.data());
  if (length > 0) std::memcpy(buffer.data() + kWalHeaderSize, data, length);
  AUJOIN_RETURN_NOT_OK(file_->Append(buffer.data(), buffer.size()));
  size_ += buffer.size();
  block_offset_ += buffer.size();
  if (block_offset_ == kWalBlockSize) block_offset_ = 0;
  return Status::OK();
}

Status WalWriter::AddRecord(const void* data, size_t size) {
  if (!broken_.ok()) return broken_;
  const uint8_t* ptr = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  bool first = true;
  Status status = Status::OK();
  do {
    size_t block_left = kWalBlockSize - block_offset_;
    if (block_left < kWalHeaderSize) {
      // Zero-filled trailer: too small for a header, skip to the next
      // block (readers recognise the zeros as padding).
      static const uint8_t kZeros[kWalHeaderSize] = {};
      status = file_->Append(kZeros, block_left);
      if (!status.ok()) break;
      size_ += block_left;
      block_offset_ = 0;
      block_left = kWalBlockSize;
    }
    size_t available = block_left - kWalHeaderSize;
    size_t fragment = remaining < available ? remaining : available;
    bool last = (fragment == remaining);
    uint8_t type = first ? (last ? kWalFull : kWalFirst)
                         : (last ? kWalLast : kWalMiddle);
    status = EmitFragment(type, ptr, fragment);
    if (!status.ok()) break;
    ptr += fragment;
    remaining -= fragment;
    first = false;
  } while (remaining > 0);
  if (!status.ok()) {
    // The physical tail is now unknown (a fragment may be half
    // written); refuse further appends until the log is reset.
    broken_ = status;
  }
  return status;
}

Status WalWriter::Sync() {
  if (!broken_.ok()) return broken_;
  Status status = file_->Sync();
  if (!status.ok()) {
    broken_ = status;
    return status;
  }
  ++syncs_;
  return status;
}

Status WalWriter::Reset() {
  // Recycle the log file rather than recreating it: truncate the
  // existing inode to empty and reopen it for appending. The name was
  // made durable once, at Open — no new creation, rename or
  // parent-directory fsync ever happens on the reset path.
  file_.reset();  // close (best effort) before truncating by path
  Status truncated = env_->TruncateFile(path_, 0);
  if (!truncated.ok()) {
    broken_ = truncated;
    return broken_;
  }
  Result<std::unique_ptr<WritableFile>> file =
      env_->NewWritableFile(path_, /*truncate=*/false);
  if (!file.ok()) {
    broken_ = file.status();
    return broken_;
  }
  file_ = std::move(*file);
  if (preallocate_bytes_ > 0) {
    // Renew the extent reservation the truncation released.
    Status allocated = file_->Allocate(preallocate_bytes_);
    if (!allocated.ok()) {
      broken_ = allocated;
      return broken_;
    }
  }
  size_ = 0;
  block_offset_ = 0;
  broken_ = Status::OK();
  // Make the truncation itself durable: a crash right after a
  // checkpoint must not resurrect the sealed log's records (harmless —
  // replay skips compacted ids — but the durable state should be what
  // the caller was told).
  return Sync();
}

}  // namespace aujoin
