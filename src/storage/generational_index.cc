#include "storage/generational_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "storage/wal_format.h"
#include "storage/wal_writer.h"

namespace aujoin {
namespace {

/// The serving order shared with UnifiedSearcher: similarity desc,
/// id asc.
bool BetterMatch(const UnifiedSearcher::Match& a,
                 const UnifiedSearcher::Match& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.id < b.id;
}

}  // namespace

GenerationalIndex::GenerationalIndex(const Knowledge& knowledge,
                                     const MsimOptions& msim,
                                     std::vector<Record> initial)
    : knowledge_(knowledge), msim_(msim) {
  for (size_t i = 0; i < initial.size(); ++i) {
    initial[i].id = static_cast<uint32_t>(i);
  }
  frozen_ = BuildGeneration(knowledge_, msim_, std::move(initial));
}

GenerationalIndex::GenerationalIndex(
    const Knowledge& knowledge, const MsimOptions& msim,
    std::shared_ptr<const std::vector<Record>> records,
    std::shared_ptr<const PreparedIndex> index)
    : knowledge_(knowledge), msim_(msim) {
  auto gen = std::make_shared<Generation>();
  gen->records = std::move(records);
  gen->index = std::move(index);
  frozen_ = std::move(gen);
}

void GenerationalIndex::AttachWal(WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mutex_);
  wal_ = wal;
  wal_status_ = Status::OK();
}

Result<uint32_t> GenerationalIndex::AppendDurable(Record record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "no WAL attached (AttachWal first, or use the volatile Append)");
  }
  if (!wal_status_.ok()) {
    return Status::FailedPrecondition(
        "appends disabled after a WAL failure (" + wal_status_.message() +
        "): reusing the failed append's id would resurrect the wrong " +
        "record at replay");
  }
  // Ids are handed out at enqueue time: staged records plus every
  // in-flight append ahead of us. Queue order == id order == log order.
  PendingDurable entry;
  entry.id = static_cast<uint32_t>(frozen_->records->size() +
                                   staging_records_.size() + wal_in_flight_);
  record.id = entry.id;
  entry.record = std::move(record);
  EncodeWalAppend(entry.id, entry.record.text, &entry.payload);
  wal_pending_.push_back(&entry);
  ++wal_in_flight_;

  if (wal_flush_in_flight_) {
    // Follower: a leader is (or will be) flushing; it drains the queue
    // and wakes us once our record is durable (or the batch failed).
    wal_cv_.wait(lock, [&] { return entry.done; });
    if (!entry.status.ok()) return entry.status;
    return entry.id;
  }

  // Leader: drain queued appends in batches, one fsync per batch. The
  // WAL calls run with the mutex released so followers can keep
  // queueing (and queries keep serving); wal_flush_in_flight_ keeps
  // every other thread away from the writer meanwhile.
  wal_flush_in_flight_ = true;
  while (!wal_pending_.empty()) {
    std::vector<PendingDurable*> batch(wal_pending_.begin(),
                                       wal_pending_.end());
    wal_pending_.clear();
    Status flushed = wal_status_;
    if (flushed.ok()) {
      lock.unlock();
      for (PendingDurable* e : batch) {
        flushed = wal_->AddRecord(e->payload.data(), e->payload.size());
        if (!flushed.ok()) break;
      }
      if (flushed.ok()) flushed = wal_->Sync();
      lock.lock();
    }
    if (!flushed.ok() && wal_status_.ok()) wal_status_ = flushed;
    for (PendingDurable* e : batch) {
      e->status = flushed;
      // Stage in batch (== id) order, and only after durability: a
      // record visible to queries was always acknowledged by the disk
      // first. A failed batch stages nothing — none of its appends are
      // acknowledged, so none may resurrect at replay.
      if (flushed.ok()) staging_records_.push_back(std::move(e->record));
      e->done = true;
      --wal_in_flight_;
    }
    if (flushed.ok()) staging_gen_.reset();
    wal_cv_.notify_all();
  }
  wal_flush_in_flight_ = false;
  wal_cv_.notify_all();
  if (!entry.status.ok()) return entry.status;
  return entry.id;
}

std::shared_ptr<const GenerationalIndex::Generation>
GenerationalIndex::BuildGeneration(const Knowledge& knowledge,
                                   const MsimOptions& msim,
                                   std::vector<Record> records) {
  auto gen = std::make_shared<Generation>();
  gen->records =
      std::make_shared<const std::vector<Record>>(std::move(records));
  gen->index = PreparedIndex::Build(knowledge, msim, *gen->records, nullptr);
  return gen;
}

uint32_t GenerationalIndex::Append(Record record) {
  std::unique_lock<std::mutex> lock(mutex_);
  // In-flight durable appends hold ids past the staged tail; wait for
  // the batch to land so the volatile id cannot collide with one.
  wal_cv_.wait(lock, [&] { return wal_in_flight_ == 0; });
  uint32_t id = static_cast<uint32_t>(frozen_->records->size() +
                                      staging_records_.size());
  record.id = id;
  staging_records_.push_back(std::move(record));
  staging_gen_.reset();  // the next query re-prepares the staging side
  return id;
}

void GenerationalIndex::Pin(std::shared_ptr<const Generation>* frozen,
                            std::shared_ptr<const Generation>* staging) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (staging_gen_ == nullptr && !staging_records_.empty()) {
    // Prepare the staging mini index over a COPY of the buffer: a
    // concurrent Append may grow (and reallocate) staging_records_
    // while this generation is still serving queries.
    staging_gen_ = BuildGeneration(knowledge_, msim_, staging_records_);
  }
  *frozen = frozen_;
  *staging = staging_gen_;
}

std::vector<GenerationalIndex::Match> GenerationalIndex::MergeMatches(
    std::vector<Match> frozen, std::vector<Match> staging,
    uint32_t staging_offset) {
  if (staging.empty()) return frozen;
  // Staging match ids are positions inside the staging snapshot; the
  // global id adds the frozen record count pinned with it.
  for (Match& m : staging) m.id += staging_offset;
  std::vector<Match> merged;
  merged.reserve(frozen.size() + staging.size());
  std::merge(frozen.begin(), frozen.end(), staging.begin(), staging.end(),
             std::back_inserter(merged), BetterMatch);
  return merged;
}

std::vector<GenerationalIndex::Match> GenerationalIndex::Search(
    const Record& query, const SearchOptions& options,
    QueryStats* stats) const {
  std::shared_ptr<const Generation> frozen;
  std::shared_ptr<const Generation> staging;
  Pin(&frozen, &staging);
  std::vector<Match> frozen_matches =
      UnifiedSearcher(frozen->index).Search(query, options, stats);
  if (staging == nullptr) return frozen_matches;
  std::vector<Match> staging_matches =
      UnifiedSearcher(staging->index).Search(query, options, stats);
  if (stats != nullptr) {
    // Both sub-searches counted the query; the union serves it once.
    stats->queries -= 1;
  }
  return MergeMatches(std::move(frozen_matches), std::move(staging_matches),
                      static_cast<uint32_t>(frozen->records->size()));
}

std::vector<GenerationalIndex::Match> GenerationalIndex::TopK(
    const Record& query, size_t k, double min_theta,
    const SearchOptions& options, QueryStats* stats) const {
  std::shared_ptr<const Generation> frozen;
  std::shared_ptr<const Generation> staging;
  Pin(&frozen, &staging);
  std::vector<Match> frozen_matches =
      UnifiedSearcher(frozen->index).TopK(query, k, min_theta, options, stats);
  if (staging == nullptr) return frozen_matches;
  std::vector<Match> staging_matches = UnifiedSearcher(staging->index)
                                           .TopK(query, k, min_theta, options,
                                                 stats);
  if (stats != nullptr) {
    stats->queries -= 1;
  }
  // The union's top k is inside the union of the per-generation top
  // ks, so merging the two k-prefixes and cutting at k is exact.
  std::vector<Match> merged =
      MergeMatches(std::move(frozen_matches), std::move(staging_matches),
                   static_cast<uint32_t>(frozen->records->size()));
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<std::vector<GenerationalIndex::Match>>
GenerationalIndex::BatchSearch(const std::vector<Record>& queries,
                               const SearchOptions& options,
                               QueryStats* stats) const {
  std::vector<std::vector<Match>> out;
  out.reserve(queries.size());
  for (const Record& query : queries) {
    out.push_back(Search(query, options, stats));
  }
  return out;
}

void GenerationalIndex::Refreeze() {
  std::lock_guard<std::mutex> refreeze_lock(refreeze_mutex_);
  std::vector<Record> merged;
  size_t batch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch = staging_records_.size();
    if (batch == 0) return;
    merged.reserve(frozen_->records->size() + batch);
    merged = *frozen_->records;
    merged.insert(merged.end(), staging_records_.begin(),
                  staging_records_.begin() + batch);
  }
  // The expensive part — pebble generation + freeze over the union —
  // runs with no lock held; queries keep serving the old generation.
  std::shared_ptr<const Generation> next =
      BuildGeneration(knowledge_, msim_, std::move(merged));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frozen_ = next;
    // Records appended during the rebuild stay in staging. Their global
    // ids are unchanged: the frozen side grew by exactly the `batch`
    // records that left staging ahead of them.
    staging_records_.erase(staging_records_.begin(),
                           staging_records_.begin() + batch);
    staging_gen_.reset();
    ++generation_;
  }
}

std::string GenerationalIndex::TextOf(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t frozen = frozen_->records->size();
  if (id < frozen) return (*frozen_->records)[id].text;
  size_t staged = id - frozen;
  if (staged < staging_records_.size()) return staging_records_[staged].text;
  return std::string();
}

size_t GenerationalIndex::num_frozen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frozen_->records->size();
}

size_t GenerationalIndex::num_staged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staging_records_.size();
}

size_t GenerationalIndex::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frozen_->records->size() + staging_records_.size();
}

uint64_t GenerationalIndex::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::shared_ptr<const PreparedIndex> GenerationalIndex::frozen_index() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frozen_->index;
}

}  // namespace aujoin
