#include "storage/snapshot_writer.h"

#include <cstdio>
#include <cstring>
#include <set>

#include "storage/checksum.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace aujoin {
namespace {

/// Zero padding written between aligned regions.
const char kZeros[kSnapshotAlignment] = {};

Status WriteAll(std::FILE* file, const void* data, size_t size,
                const std::string& path) {
  if (size == 0) return Status::OK();
  if (std::fwrite(data, 1, size, file) != size) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

uint64_t SnapshotWriter::FileSize() const {
  uint64_t offset = AlignUpSnapshot(
      sizeof(SnapshotHeader) + sections_.size() * sizeof(SnapshotSectionEntry));
  for (const Pending& s : sections_) {
    offset = AlignUpSnapshot(offset + s.size);
  }
  return offset;
}

Status SnapshotWriter::Finish() {
  std::set<uint32_t> ids;
  for (const Pending& s : sections_) {
    if (!ids.insert(s.id).second) {
      return Status::InvalidArgument("duplicate snapshot section id " +
                                     std::to_string(s.id));
    }
  }

  // Lay out the file: header, table, then each payload aligned.
  std::vector<SnapshotSectionEntry> table(sections_.size());
  uint64_t offset = AlignUpSnapshot(
      sizeof(SnapshotHeader) + sections_.size() * sizeof(SnapshotSectionEntry));
  for (size_t i = 0; i < sections_.size(); ++i) {
    table[i].id = sections_[i].id;
    table[i].offset = offset;
    table[i].size = sections_[i].size;
    table[i].checksum = Xxh64(sections_[i].data, sections_[i].size);
    offset = AlignUpSnapshot(offset + sections_[i].size);
  }

  SnapshotHeader header;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = offset;
  header.header_checksum =
      Xxh64(&header, sizeof(header) - sizeof(header.header_checksum));

  const std::string tmp_path = path_ + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + tmp_path + " for writing");
  }
  Status status = WriteAll(file, &header, sizeof(header), tmp_path);
  if (status.ok()) {
    status = WriteAll(file, table.data(),
                      table.size() * sizeof(SnapshotSectionEntry), tmp_path);
  }
  uint64_t written =
      sizeof(header) + table.size() * sizeof(SnapshotSectionEntry);
  for (size_t i = 0; status.ok() && i < sections_.size(); ++i) {
    uint64_t pad = table[i].offset - written;
    status = WriteAll(file, kZeros, pad, tmp_path);
    if (!status.ok()) break;
    status = WriteAll(file, sections_[i].data, sections_[i].size, tmp_path);
    written = table[i].offset + table[i].size;
  }
  if (status.ok()) {
    uint64_t pad = offset - written;
    status = WriteAll(file, kZeros, pad, tmp_path);
  }
  if (status.ok() && std::fflush(file) != 0) {
    status = Status::IoError("flush failed for " + tmp_path);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Durability before the rename publishes the file under its real
  // name; without it a crash can rename an unflushed (torn) snapshot.
  if (status.ok() && fsync(fileno(file)) != 0) {
    status = Status::IoError("fsync failed for " + tmp_path);
  }
#endif
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IoError("close failed for " + tmp_path);
  }
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path_);
  }
  return Status::OK();
}

}  // namespace aujoin
