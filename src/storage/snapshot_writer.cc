#include "storage/snapshot_writer.h"

#include <cstring>
#include <set>

#include "storage/checksum.h"

namespace aujoin {
namespace {

/// Zero padding written between aligned regions.
const char kZeros[kSnapshotAlignment] = {};

}  // namespace

uint64_t SnapshotWriter::FileSize() const {
  uint64_t offset = AlignUpSnapshot(
      sizeof(SnapshotHeader) + sections_.size() * sizeof(SnapshotSectionEntry));
  for (const Pending& s : sections_) {
    offset = AlignUpSnapshot(offset + s.size);
  }
  return offset;
}

Status SnapshotWriter::Finish() {
  std::set<uint32_t> ids;
  for (const Pending& s : sections_) {
    if (!ids.insert(s.id).second) {
      return Status::InvalidArgument("duplicate snapshot section id " +
                                     std::to_string(s.id));
    }
  }

  // Lay out the file: header, table, then each payload aligned.
  std::vector<SnapshotSectionEntry> table(sections_.size());
  uint64_t offset = AlignUpSnapshot(
      sizeof(SnapshotHeader) + sections_.size() * sizeof(SnapshotSectionEntry));
  for (size_t i = 0; i < sections_.size(); ++i) {
    table[i].id = sections_[i].id;
    table[i].offset = offset;
    table[i].size = sections_[i].size;
    table[i].checksum = Xxh64(sections_[i].data, sections_[i].size);
    offset = AlignUpSnapshot(offset + sections_[i].size);
  }

  SnapshotHeader header;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = offset;
  header.header_checksum =
      Xxh64(&header, sizeof(header) - sizeof(header.header_checksum));

  Env* env = env_ != nullptr ? env_ : Env::Default();
  const std::string tmp_path = path_ + ".tmp";
  Result<std::unique_ptr<WritableFile>> file_r =
      env->NewWritableFile(tmp_path, /*truncate=*/true);
  if (!file_r.ok()) return file_r.status();
  std::unique_ptr<WritableFile> file = std::move(*file_r);

  Status status = file->Append(&header, sizeof(header));
  if (status.ok()) {
    status = file->Append(table.data(),
                          table.size() * sizeof(SnapshotSectionEntry));
  }
  uint64_t written =
      sizeof(header) + table.size() * sizeof(SnapshotSectionEntry);
  for (size_t i = 0; status.ok() && i < sections_.size(); ++i) {
    status = file->Append(kZeros, table[i].offset - written);
    if (!status.ok()) break;
    if (sections_[i].size > 0) {
      status = file->Append(sections_[i].data, sections_[i].size);
    }
    written = table[i].offset + table[i].size;
  }
  if (status.ok()) {
    status = file->Append(kZeros, offset - written);
  }
  // Durability before the rename publishes the file under its real
  // name; without it a crash can rename an unflushed (torn) snapshot.
  if (status.ok()) status = file->Sync();
  Status close_status = file->Close();
  if (status.ok()) status = close_status;
  if (!status.ok()) {
    env->RemoveFile(tmp_path);
    return status;
  }
  status = env->RenameFile(tmp_path, path_);
  if (!status.ok()) {
    env->RemoveFile(tmp_path);
    return status;
  }
  // The rename itself is only durable once the parent directory's
  // entry table is — without this a crash after "success" can roll the
  // directory back and lose the published snapshot entirely.
  return env->SyncDir(ParentDirectory(path_));
}

}  // namespace aujoin
