/// \file
/// XXH64 — the 64-bit xxHash checksum used by the snapshot format
/// (storage/snapshot_format.h). Chosen for the same reason RocksDB
/// checksums its table blocks with xxHash: it validates gigabytes per
/// second on one core, so integrity checking a whole mmap'd snapshot
/// at open stays a small fraction of the cold-start budget, while
/// still catching bit flips, truncation and torn writes that a simple
/// additive checksum can miss. This is the reference XXH64 algorithm
/// (seeded, single-shot); digests are stable across platforms of
/// either endianness with the little-endian reads below.

#ifndef AUJOIN_STORAGE_CHECKSUM_H_
#define AUJOIN_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace aujoin {

namespace xxh64_detail {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t ReadLe64(const unsigned char* p) {
  return static_cast<uint64_t>(p[0]) | (static_cast<uint64_t>(p[1]) << 8) |
         (static_cast<uint64_t>(p[2]) << 16) |
         (static_cast<uint64_t>(p[3]) << 24) |
         (static_cast<uint64_t>(p[4]) << 32) |
         (static_cast<uint64_t>(p[5]) << 40) |
         (static_cast<uint64_t>(p[6]) << 48) |
         (static_cast<uint64_t>(p[7]) << 56);
}

inline uint32_t ReadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace xxh64_detail

/// Single-shot XXH64 of `len` bytes at `data` under `seed`.
inline uint64_t Xxh64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace xxh64_detail;  // NOLINT(build/namespaces)
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* limit = end - 32;
    do {
      v1 = Round(v1, ReadLe64(p));
      v2 = Round(v2, ReadLe64(p + 8));
      v3 = Round(v3, ReadLe64(p + 16));
      v4 = Round(v4, ReadLe64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, ReadLe64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(ReadLe32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_CHECKSUM_H_
