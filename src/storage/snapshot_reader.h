/// \file
/// SnapshotReader — the mmap cold-start side of the snapshot format.
/// Open maps the file read-only and validates everything up front:
/// magic, format version, header checksum, declared vs actual file
/// size, section-table bounds, per-section alignment and XXH64
/// payload checksums. After a successful Open every section is a
/// bounds-checked (pointer, size) view directly into the mapping — no
/// parsing, no copies — and the reader's shared_ptr keeps the mapping
/// alive for any index structure serving straight out of it (the
/// CsrIndex view mode threads that ownership through
/// CsrIndex::FromSections).
///
/// Failure taxonomy (never UB, never a crash):
///   kIoError            the OS could not open/read/map the file
///   kCorruption         truncation, bad magic, checksum mismatch,
///                       malformed section layout
///   kFailedPrecondition format-version skew (valid file, other version)
///   kNotFound           a required section id is absent

#ifndef AUJOIN_STORAGE_SNAPSHOT_READER_H_
#define AUJOIN_STORAGE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/snapshot_format.h"
#include "util/status.h"

namespace aujoin {

class SnapshotReader {
 public:
  /// One validated section: `data` points into the mapping (64-byte
  /// aligned), `size` is the payload byte count.
  struct Section {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
  };

  /// Maps and fully validates `path` through `env` (nullptr =
  /// Env::Default()). The returned reader is immutable and safe to
  /// share across threads.
  static Result<std::shared_ptr<const SnapshotReader>> Open(
      const std::string& path, Env* env = nullptr);

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool Has(uint32_t id) const;

  /// The section with `id`; kNotFound when the snapshot lacks it.
  Result<Section> Find(uint32_t id) const;

  /// The section interpreted as `count` elements of trivially copyable
  /// T; kCorruption when the payload size disagrees.
  template <typename T>
  Result<const T*> Array(uint32_t id, uint64_t count) const {
    Result<Section> section = Find(id);
    if (!section.ok()) return section.status();
    if (section->size != count * sizeof(T)) {
      return Status::Corruption(
          "section " + std::to_string(id) + " holds " +
          std::to_string(section->size) + " bytes, expected " +
          std::to_string(count * sizeof(T)) + " (" + std::to_string(count) +
          " x " + std::to_string(sizeof(T)) + ")");
    }
    return reinterpret_cast<const T*>(section->data);
  }

  uint64_t file_size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  SnapshotReader() = default;

  std::string path_;
  /// Keeps the file bytes alive (mmap or heap, per the Env).
  std::shared_ptr<const FileMapping> mapping_;
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  std::vector<SnapshotSectionEntry> table_;
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_SNAPSHOT_READER_H_
