/// \file
/// SnapshotWriter — serialises a set of flat sections into the
/// versioned snapshot file format (storage/snapshot_format.h). The
/// writer is deliberately dumb: callers declare sections as (id, ptr,
/// size) and Finish lays them out aligned, checksummed and fronted by
/// the header + section table. Writes go to `<path>.tmp` and are
/// renamed into place on success, then the parent directory is fsynced
/// (storage/env.h SyncDir) — the full write-temp / fsync / rename /
/// fsync-dir durability sequence of LSM stores, so a crash never
/// leaves a half-snapshot under the target name and never loses a
/// completed rename. All I/O goes through the storage Env, so fault
/// injection covers every byte.

#ifndef AUJOIN_STORAGE_SNAPSHOT_WRITER_H_
#define AUJOIN_STORAGE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/snapshot_format.h"
#include "util/status.h"

namespace aujoin {

/// Accumulates section descriptors, then writes the whole snapshot in
/// one pass. Section payload memory is borrowed: it must stay alive
/// and unchanged until Finish returns (the writer streams straight
/// from the caller's arrays instead of doubling the index in RAM).
class SnapshotWriter {
 public:
  /// `env` nullptr = Env::Default(); tests inject a FaultInjectionEnv.
  explicit SnapshotWriter(std::string path, Env* env = nullptr)
      : path_(std::move(path)), env_(env) {}

  /// Declares one section. Duplicate ids are rejected at Finish; a
  /// zero-size section is legal (empty collection side, empty CSR).
  void AddSection(uint32_t id, const void* data, size_t size) {
    sections_.push_back(Pending{id, static_cast<const uint8_t*>(data), size});
  }

  /// Writes header + table + aligned payloads to `<path>.tmp`, fsyncs,
  /// renames over `path`, and fsyncs the parent directory. Returns the
  /// first I/O or layout error.
  Status Finish();

  /// Total bytes the snapshot will occupy (available before Finish).
  uint64_t FileSize() const;

 private:
  struct Pending {
    uint32_t id = 0;
    const uint8_t* data = nullptr;
    size_t size = 0;
  };

  std::string path_;
  Env* env_ = nullptr;
  std::vector<Pending> sections_;
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_SNAPSHOT_WRITER_H_
