/// \file
/// WalReader — replays a write-ahead log written by WalWriter,
/// tolerating exactly the damage a crash can cause and refusing
/// everything else. The contract (docs/wal-format.md):
///
///   - A clean log yields every record, in append order.
///   - A torn tail — truncation, a half-written fragment, or bit
///     damage with nothing valid after it — stops the scan cleanly at
///     the last intact record (`torn_tail` set, no error): those are
///     the unacknowledged bytes a crash legitimately loses.
///   - Damage with valid fragments after it is mid-log corruption:
///     acknowledged records would silently vanish if replay "skipped"
///     the hole, so it returns a typed kCorruption instead.
///
/// `valid_bytes` is the intact prefix; recovery truncates the file to
/// it before reopening a WalWriter, so appends resume on sound bytes.

#ifndef AUJOIN_STORAGE_WAL_READER_H_
#define AUJOIN_STORAGE_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace aujoin {

/// The outcome of replaying one log file.
struct WalReplay {
  /// Every intact record's payload, in append order.
  std::vector<std::string> records;
  /// File-prefix bytes covered by those records (trailing padding and
  /// any torn tail excluded) — the truncation point before resuming.
  uint64_t valid_bytes = 0;
  /// The scan stopped early at a damaged or incomplete tail.
  bool torn_tail = false;
};

class WalReader {
 public:
  /// Reads the whole log at `path` through `env`. Missing file is an
  /// I/O error (callers gate on Env::FileExists); mid-log damage is
  /// kCorruption; a torn tail is success with `torn_tail` set.
  static Result<WalReplay> ReadAll(Env* env, const std::string& path);
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_WAL_READER_H_
