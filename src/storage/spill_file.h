/// \file
/// Spill files — the out-of-core half of the sharded join pipeline.
/// When a join's buffered result working set exceeds its budget, the
/// buffer is sorted and written to a temp file as one run of packed
/// (first, second) u32 pairs, mapped back read-only, and unlinked
/// IMMEDIATELY: the mapping keeps the bytes alive for the merge, and a
/// process death at any point leaves no temp file behind (the name is
/// gone; on a real crash the unpublished creation never becomes
/// durable either, since spill files are never SyncDir'd). All I/O
/// goes through the storage Env, so FaultInjectionEnv can kill-point
/// every byte: failures surface as typed Status errors, never UB.

#ifndef AUJOIN_STORAGE_SPILL_FILE_H_
#define AUJOIN_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace aujoin {

/// One sorted, unlinked, mapped run of (first, second) pairs.
struct SpillRun {
  std::shared_ptr<const FileMapping> mapping;
  uint64_t num_pairs = 0;

  std::pair<uint32_t, uint32_t> at(uint64_t i) const {
    const uint32_t* words =
        reinterpret_cast<const uint32_t*>(mapping->data());
    return {words[2 * i], words[2 * i + 1]};
  }
};

/// Accumulates spilled runs for one join. Not thread-safe; the
/// pipeline spills from its (single-threaded) merge loop.
class SpillWriter {
 public:
  /// Temp files land in `dir` ("" = "."); `env` nullptr = Env::Default().
  SpillWriter(Env* env, std::string dir);

  /// Sorts `*pairs`, writes it as one run file, maps the file back,
  /// unlinks it, and clears `*pairs` (capacity released). On error the
  /// buffer is left sorted but intact and a best-effort unlink has
  /// removed the partial file.
  Status Spill(std::vector<std::pair<uint32_t, uint32_t>>* pairs);

  const std::vector<SpillRun>& runs() const { return runs_; }
  uint64_t spilled_pairs() const { return spilled_pairs_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  Env* env_;
  std::string dir_;
  std::vector<SpillRun> runs_;
  uint64_t spilled_pairs_ = 0;
  uint64_t spilled_bytes_ = 0;
};

/// Streams the union of sorted spill runs and one sorted in-memory
/// tail in ascending (first, second) order — the merge-back side of
/// the spill path. Runs hold disjoint pair sets (each pair was
/// produced by exactly one shard-pair block), so no dedup is needed.
class SpillMerger {
 public:
  SpillMerger(const std::vector<SpillRun>& runs,
              const std::vector<std::pair<uint32_t, uint32_t>>& tail);

  /// False when exhausted; otherwise yields the next smallest pair.
  bool Next(std::pair<uint32_t, uint32_t>* out);

 private:
  struct Source {
    const SpillRun* run = nullptr;  // nullptr = the in-memory tail
    const std::vector<std::pair<uint32_t, uint32_t>>* tail = nullptr;
    uint64_t pos = 0;
    uint64_t size = 0;
  };
  std::vector<Source> sources_;
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_SPILL_FILE_H_
