/// \file
/// GenerationalIndex — LSM-style incremental serving on top of the
/// immutable PreparedIndex. The frozen generation is a full
/// PreparedIndex (pebbles + global order + CSR serving index) over
/// every compacted record; appended records land in a small mutable
/// staging buffer that is prepared lazily as its own mini index.
/// Queries probe both generations and merge the results under the
/// serving order (similarity desc, id asc) — correct because the
/// signature filter is lossless per record pair, so searching two
/// disjoint sub-collections equals searching their union. Refreeze
/// compacts frozen + staging into a new immutable generation built
/// off-lock and swapped in atomically via shared_ptr, exactly the
/// memtable-flush / SST-compaction split of an LSM tree.
///
/// Thread-safety: Append/Search/TopK/BatchSearch/Refreeze may all be
/// called concurrently. A query takes the mutex only long enough to
/// pin both generation pointers (building the staging mini index on
/// first use after an append); verification runs lock-free on the
/// pinned immutable snapshots. Refreeze runs the expensive rebuild
/// outside the mutex, so queries and appends proceed during
/// compaction; concurrent Refreeze calls serialise on their own mutex.

#ifndef AUJOIN_STORAGE_GENERATIONAL_INDEX_H_
#define AUJOIN_STORAGE_GENERATIONAL_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/knowledge.h"
#include "core/measures.h"
#include "core/record.h"
#include "index/prepared_index.h"
#include "join/search.h"
#include "util/status.h"

namespace aujoin {

class WalWriter;

class GenerationalIndex {
 public:
  using Match = UnifiedSearcher::Match;
  using SearchOptions = UnifiedSearcher::SearchOptions;
  using QueryStats = UnifiedSearcher::QueryStats;

  /// Builds the initial frozen generation over `initial` (possibly
  /// empty). Unlike PreparedIndex, the generational index OWNS its
  /// records — generations keep them alive through shared_ptr so a
  /// query pinned to an old generation stays valid across a refreeze
  /// swap. `knowledge` is the usual non-owning bundle and must outlive
  /// the index.
  GenerationalIndex(const Knowledge& knowledge, const MsimOptions& msim,
                    std::vector<Record> initial);

  /// Adopts an already-built frozen generation instead of rebuilding it
  /// — the cold-start path for mounting a checkpoint snapshot. `index`
  /// must have been built (or loaded) over exactly `records`, whose
  /// `id` fields must equal their positions.
  GenerationalIndex(const Knowledge& knowledge, const MsimOptions& msim,
                    std::shared_ptr<const std::vector<Record>> records,
                    std::shared_ptr<const PreparedIndex> index);

  /// Attaches a write-ahead log: every later AppendDurable logs and
  /// fsyncs through `wal` (borrowed; must outlive the index) before
  /// staging. Call during setup — attaching is not synchronised with
  /// in-flight appends.
  void AttachWal(WalWriter* wal);

  /// Durable append: encodes (global id, raw text) as one WAL record,
  /// appends + syncs it, and only then stages the record. An append
  /// acknowledged here survives a crash; one that failed (or was never
  /// acknowledged) never resurrects at replay. After any WAL error the
  /// index refuses further durable appends (sticky status): letting a
  /// failed append's id be reused by a later success would make replay
  /// resurrect whichever of the two happened to reach the disk.
  ///
  /// Concurrent callers group-commit: the first caller to find no flush
  /// in flight becomes the leader, drains every queued append in id
  /// order into the WAL and makes the whole batch durable with ONE
  /// Sync; the others wait for their entry's outcome. Log order stays
  /// equal to id order and no caller is acknowledged before its own
  /// record is on disk — the batch merely shares the fsync.
  Result<uint32_t> AppendDurable(Record record);

  /// Appends one record to the staging buffer and returns its global
  /// id (frozen + staging position — stable across refreezes). The
  /// record's `id` field is overwritten with that global id, matching
  /// the position-is-id convention of ingested collections. O(1) plus
  /// one staging re-preparation amortised into the next query. Waits
  /// for any in-flight durable batch first so volatile and durable ids
  /// never collide.
  uint32_t Append(Record record);

  /// All records (frozen + staging) with Approx USIM >= theta, merged
  /// under the serving order (similarity desc, global id asc) — the
  /// same contract as UnifiedSearcher::Search over the union
  /// collection.
  std::vector<Match> Search(const Record& query, const SearchOptions& options,
                            QueryStats* stats = nullptr) const;

  /// The k best matches with similarity >= min_theta under the serving
  /// order; byte-identical to the k-prefix of Search's result.
  std::vector<Match> TopK(const Record& query, size_t k, double min_theta,
                          const SearchOptions& options,
                          QueryStats* stats = nullptr) const;

  /// Search for each query in order; stats accumulate across the batch.
  std::vector<std::vector<Match>> BatchSearch(
      const std::vector<Record>& queries, const SearchOptions& options,
      QueryStats* stats = nullptr) const;

  /// Compacts frozen + staging into a new frozen generation. The
  /// rebuild runs outside the serving mutex (queries and appends
  /// continue, served by the old generation); records appended during
  /// the rebuild stay in staging with their ids intact. No-op when
  /// staging is empty.
  void Refreeze();

  /// The raw text of record `id`, wherever it lives (frozen or staged);
  /// empty for an out-of-range id. Returns a copy — the record itself
  /// may move from staging to frozen at any time.
  std::string TextOf(uint32_t id) const;

  /// Records in the frozen generation / the staging buffer / total.
  size_t num_frozen() const;
  size_t num_staged() const;
  size_t size() const;

  /// Completed refreeze compactions (generation number of the frozen
  /// index; 0 = the initial build).
  uint64_t generation() const;

  /// The current frozen generation's index, e.g. for snapshotting the
  /// compacted state. The matching records are
  /// frozen_index()->t_records() and stay alive while the returned
  /// pointer is held.
  std::shared_ptr<const PreparedIndex> frozen_index() const;

 private:
  /// One immutable generation: the records and the index borrowing
  /// them, destroyed together once the last query lets go.
  struct Generation {
    std::shared_ptr<const std::vector<Record>> records;
    std::shared_ptr<const PreparedIndex> index;
  };

  /// Pins (frozen, staging) under the mutex; builds the staging mini
  /// index first if an append invalidated it. The staging entry is
  /// null when the staging buffer is empty.
  void Pin(std::shared_ptr<const Generation>* frozen,
           std::shared_ptr<const Generation>* staging) const;

  static std::shared_ptr<const Generation> BuildGeneration(
      const Knowledge& knowledge, const MsimOptions& msim,
      std::vector<Record> records);

  /// Merges two per-generation result lists (already sorted by the
  /// serving order) into one, offsetting staging ids by the frozen
  /// record count.
  static std::vector<Match> MergeMatches(std::vector<Match> frozen,
                                         std::vector<Match> staging,
                                         uint32_t staging_offset);

  Knowledge knowledge_;
  MsimOptions msim_;

  mutable std::mutex mutex_;
  std::shared_ptr<const Generation> frozen_;
  std::vector<Record> staging_records_;
  /// Lazily built over a copy of `staging_records_`; reset by Append
  /// and Refreeze. Mutable: queries build it on demand.
  mutable std::shared_ptr<const Generation> staging_gen_;
  uint64_t generation_ = 0;

  /// One queued durable append: the record to stage once its batch is
  /// on disk, the pre-encoded WAL payload, and the outcome the waiting
  /// caller reads back. Lives on the caller's stack; the queue holds
  /// borrowed pointers.
  struct PendingDurable {
    Record record;
    std::string payload;
    uint32_t id = 0;
    bool done = false;
    Status status = Status::OK();
  };

  /// Group-commit state, all guarded by mutex_. The WAL writer itself
  /// is not thread-safe: only the batch leader touches it, outside the
  /// mutex, while wal_flush_in_flight_ excludes everyone else. Queue
  /// order equals id order equals log order. wal_in_flight_ counts
  /// appends that hold an id but are not staged yet (queued or
  /// flushing) — the id formula adds it so concurrent callers never
  /// collide. wal_status_ is the sticky first-failure status.
  WalWriter* wal_ = nullptr;
  Status wal_status_ = Status::OK();
  std::deque<PendingDurable*> wal_pending_;
  bool wal_flush_in_flight_ = false;
  size_t wal_in_flight_ = 0;
  std::condition_variable wal_cv_;

  /// Serialises refreezes without blocking serving.
  std::mutex refreeze_mutex_;
};

}  // namespace aujoin

#endif  // AUJOIN_STORAGE_GENERATIONAL_INDEX_H_
