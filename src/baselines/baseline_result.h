#ifndef AUJOIN_BASELINES_BASELINE_RESULT_H_
#define AUJOIN_BASELINES_BASELINE_RESULT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace aujoin {

/// Common output shape of the single-measure baseline joins (Section 5.5
/// comparators): matched pairs + wall time + candidate count. Pairs are
/// deterministic: (first, second)-sorted with first < second, regardless
/// of the verification thread count.
struct BaselineResult {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  /// Total wall time, including the baseline's own index construction.
  double seconds = 0.0;
  /// Breakdown: everything up to candidate generation vs. verification.
  double filter_seconds = 0.0;
  double verify_seconds = 0.0;
  uint64_t candidates = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_BASELINE_RESULT_H_
