#ifndef AUJOIN_BASELINES_BASELINE_RESULT_H_
#define AUJOIN_BASELINES_BASELINE_RESULT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace aujoin {

/// Common output shape of the single-measure baseline joins (Section 5.5
/// comparators): matched pairs + wall time + candidate count.
struct BaselineResult {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  double seconds = 0.0;
  uint64_t candidates = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_BASELINE_RESULT_H_
