#ifndef AUJOIN_BASELINES_PKDUCK_H_
#define AUJOIN_BASELINES_PKDUCK_H_

#include <vector>

#include "baselines/baseline_result.h"
#include "core/knowledge.h"
#include "core/record.h"

namespace aujoin {

/// Reimplementation of the PKduck baseline (Tao et al., PVLDB 2017):
/// abbreviation/synonym-aware join. The similarity of two strings is the
/// maximum token-set Jaccard over *derived* strings, where a derivation
/// applies non-overlapping synonym rules to spans of the string. Both the
/// derivation enumeration and the signature (the union of each
/// derivation's rare-token prefix) are bounded by `max_derivations`.
struct PkduckOptions {
  double theta = 0.8;
  /// Cap on enumerated derivations per record (DFS order).
  size_t max_derivations = 16;
  /// Verification worker threads; follows JoinOptions::num_threads
  /// semantics (1 = serial, 0 = all hardware threads).
  int num_threads = 1;
};

class PkduckJoin {
 public:
  PkduckJoin(const Knowledge& knowledge, const PkduckOptions& options)
      : knowledge_(knowledge), options_(options) {}

  BaselineResult SelfJoin(const std::vector<Record>& records) const;

  /// max over derivations of token-set Jaccard (exposed for tests).
  double Similarity(const Record& a, const Record& b) const;

 private:
  std::vector<std::vector<TokenId>> Derivations(const Record& r) const;

  Knowledge knowledge_;
  PkduckOptions options_;
};

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_PKDUCK_H_
