#include "baselines/adaptjoin.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "baselines/parallel_verify.h"
#include "kernels/kernels.h"
#include "text/qgram.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

namespace aujoin {

namespace {

struct GramRecord {
  std::vector<uint32_t> grams;   // gram ids sorted by (freq asc, id asc)
  std::vector<uint32_t> sorted;  // the same ids ascending (verify order)
};

// Runs the l-prefix filter + Jaccard verification over `limit` records;
// returns {processed postings, candidates, results}.
struct FilterCounts {
  uint64_t processed = 0;
  uint64_t candidates = 0;
};

size_t PrefixLen(size_t set_size, double theta, int ell) {
  size_t overlap = static_cast<size_t>(
      std::ceil(theta * static_cast<double>(set_size)));
  if (overlap == 0) overlap = 1;
  size_t p = set_size - overlap + static_cast<size_t>(ell);
  return std::min(p, set_size);
}

double JaccardSortedIds(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  // Ascending distinct gram-id sets intersected through the dispatched
  // kernel; the matched ids land in a thread_local aligned scratch
  // reused across every pair a verify worker checks (no per-pair heap
  // allocation — the hash-set intersection this replaced built one per
  // call).
  if (a.empty() && b.empty()) return 1.0;
  const std::vector<uint32_t>& probe = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& base = a.size() <= b.size() ? b : a;
  thread_local AlignedBuffer<uint32_t> scratch;
  if (scratch.size() < probe.size() + kKernelLaneSlack) {
    scratch.Resize(probe.size() + kKernelLaneSlack);
  }
  uint32_t* end =
      ActiveKernel().intersect_sorted(probe.data(), probe.size(), base.data(),
                                      base.size(), scratch.data());
  size_t inter = static_cast<size_t>(end - scratch.data());
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

BaselineResult AdaptJoin::SelfJoin(const std::vector<Record>& records) const {
  WallTimer timer;
  BaselineResult result;

  // Gram dictionary + document frequencies.
  std::unordered_map<std::string, uint32_t> gram_ids;
  std::vector<uint64_t> gram_freq;
  std::vector<GramRecord> prepared(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    for (const std::string& g : QGrams(records[i].text, options_.q)) {
      auto [it, inserted] = gram_ids.emplace(
          g, static_cast<uint32_t>(gram_ids.size()));
      if (inserted) gram_freq.push_back(0);
      prepared[i].grams.push_back(it->second);
      ++gram_freq[it->second];
    }
  }
  for (auto& pr : prepared) {
    // Ascending copy for the kernel-backed verification intersect
    // (QGrams dedupes, so these are distinct).
    pr.sorted = pr.grams;
    std::sort(pr.sorted.begin(), pr.sorted.end());
    std::sort(pr.grams.begin(), pr.grams.end(), [&](uint32_t a, uint32_t b) {
      if (gram_freq[a] != gram_freq[b]) return gram_freq[a] < gram_freq[b];
      return a < b;
    });
  }

  // One filter pass with a given l over records [0, limit); candidate
  // pairs are collected into `out` (when non-null) and verified later.
  auto run = [&](int ell, size_t limit,
                 std::vector<std::pair<uint32_t, uint32_t>>* out,
                 FilterCounts* counts) {
    std::unordered_map<uint32_t, std::vector<uint32_t>> index;
    std::unordered_map<uint32_t, int> seen;
    for (uint32_t i = 0; i < limit; ++i) {
      const auto& grams = prepared[i].grams;
      size_t p = PrefixLen(grams.size(), options_.theta, ell);
      seen.clear();
      for (size_t g = 0; g < p; ++g) {
        auto it = index.find(grams[g]);
        if (it == index.end()) continue;
        for (uint32_t j : it->second) {
          ++counts->processed;
          ++seen[j];
        }
      }
      for (const auto& [j, cnt] : seen) {
        if (cnt < ell) continue;
        // Length filter: |Gj| >= theta * |Gi| must be possible.
        const auto& gj = prepared[j].grams;
        size_t lo = std::min(grams.size(), gj.size());
        size_t hi = std::max(grams.size(), gj.size());
        if (static_cast<double>(lo) <
            options_.theta * static_cast<double>(hi)) {
          continue;
        }
        ++counts->candidates;
        if (out != nullptr) out->emplace_back(j, i);
      }
      for (size_t g = 0; g < p; ++g) index[grams[g]].push_back(i);
    }
  };

  // Adaptive l selection on a sample: minimise processed + alpha *
  // candidates (alpha reflects that verification costs more than a
  // posting probe).
  size_t sample = std::min(options_.sample_size, records.size());
  int best_ell = 1;
  double best_cost = -1.0;
  for (int ell : options_.ell_candidates) {
    FilterCounts counts;
    run(ell, sample, /*out=*/nullptr, &counts);
    double cost = static_cast<double>(counts.processed) +
                  32.0 * static_cast<double>(counts.candidates);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_ell = ell;
    }
  }
  chosen_ell_ = best_ell;

  FilterCounts counts;
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  run(best_ell, records.size(), &candidates, &counts);
  result.candidates = counts.candidates;
  result.filter_seconds = timer.Seconds();

  WallTimer verify_timer;
  result.pairs = ParallelVerifyPairs(
      candidates, options_.num_threads, [&](uint32_t a, uint32_t b) {
        return JaccardSortedIds(prepared[b].sorted, prepared[a].sorted) >=
               options_.theta;
      });
  result.verify_seconds = verify_timer.Seconds();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace aujoin
