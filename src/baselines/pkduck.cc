#include "baselines/pkduck.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/parallel_verify.h"
#include "core/segment.h"
#include "util/timer.h"

namespace aujoin {

namespace {

double TokenSetJaccard(const std::vector<TokenId>& a,
                       const std::vector<TokenId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<TokenId> SortedUnique(std::vector<TokenId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

std::vector<std::vector<TokenId>> PkduckJoin::Derivations(
    const Record& r) const {
  // Rule matches by begin position.
  std::vector<WellDefinedSegment> segments = EnumerateSegments(r, knowledge_);
  std::vector<std::vector<const WellDefinedSegment*>> by_begin(
      r.num_tokens());
  for (const auto& seg : segments) {
    if (seg.HasSynonym()) by_begin[seg.span.begin].push_back(&seg);
  }

  std::vector<std::vector<TokenId>> out;
  std::vector<TokenId> current;
  struct Dfs {
    const Record& r;
    const Knowledge& knowledge;
    const std::vector<std::vector<const WellDefinedSegment*>>& by_begin;
    size_t cap;
    std::vector<std::vector<TokenId>>& out;
    std::vector<TokenId>& current;

    void Run(size_t pos) {
      if (out.size() >= cap) return;
      if (pos == r.num_tokens()) {
        out.push_back(SortedUnique(current));
        return;
      }
      // Option 1: keep the literal token.
      current.push_back(r.tokens[pos]);
      Run(pos + 1);
      current.pop_back();
      // Option 2: rewrite a matching span with the rule's other side.
      for (const WellDefinedSegment* seg : by_begin[pos]) {
        for (const RuleMatch& m : seg->rule_matches) {
          const std::vector<TokenId>& other =
              knowledge.rules->OtherSide(m);
          size_t before = current.size();
          current.insert(current.end(), other.begin(), other.end());
          Run(seg->span.end);
          current.resize(before);
          if (out.size() >= cap) return;
        }
      }
    }
  } dfs{r, knowledge_, by_begin, options_.max_derivations, out, current};
  if (r.num_tokens() > 0) dfs.Run(0);
  return out;
}

double PkduckJoin::Similarity(const Record& a, const Record& b) const {
  auto da = Derivations(a);
  auto db = Derivations(b);
  double best = 0.0;
  for (const auto& sa : da) {
    for (const auto& sb : db) {
      best = std::max(best, TokenSetJaccard(sa, sb));
    }
  }
  return best;
}

BaselineResult PkduckJoin::SelfJoin(
    const std::vector<Record>& records) const {
  WallTimer timer;
  BaselineResult result;

  // Token document frequencies over the derived sets.
  std::vector<std::vector<std::vector<TokenId>>> derivations(records.size());
  std::unordered_map<TokenId, uint64_t> freq;
  for (size_t i = 0; i < records.size(); ++i) {
    derivations[i] = Derivations(records[i]);
    std::vector<TokenId> all;
    for (const auto& d : derivations[i]) {
      all.insert(all.end(), d.begin(), d.end());
    }
    for (TokenId t : SortedUnique(std::move(all))) ++freq[t];
  }

  // Signature: union of each derivation's rare-token prefix.
  auto signature_of = [&](size_t i) {
    std::vector<TokenId> sig;
    for (const auto& d : derivations[i]) {
      std::vector<TokenId> sorted = d;
      std::sort(sorted.begin(), sorted.end(), [&](TokenId a, TokenId b) {
        uint64_t fa = freq[a], fb = freq[b];
        if (fa != fb) return fa < fb;
        return a < b;
      });
      size_t overlap = static_cast<size_t>(
          std::ceil(options_.theta * static_cast<double>(sorted.size())));
      if (overlap == 0) overlap = 1;
      size_t p = std::min(sorted.size(), sorted.size() - overlap + 1);
      sig.insert(sig.end(), sorted.begin(), sorted.begin() + p);
    }
    return SortedUnique(std::move(sig));
  };

  std::unordered_map<TokenId, std::vector<uint32_t>> index;
  std::unordered_map<uint32_t, char> seen;
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  for (uint32_t i = 0; i < records.size(); ++i) {
    std::vector<TokenId> sig = signature_of(i);
    seen.clear();
    for (TokenId t : sig) {
      auto it = index.find(t);
      if (it == index.end()) continue;
      for (uint32_t j : it->second) seen.emplace(j, 1);
    }
    for (const auto& [j, _] : seen) candidates.emplace_back(j, i);
    for (TokenId t : sig) index[t].push_back(i);
  }
  result.candidates = candidates.size();
  result.filter_seconds = timer.Seconds();

  WallTimer verify_timer;
  result.pairs = ParallelVerifyPairs(
      candidates, options_.num_threads, [&](uint32_t a, uint32_t b) {
        return Similarity(records[a], records[b]) >= options_.theta;
      });
  result.verify_seconds = verify_timer.Seconds();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace aujoin
