#include "baselines/kjoin.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/parallel_verify.h"
#include "core/hungarian.h"
#include "core/segment.h"
#include "util/timer.h"

namespace aujoin {

namespace {

// One unit of the K-Join decomposition: an entity mention or a leftover
// token.
struct Unit {
  bool is_entity = false;
  NodeId entity = Taxonomy::kInvalidNode;
  TokenId token = 0;
};

// Greedy left-to-right decomposition preferring longer (then deeper)
// entity mentions; leftover tokens become token units.
std::vector<Unit> Decompose(const Record& r, const Knowledge& knowledge) {
  std::vector<WellDefinedSegment> segments = EnumerateSegments(r, knowledge);
  std::vector<Unit> units;
  size_t pos = 0;
  while (pos < r.num_tokens()) {
    const WellDefinedSegment* best = nullptr;
    for (const auto& seg : segments) {
      if (seg.span.begin != pos || !seg.HasTaxonomy()) continue;
      if (best == nullptr || seg.span.size() > best->span.size()) {
        best = &seg;
      }
    }
    if (best != nullptr) {
      Unit u;
      u.is_entity = true;
      // Deepest matching entity gives the most specific semantics.
      u.entity = best->taxonomy_nodes.front();
      for (NodeId n : best->taxonomy_nodes) {
        if (knowledge.taxonomy->Depth(n) >
            knowledge.taxonomy->Depth(u.entity)) {
          u.entity = n;
        }
      }
      units.push_back(u);
      pos = best->span.end;
    } else {
      Unit u;
      u.token = r.tokens[pos];
      units.push_back(u);
      ++pos;
    }
  }
  return units;
}

double UnitSimilarity(const Unit& a, const Unit& b, const Taxonomy& tax) {
  if (a.is_entity && b.is_entity) return tax.Similarity(a.entity, b.entity);
  if (!a.is_entity && !b.is_entity) return a.token == b.token ? 1.0 : 0.0;
  return 0.0;
}

}  // namespace

double KJoin::Similarity(const Record& a, const Record& b) const {
  std::vector<Unit> ua = Decompose(a, knowledge_);
  std::vector<Unit> ub = Decompose(b, knowledge_);
  if (ua.empty() || ub.empty()) return 0.0;
  std::vector<std::vector<double>> w(ua.size(),
                                     std::vector<double>(ub.size(), 0.0));
  for (size_t i = 0; i < ua.size(); ++i) {
    for (size_t j = 0; j < ub.size(); ++j) {
      w[i][j] = UnitSimilarity(ua[i], ub[j], *knowledge_.taxonomy);
    }
  }
  return MaxWeightBipartiteMatching(w) /
         static_cast<double>(std::max(ua.size(), ub.size()));
}

BaselineResult KJoin::SelfJoin(const std::vector<Record>& records) const {
  WallTimer timer;
  BaselineResult result;
  const Taxonomy& tax = *knowledge_.taxonomy;

  // Signature keys: threshold ancestors of entities, tokens otherwise.
  // Keys are tagged 64-bit values: entities in the high range.
  auto entity_key = [&](NodeId n) {
    int target_depth = static_cast<int>(
        std::ceil(options_.theta * static_cast<double>(tax.Depth(n))));
    NodeId cur = n;
    while (tax.Depth(cur) > target_depth) cur = tax.Parent(cur);
    return (1ULL << 40) | cur;
  };

  std::vector<std::vector<Unit>> decomposed(records.size());
  std::unordered_map<uint64_t, uint64_t> key_freq;
  std::vector<std::vector<uint64_t>> keys(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    decomposed[i] = Decompose(records[i], knowledge_);
    for (const Unit& u : decomposed[i]) {
      keys[i].push_back(u.is_entity ? entity_key(u.entity)
                                    : static_cast<uint64_t>(u.token));
    }
    std::sort(keys[i].begin(), keys[i].end());
    keys[i].erase(std::unique(keys[i].begin(), keys[i].end()),
                  keys[i].end());
    for (uint64_t k : keys[i]) ++key_freq[k];
  }

  // Prefix filter over units: keep the (1-theta)*|units| + 1 rarest keys.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  std::vector<std::vector<uint64_t>> signature(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    std::sort(keys[i].begin(), keys[i].end(),
              [&](uint64_t a, uint64_t b) {
                uint64_t fa = key_freq[a], fb = key_freq[b];
                if (fa != fb) return fa < fb;
                return a < b;
              });
    size_t prefix = static_cast<size_t>(std::floor(
                        (1.0 - options_.theta) *
                        static_cast<double>(decomposed[i].size()))) +
                    1;
    prefix = std::min(prefix, keys[i].size());
    signature[i].assign(keys[i].begin(), keys[i].begin() + prefix);
  }

  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  for (uint32_t i = 0; i < records.size(); ++i) {
    std::unordered_map<uint32_t, int> seen;
    for (uint64_t k : signature[i]) {
      auto it = index.find(k);
      if (it == index.end()) continue;
      for (uint32_t j : it->second) ++seen[j];
    }
    for (const auto& [j, cnt] : seen) candidates.emplace_back(j, i);
    for (uint64_t k : signature[i]) index[k].push_back(i);
  }
  result.candidates = candidates.size();
  result.filter_seconds = timer.Seconds();

  WallTimer verify_timer;
  result.pairs = ParallelVerifyPairs(
      candidates, options_.num_threads, [&](uint32_t a, uint32_t b) {
        return Similarity(records[a], records[b]) >= options_.theta;
      });
  result.verify_seconds = verify_timer.Seconds();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace aujoin
