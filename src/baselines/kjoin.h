#ifndef AUJOIN_BASELINES_KJOIN_H_
#define AUJOIN_BASELINES_KJOIN_H_

#include <vector>

#include "baselines/baseline_result.h"
#include "core/knowledge.h"
#include "core/record.h"

namespace aujoin {

/// Reimplementation of the K-Join baseline (Shang et al., TKDE 2016):
/// knowledge-aware similarity join using only the taxonomy. Each string is
/// decomposed into entity mentions plus leftover tokens; similarity is the
/// maximum matching between units (entity-entity scored by LCA-depth
/// ratio, token-token by equality), normalised by the larger unit count.
/// Filtering uses the K-Join prefix idea: two entities with similarity
/// >= theta must share the ancestor of either at depth ceil(theta * depth),
/// so that ancestor (plus rare leftover tokens) forms the signature.
struct KJoinOptions {
  double theta = 0.8;
  /// Verification worker threads; follows JoinOptions::num_threads
  /// semantics (1 = serial, 0 = all hardware threads).
  int num_threads = 1;
};

class KJoin {
 public:
  KJoin(const Knowledge& knowledge, const KJoinOptions& options)
      : knowledge_(knowledge), options_(options) {}

  BaselineResult SelfJoin(const std::vector<Record>& records) const;

  /// The taxonomy-only record similarity used for verification (exposed
  /// for tests).
  double Similarity(const Record& a, const Record& b) const;

 private:
  Knowledge knowledge_;
  KJoinOptions options_;
};

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_KJOIN_H_
