#ifndef AUJOIN_BASELINES_COMBINATION_H_
#define AUJOIN_BASELINES_COMBINATION_H_

#include <vector>

#include "baselines/adaptjoin.h"
#include "baselines/baseline_result.h"
#include "baselines/kjoin.h"
#include "baselines/pkduck.h"

namespace aujoin {

/// The "Combination" comparator of Tables 13/14: runs K-Join, AdaptJoin
/// and PKduck and unions their answers (the best a user could do with
/// single-measure tools — still unable to mix measures inside one pair).
struct CombinationOptions {
  KJoinOptions kjoin;
  AdaptJoinOptions adaptjoin;
  PkduckOptions pkduck;
  /// When >= 0, overrides the per-component num_threads so the whole
  /// combination follows one thread policy (0 = all hardware threads).
  int num_threads = -1;
};

BaselineResult CombinationJoin(const Knowledge& knowledge,
                               const std::vector<Record>& records,
                               const CombinationOptions& options);

/// Unions pair lists, deduplicating unordered pairs.
std::vector<std::pair<uint32_t, uint32_t>> UnionPairs(
    const std::vector<const std::vector<std::pair<uint32_t, uint32_t>>*>&
        lists);

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_COMBINATION_H_
