#ifndef AUJOIN_BASELINES_ADAPTJOIN_H_
#define AUJOIN_BASELINES_ADAPTJOIN_H_

#include <vector>

#include "baselines/baseline_result.h"
#include "core/record.h"

namespace aujoin {

/// Reimplementation of the AdaptJoin baseline (Wang et al., SIGMOD 2012):
/// gram-based Jaccard join with the adaptive l-prefix scheme. For Jaccard
/// >= theta two gram sets must overlap by >= ceil(theta * |G|), so the
/// l-prefix |G| - ceil(theta*|G|) + l guarantees >= l shared prefix grams.
/// The adaptive part picks l by estimating filter + verification cost on a
/// sample, mirroring the original's cost-based prefix selection.
struct AdaptJoinOptions {
  double theta = 0.8;
  int q = 2;
  /// Candidate prefix extensions evaluated by the cost model.
  std::vector<int> ell_candidates = {1, 2, 3, 4};
  /// Records sampled for the cost estimate.
  size_t sample_size = 200;
  /// Verification worker threads; follows JoinOptions::num_threads
  /// semantics (1 = serial, 0 = all hardware threads).
  int num_threads = 1;
};

class AdaptJoin {
 public:
  explicit AdaptJoin(const AdaptJoinOptions& options) : options_(options) {}

  BaselineResult SelfJoin(const std::vector<Record>& records) const;

  /// The l the cost model picked on the last SelfJoin call.
  int chosen_ell() const { return chosen_ell_; }

 private:
  AdaptJoinOptions options_;
  mutable int chosen_ell_ = 1;
};

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_ADAPTJOIN_H_
