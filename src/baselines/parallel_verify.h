#ifndef AUJOIN_BASELINES_PARALLEL_VERIFY_H_
#define AUJOIN_BASELINES_PARALLEL_VERIFY_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace aujoin {

/// Verifies candidate pairs with `pred(first, second)` across
/// `num_threads` workers (JoinOptions semantics: 1 = serial, 0 = all
/// hardware threads) and returns the survivors sorted by (first, second).
/// `pred` must be safe to call concurrently from multiple threads.
/// Kernel-backed predicates (the adaptjoin Jaccard check runs the
/// dispatched sorted-set-intersection kernel) keep their intersection
/// output in thread_local aligned scratch, so each worker reuses one
/// buffer across its whole slice instead of allocating per pair.
template <typename Predicate>
std::vector<std::pair<uint32_t, uint32_t>> ParallelVerifyPairs(
    const std::vector<std::pair<uint32_t, uint32_t>>& candidates,
    int num_threads, const Predicate& pred) {
  const int workers = ResolveThreads(num_threads);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> worker_pairs(
      workers);
  ParallelFor(candidates.size(), num_threads,
              [&](size_t begin, size_t end, int worker) {
                for (size_t c = begin; c < end; ++c) {
                  const auto& [a, b] = candidates[c];
                  if (pred(a, b)) worker_pairs[worker].emplace_back(a, b);
                }
              });
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& wp : worker_pairs) {
    pairs.insert(pairs.end(), wp.begin(), wp.end());
  }
  // Deterministic output regardless of the worker split.
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace aujoin

#endif  // AUJOIN_BASELINES_PARALLEL_VERIFY_H_
