#include "baselines/combination.h"

#include <algorithm>
#include <set>

namespace aujoin {

std::vector<std::pair<uint32_t, uint32_t>> UnionPairs(
    const std::vector<const std::vector<std::pair<uint32_t, uint32_t>>*>&
        lists) {
  std::set<std::pair<uint32_t, uint32_t>> merged;
  for (const auto* list : lists) {
    for (auto p : *list) {
      if (p.first > p.second) std::swap(p.first, p.second);
      merged.insert(p);
    }
  }
  return {merged.begin(), merged.end()};
}

BaselineResult CombinationJoin(const Knowledge& knowledge,
                               const std::vector<Record>& records,
                               const CombinationOptions& options) {
  CombinationOptions opts = options;
  if (options.num_threads >= 0) {
    opts.kjoin.num_threads = options.num_threads;
    opts.adaptjoin.num_threads = options.num_threads;
    opts.pkduck.num_threads = options.num_threads;
  }
  KJoin kjoin(knowledge, opts.kjoin);
  AdaptJoin adaptjoin(opts.adaptjoin);
  PkduckJoin pkduck(knowledge, opts.pkduck);

  BaselineResult k = kjoin.SelfJoin(records);
  BaselineResult a = adaptjoin.SelfJoin(records);
  BaselineResult p = pkduck.SelfJoin(records);

  BaselineResult out;
  out.pairs = UnionPairs({&k.pairs, &a.pairs, &p.pairs});
  out.seconds = k.seconds + a.seconds + p.seconds;
  out.filter_seconds =
      k.filter_seconds + a.filter_seconds + p.filter_seconds;
  out.verify_seconds =
      k.verify_seconds + a.verify_seconds + p.verify_seconds;
  out.candidates = k.candidates + a.candidates + p.candidates;
  return out;
}

}  // namespace aujoin
