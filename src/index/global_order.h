#ifndef AUJOIN_INDEX_GLOBAL_ORDER_H_
#define AUJOIN_INDEX_GLOBAL_ORDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/pebble.h"

namespace aujoin {

/// The global pebble order of Section 3.1: pebbles are sorted ascending by
/// document frequency (rare first), ties broken by key, so the signature
/// prefix keeps the most selective pebbles. Frequencies are counted once
/// over both join collections; the tuner's samples reuse the same order.
class GlobalOrder {
 public:
  GlobalOrder() = default;

  /// Counts each distinct pebble key once per record.
  void CountRecord(const RecordPebbles& rp);

  /// Convenience: counts a whole collection.
  void CountCollection(const std::vector<RecordPebbles>& collection);

  /// Assigns dense ranks by (frequency asc, key asc). Must be called after
  /// counting and before Rank/SortPebbles.
  void Finalize();

  /// Rank of a key; unseen keys rank before everything (frequency 0).
  uint64_t Rank(uint64_t key) const;

  /// Document frequency of a key (0 if unseen).
  uint64_t Frequency(uint64_t key) const;

  /// Stably sorts a record's pebbles by ascending rank.
  void SortPebbles(RecordPebbles* rp) const;

  size_t num_keys() const { return freq_.size(); }
  bool finalized() const { return finalized_; }

  /// One exported (key, frequency) pair; position in the exported
  /// vector is rank - 1.
  struct RankedKey {
    uint64_t key = 0;
    uint64_t frequency = 0;
  };

  /// The finalized order as flat rows in ascending rank: row i holds the
  /// key with rank i + 1 and its document frequency. This is the
  /// snapshot serialisation of the order (storage/index_snapshot.cc).
  std::vector<RankedKey> ExportRankOrder() const;

  /// Rebuilds a finalized order from exported rows: row i gets rank
  /// i + 1 and its stored frequency, exactly reversing ExportRankOrder.
  /// Replaces any existing state.
  void ImportRankOrder(const RankedKey* rows, size_t count);

 private:
  std::unordered_map<uint64_t, uint64_t> freq_;
  std::unordered_map<uint64_t, uint64_t> rank_;
  bool finalized_ = false;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_GLOBAL_ORDER_H_
