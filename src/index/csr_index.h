/// \file
/// The frozen CSR (compressed sparse row) candidate index — the
/// cache-friendly read side of candidate generation. A mutable
/// InvertedIndex (a pointer-chasing hash map of vectors) is only the
/// build-time staging structure; Freeze sorts and dedupes every
/// (key -> record) posting into one flat offsets[] + postings[] pair
/// with a compact open-addressed key -> slot table, so probes are a
/// single hash step followed by a sequential scan of a contiguous
/// posting run. CandidateAccumulator is the matching count-based merge
/// scratch: probes accumulate per-record occurrence counts into a
/// reusable epoch-stamped array instead of deduping through a hash set.

#ifndef AUJOIN_INDEX_CSR_INDEX_H_
#define AUJOIN_INDEX_CSR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace aujoin {

/// Immutable CSR posting storage over 64-bit pebble keys. Obtained by
/// freezing a staging InvertedIndex; afterwards every method is const
/// and safe to call from any number of threads concurrently.
class CsrIndex {
 public:
  /// One key's posting run: a contiguous span of ascending, distinct
  /// record ids inside the flat postings array.
  struct Postings {
    const uint32_t* data = nullptr;
    size_t size = 0;

    bool empty() const { return size == 0; }
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + size; }
  };

  CsrIndex() = default;

  /// Freezes the staging map: keys are laid out in ascending key order,
  /// each posting run sorted and deduped, and a linear-probe table maps
  /// key -> slot. The staging structure can be discarded afterwards.
  static CsrIndex Freeze(const InvertedIndex& staging);

  /// The posting run of a key; empty when the key was never indexed.
  Postings Find(uint64_t key) const {
    if (slots_.empty()) return Postings{};
    size_t h = MixKey(key) & mask_;
    while (true) {
      uint32_t slot = slots_[h];
      if (slot == kEmptySlot) return Postings{};
      if (keys_[slot] == key) {
        return Postings{postings_.data() + offsets_[slot],
                        offsets_[slot + 1] - offsets_[slot]};
      }
      h = (h + 1) & mask_;
    }
  }

  size_t num_keys() const { return keys_.size(); }

  /// Distinct (key, record) postings — duplicates are gone after Freeze.
  uint64_t total_postings() const { return postings_.size(); }

  /// 1 + the largest posted record id (0 when empty): the universe a
  /// CandidateAccumulator must cover to count this index's postings.
  size_t record_universe() const { return record_universe_; }

  /// Heap bytes of the frozen layout (keys + offsets + postings + table).
  size_t memory_bytes() const {
    return keys_.size() * sizeof(uint64_t) +
           offsets_.size() * sizeof(uint32_t) +
           postings_.size() * sizeof(uint32_t) +
           slots_.size() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// splitmix64 finalizer: pebble keys pack a type tag in the top byte
  /// and dense ids below, so identity hashing would cluster; this mixes
  /// every input bit into the table index.
  static uint64_t MixKey(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::vector<uint64_t> keys_;      // slot -> key, ascending
  std::vector<uint32_t> offsets_;   // slot -> postings_ begin; size keys+1
  std::vector<uint32_t> postings_;  // flat runs, sorted + deduped per key
  std::vector<uint32_t> slots_;     // open-addressed key hash -> slot
  size_t mask_ = 0;
  size_t record_universe_ = 0;
};

/// Reusable count-merge scratch for one probing thread. Counts live in
/// flat arrays indexed by record id; an epoch stamp per entry makes
/// starting a new probe O(1) — stale counts from earlier probes are
/// ignored rather than cleared. Not thread-safe: use one accumulator
/// per worker (or thread_local) and never share concurrently.
class CandidateAccumulator {
 public:
  /// Starts a new probe over record ids in [0, universe): grows the
  /// arrays if needed and invalidates every previous count in O(1).
  void Begin(size_t universe) {
    if (counts_.size() < universe) {
      counts_.resize(universe, 0);
      epochs_.resize(universe, 0);
    }
    if (epoch_ == 0xFFFFFFFFu) {  // epoch wrap: one real clear per 2^32
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 0;
    }
    ++epoch_;
    touched_.clear();
  }

  /// Counts one posting occurrence; returns the id's updated count.
  uint32_t Bump(uint32_t id) {
    if (epochs_[id] != epoch_) {
      epochs_[id] = epoch_;
      counts_[id] = 1;
      touched_.push_back(id);
      return 1;
    }
    return ++counts_[id];
  }

  /// The id's count in the current probe (0 if never bumped).
  uint32_t count(uint32_t id) const {
    return epochs_[id] == epoch_ ? counts_[id] : 0;
  }

  /// Ids bumped since Begin, in first-touch order.
  const std::vector<uint32_t>& touched() const { return touched_; }

 private:
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> epochs_;
  std::vector<uint32_t> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_CSR_INDEX_H_
