/// \file
/// The frozen CSR (compressed sparse row) candidate index — the
/// cache-friendly read side of candidate generation. A mutable
/// InvertedIndex (a pointer-chasing hash map of vectors) is only the
/// build-time staging structure; Freeze sorts and dedupes every
/// (key -> record) posting into one flat offsets[] + postings[] pair
/// with a compact open-addressed key -> slot table, so probes are a
/// single hash step followed by a sequential scan of a contiguous
/// posting run. CandidateAccumulator is the matching count-based merge
/// scratch: probes accumulate per-record occurrence counts into a
/// reusable epoch-stamped array instead of deduping through a hash set.
///
/// Storage model: the index reads through raw-pointer views that
/// either point at its own vectors (Freeze) or at externally owned
/// flat arrays (FromSections — the mmap'd snapshot sections of
/// storage/snapshot_reader.h, kept alive by the shared owner handle).
/// Either way every probe method is const and thread-safe, and the
/// view arrays double as the zero-copy write side of SnapshotWriter.

#ifndef AUJOIN_INDEX_CSR_INDEX_H_
#define AUJOIN_INDEX_CSR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/inverted_index.h"
#include "util/status.h"

namespace aujoin {

/// Immutable CSR posting storage over 64-bit pebble keys. Obtained by
/// freezing a staging InvertedIndex or by adopting snapshot sections;
/// afterwards every method is const and safe to call from any number
/// of threads concurrently.
class CsrIndex {
 public:
  /// One key's posting run: a contiguous span of ascending, distinct
  /// record ids inside the flat postings array.
  struct Postings {
    const uint32_t* data = nullptr;
    size_t size = 0;

    bool empty() const { return size == 0; }
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + size; }
  };

  CsrIndex() = default;

  // The views alias the owned vectors' heap buffers, which vector
  // moves transfer intact — so moving is safe, but a copy would leave
  // the views pointing into the source. Share a frozen index through
  // shared_ptr (the PreparedIndex pattern) instead of copying it.
  CsrIndex(const CsrIndex&) = delete;
  CsrIndex& operator=(const CsrIndex&) = delete;
  CsrIndex(CsrIndex&&) = default;
  CsrIndex& operator=(CsrIndex&&) = default;

  /// Freezes the staging map: keys are laid out in ascending key order,
  /// each posting run sorted and deduped, and a linear-probe table maps
  /// key -> slot. The staging structure can be discarded afterwards.
  static CsrIndex Freeze(const InvertedIndex& staging);

  /// Adopts already-frozen flat sections without copying them — the
  /// mmap cold-start path. `owner` keeps the backing memory (e.g. a
  /// SnapshotReader's mapping) alive for the index's lifetime. Every
  /// structural invariant is re-validated here (ascending keys,
  /// monotone offsets, posting ids inside `record_universe`, a
  /// power-of-two slot table with at least one empty slot so probes
  /// terminate); violations return kCorruption, never UB.
  static Result<CsrIndex> FromSections(
      const uint64_t* keys, size_t num_keys, const uint32_t* offsets,
      const uint32_t* postings, size_t num_postings, const uint32_t* slots,
      size_t num_slots, size_t record_universe,
      std::shared_ptr<const void> owner);

  /// The posting run of a key; empty when the key was never indexed.
  Postings Find(uint64_t key) const {
    if (num_slots_ == 0) return Postings{};
    size_t h = MixKey(key) & mask_;
    while (true) {
      uint32_t slot = slots_[h];
      if (slot == kEmptySlot) return Postings{};
      if (keys_[slot] == key) {
        return Postings{postings_ + offsets_[slot],
                        offsets_[slot + 1] - offsets_[slot]};
      }
      h = (h + 1) & mask_;
    }
  }

  size_t num_keys() const { return num_keys_; }

  /// Distinct (key, record) postings — duplicates are gone after Freeze.
  uint64_t total_postings() const { return num_postings_; }

  /// 1 + the largest posted record id (0 when empty): the universe a
  /// CandidateAccumulator must cover to count this index's postings.
  size_t record_universe() const { return record_universe_; }

  /// Bytes of the frozen layout (keys + offsets + postings + table) —
  /// heap bytes when owned, mapped bytes when snapshot-backed.
  size_t memory_bytes() const {
    return num_keys_ * sizeof(uint64_t) +
           (num_keys_ == 0 ? 0 : (num_keys_ + 1)) * sizeof(uint32_t) +
           num_postings_ * sizeof(uint32_t) + num_slots_ * sizeof(uint32_t);
  }

  /// True when the arrays live in externally owned memory (a snapshot
  /// mapping) rather than this object's vectors.
  bool borrows_external_storage() const { return owner_ != nullptr; }

  // Raw flat sections — what SnapshotWriter serialises verbatim. The
  // offsets view always has num_keys() + 1 entries (a single zero for
  // an empty index); the slots view has num_slots() entries.
  const uint64_t* keys_data() const { return keys_; }
  const uint32_t* offsets_data() const { return offsets_; }
  const uint32_t* postings_data() const { return postings_; }
  const uint32_t* slots_data() const { return slots_; }
  size_t num_slots() const { return num_slots_; }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// splitmix64 finalizer: pebble keys pack a type tag in the top byte
  /// and dense ids below, so identity hashing would cluster; this mixes
  /// every input bit into the table index.
  static uint64_t MixKey(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Points the views at the owned vectors (after Freeze fills them).
  void BindOwned();

  // Owned storage (empty in snapshot-view mode).
  std::vector<uint64_t> owned_keys_;     // slot -> key, ascending
  std::vector<uint32_t> owned_offsets_;  // slot -> postings begin; keys+1
  std::vector<uint32_t> owned_postings_;  // flat runs, sorted+deduped per key
  std::vector<uint32_t> owned_slots_;     // open-addressed key hash -> slot
  /// Keeps externally owned storage (the snapshot mapping) alive.
  std::shared_ptr<const void> owner_;

  // The read views every probe goes through.
  const uint64_t* keys_ = nullptr;
  const uint32_t* offsets_ = nullptr;
  const uint32_t* postings_ = nullptr;
  const uint32_t* slots_ = nullptr;
  size_t num_keys_ = 0;
  size_t num_postings_ = 0;
  size_t num_slots_ = 0;
  size_t mask_ = 0;
  size_t record_universe_ = 0;
};

/// Reusable count-merge scratch for one probing thread. Counts live in
/// flat arrays indexed by record id; an epoch stamp per entry makes
/// starting a new probe O(1) — stale counts from earlier probes are
/// ignored rather than cleared. Not thread-safe: use one accumulator
/// per worker (or thread_local) and never share concurrently.
class CandidateAccumulator {
 public:
  /// Starts a new probe over record ids in [0, universe): grows the
  /// arrays if needed and invalidates every previous count in O(1).
  void Begin(size_t universe) {
    if (counts_.size() < universe) {
      counts_.resize(universe, 0);
      epochs_.resize(universe, 0);
    }
    if (epoch_ == 0xFFFFFFFFu) {  // epoch wrap: one real clear per 2^32
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 0;
    }
    ++epoch_;
    touched_.clear();
  }

  /// Counts one posting occurrence; returns the id's updated count.
  uint32_t Bump(uint32_t id) {
    if (epochs_[id] != epoch_) {
      epochs_[id] = epoch_;
      counts_[id] = 1;
      touched_.push_back(id);
      return 1;
    }
    return ++counts_[id];
  }

  /// The id's count in the current probe (0 if never bumped).
  uint32_t count(uint32_t id) const {
    return epochs_[id] == epoch_ ? counts_[id] : 0;
  }

  /// Ids bumped since Begin, in first-touch order.
  const std::vector<uint32_t>& touched() const { return touched_; }

 private:
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> epochs_;
  std::vector<uint32_t> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_CSR_INDEX_H_
