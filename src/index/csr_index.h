/// \file
/// The frozen CSR (compressed sparse row) candidate index — the
/// cache-friendly read side of candidate generation. A mutable
/// InvertedIndex (a pointer-chasing hash map of vectors) is only the
/// build-time staging structure; Freeze sorts and dedupes every
/// (key -> record) posting into one flat offsets[] + postings[] pair
/// with a compact open-addressed key -> slot table, so probes are a
/// single hash step followed by a sequential scan of a contiguous
/// posting run. CandidateAccumulator is the matching count-based merge
/// scratch: probes accumulate per-record occurrence counts into a
/// reusable epoch-stamped array instead of deduping through a hash set,
/// and its batch operations run on the dispatched kernels of
/// src/kernels/ (scalar fallback, AVX2/NEON where the host supports
/// them).
///
/// Storage model: the index reads through raw-pointer views that
/// either point at its own vectors (Freeze) or at externally owned
/// flat arrays (FromSections — the mmap'd snapshot sections of
/// storage/snapshot_reader.h, kept alive by the shared owner handle).
/// Either way every probe method is const and thread-safe, and the
/// view arrays double as the zero-copy write side of SnapshotWriter.

#ifndef AUJOIN_INDEX_CSR_INDEX_H_
#define AUJOIN_INDEX_CSR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/inverted_index.h"
#include "kernels/kernels.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

namespace aujoin {

/// Immutable CSR posting storage over 64-bit pebble keys. Obtained by
/// freezing a staging InvertedIndex or by adopting snapshot sections;
/// afterwards every method is const and safe to call from any number
/// of threads concurrently.
class CsrIndex {
 public:
  /// One key's posting run: a contiguous span of ascending, distinct
  /// record ids inside the flat postings array.
  // Trivial on purpose (no default member initializers) so batched
  // lookups can stage runs in an AlignedBuffer; always value-initialize
  // (`Postings{}`) when constructing an empty run.
  struct Postings {
    const uint32_t* data;
    size_t size;

    bool empty() const { return size == 0; }
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + size; }
  };

  CsrIndex() = default;

  // The views alias the owned vectors' heap buffers, which vector
  // moves transfer intact — so moving is safe, but a copy would leave
  // the views pointing into the source. Share a frozen index through
  // shared_ptr (the PreparedIndex pattern) instead of copying it.
  CsrIndex(const CsrIndex&) = delete;
  CsrIndex& operator=(const CsrIndex&) = delete;
  CsrIndex(CsrIndex&&) = default;
  CsrIndex& operator=(CsrIndex&&) = default;

  /// Freezes the staging map: keys are laid out in ascending key order,
  /// each posting run sorted and deduped, and a linear-probe table maps
  /// key -> slot. The staging structure can be discarded afterwards.
  static CsrIndex Freeze(const InvertedIndex& staging);

  /// Adopts already-frozen flat sections without copying them — the
  /// mmap cold-start path. `owner` keeps the backing memory (e.g. a
  /// SnapshotReader's mapping) alive for the index's lifetime. Every
  /// structural invariant is re-validated here (ascending keys,
  /// monotone offsets, posting ids inside `record_universe`, a
  /// power-of-two slot table with at least one empty slot so probes
  /// terminate); violations return kCorruption, never UB.
  static Result<CsrIndex> FromSections(
      const uint64_t* keys, size_t num_keys, const uint32_t* offsets,
      const uint32_t* postings, size_t num_postings, const uint32_t* slots,
      size_t num_slots, size_t record_universe,
      std::shared_ptr<const void> owner);

  /// The posting run of a key; empty when the key was never indexed.
  Postings Find(uint64_t key) const {
    if (num_slots_ == 0) return Postings{};
    return FindFromHash(key, MixKey(key) & mask_);
  }

  /// Batched probe: resolves keys[0..n) to their posting runs, exactly
  /// as n Find calls would. All hashes of a block are computed in one
  /// splitmix64 sweep (the finalizer pipelines across keys with no
  /// table-walk stalls between them) and each block's home slots are
  /// prefetched before the first walk touches the table — the per-key
  /// hash-and-walk latency a signature's probe loop used to pay
  /// serially. `out` must have room for n entries.
  void FindBatch(const uint64_t* keys, size_t n, Postings* out) const {
    if (num_slots_ == 0) {
      for (size_t i = 0; i < n; ++i) out[i] = Postings{};
      return;
    }
    constexpr size_t kBatch = 16;
    size_t hashes[kBatch];
    for (size_t base = 0; base < n; base += kBatch) {
      const size_t m = n - base < kBatch ? n - base : kBatch;
      for (size_t i = 0; i < m; ++i) {
        hashes[i] = MixKey(keys[base + i]) & mask_;
        __builtin_prefetch(&slots_[hashes[i]]);
      }
      for (size_t i = 0; i < m; ++i) {
        out[base + i] = FindFromHash(keys[base + i], hashes[i]);
      }
    }
  }

  size_t num_keys() const { return num_keys_; }

  /// Distinct (key, record) postings — duplicates are gone after Freeze.
  uint64_t total_postings() const { return num_postings_; }

  /// 1 + the largest posted record id (0 when empty): the universe a
  /// CandidateAccumulator must cover to count this index's postings.
  size_t record_universe() const { return record_universe_; }

  /// Bytes of the frozen layout (keys + offsets + postings + table) —
  /// heap bytes when owned, mapped bytes when snapshot-backed.
  size_t memory_bytes() const {
    return num_keys_ * sizeof(uint64_t) +
           (num_keys_ == 0 ? 0 : (num_keys_ + 1)) * sizeof(uint32_t) +
           num_postings_ * sizeof(uint32_t) + num_slots_ * sizeof(uint32_t);
  }

  /// True when the arrays live in externally owned memory (a snapshot
  /// mapping) rather than this object's vectors.
  bool borrows_external_storage() const { return owner_ != nullptr; }

  // Raw flat sections — what SnapshotWriter serialises verbatim. The
  // offsets view always has num_keys() + 1 entries (a single zero for
  // an empty index); the slots view has num_slots() entries.
  const uint64_t* keys_data() const { return keys_; }
  const uint32_t* offsets_data() const { return offsets_; }
  const uint32_t* postings_data() const { return postings_; }
  const uint32_t* slots_data() const { return slots_; }
  size_t num_slots() const { return num_slots_; }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// splitmix64 finalizer: pebble keys pack a type tag in the top byte
  /// and dense ids below, so identity hashing would cluster; this mixes
  /// every input bit into the table index.
  static uint64_t MixKey(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// The probe walk shared by Find and FindBatch: `h` is the key's
  /// home slot (MixKey already applied and masked).
  Postings FindFromHash(uint64_t key, size_t h) const {
    while (true) {
      uint32_t slot = slots_[h];
      if (slot == kEmptySlot) return Postings{};
      if (keys_[slot] == key) {
        return Postings{postings_ + offsets_[slot],
                        offsets_[slot + 1] - offsets_[slot]};
      }
      h = (h + 1) & mask_;
    }
  }

  /// Points the views at the owned vectors (after Freeze fills them).
  void BindOwned();

  // Owned storage (empty in snapshot-view mode).
  std::vector<uint64_t> owned_keys_;     // slot -> key, ascending
  std::vector<uint32_t> owned_offsets_;  // slot -> postings begin; keys+1
  std::vector<uint32_t> owned_postings_;  // flat runs, sorted+deduped per key
  std::vector<uint32_t> owned_slots_;     // open-addressed key hash -> slot
  /// Keeps externally owned storage (the snapshot mapping) alive.
  std::shared_ptr<const void> owner_;

  // The read views every probe goes through.
  const uint64_t* keys_ = nullptr;
  const uint32_t* offsets_ = nullptr;
  const uint32_t* postings_ = nullptr;
  const uint32_t* slots_ = nullptr;
  size_t num_keys_ = 0;
  size_t num_postings_ = 0;
  size_t num_slots_ = 0;
  size_t mask_ = 0;
  size_t record_universe_ = 0;
};

/// Reusable count-merge scratch for one probing thread. Each record id
/// owns one packed 64-bit stamp — probe epoch in the high half, count
/// in the low half — in a 64-byte-aligned flat array, so starting a
/// new probe is O(1) (stale stamps are ignored, never cleared) and one
/// load/store pair covers what used to be separate epoch and count
/// arrays. The batch operations (BumpRun and the selects) execute on
/// the process's dispatched kernel (kernels/kernels.h): scalar
/// fallback always, AVX2/NEON when the host supports them, with the
/// AUJOIN_FORCE_SCALAR override for testing. Not thread-safe: use one
/// accumulator per worker (or thread_local) and never share
/// concurrently.
class CandidateAccumulator {
 public:
  /// A borrowed window into the accumulator's internal buffers —
  /// valid until the next Begin/SelectGE/SelectMergedGE call.
  struct IdSpan {
    const uint32_t* ids = nullptr;
    size_t count = 0;

    const uint32_t* begin() const { return ids; }
    const uint32_t* end() const { return ids + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  /// Starts a new probe over record ids in [0, universe): grows the
  /// arrays if needed and invalidates every previous count in O(1).
  void Begin(size_t universe) {
    if (stamps_.size() < universe) {
      stamps_.Resize(universe);
      // Output buffers carry kKernelLaneSlack headroom: the vector
      // kernels append compacted blocks with full-width stores.
      touched_.Resize(universe + kKernelLaneSlack);
      selected_.Resize(universe + kKernelLaneSlack);
    }
    if (epoch_ == 0xFFFFFFFFu) {  // epoch wrap: one real clear per 2^32
      stamps_.ZeroFill();
      epoch_ = 0;
    }
    ++epoch_;
    touched_tail_ = touched_.data();
  }

  /// Counts a whole posting run through the dispatched kernel. The
  /// run's ids must be < the Begin universe (CSR runs also arrive
  /// sorted and distinct, though the kernels require neither).
  void BumpRun(const uint32_t* ids, size_t n) {
    touched_tail_ =
        ActiveKernel().count_merge_run(stamps_.data(), epoch_, ids, n,
                                       touched_tail_);
  }

  /// Counts one posting occurrence; returns the id's updated count.
  /// The single-id path for callers with per-id control flow (the
  /// subset-sampling probe); batch callers use BumpRun.
  uint32_t Bump(uint32_t id) {
    const uint64_t st = stamps_[id];
    if (static_cast<uint32_t>(st >> 32) != epoch_) {
      stamps_[id] = (static_cast<uint64_t>(epoch_) << 32) | 1u;
      *touched_tail_++ = id;
      return 1;
    }
    stamps_[id] = st + 1;
    return static_cast<uint32_t>(st) + 1;
  }

  /// The id's count in the current probe (0 if never bumped).
  uint32_t count(uint32_t id) const {
    const uint64_t st = stamps_[id];
    return static_cast<uint32_t>(st >> 32) == epoch_
               ? static_cast<uint32_t>(st)
               : 0;
  }

  /// Ids bumped since Begin, in first-touch order.
  IdSpan touched() const {
    return IdSpan{touched_.data(),
                  static_cast<size_t>(touched_tail_ - touched_.data())};
  }

  /// Touched ids whose count reached `threshold` (first-touch order) —
  /// the serving path's uniform required overlap, via the dispatched
  /// kernel.
  IdSpan SelectGE(uint32_t threshold) {
    const IdSpan bumped = touched();
    uint32_t* end = ActiveKernel().select_ge(stamps_.data(), threshold,
                                             bumped.ids, bumped.count,
                                             selected_.data());
    return IdSpan{selected_.data(),
                  static_cast<size_t>(end - selected_.data())};
  }

  /// Touched ids whose count reached min(probe_tau, taus[id]) — the
  /// join path's MergeRequiredOverlap rule with the indexed side's
  /// effective taus in a flat array, via the dispatched kernel.
  IdSpan SelectMergedGE(const uint32_t* taus, uint32_t probe_tau) {
    const IdSpan bumped = touched();
    uint32_t* end = ActiveKernel().select_ge_merged(
        stamps_.data(), taus, probe_tau, bumped.ids, bumped.count,
        selected_.data());
    return IdSpan{selected_.data(),
                  static_cast<size_t>(end - selected_.data())};
  }

  /// Resolves a signature's keys to posting runs through
  /// CsrIndex::FindBatch, using this accumulator's aligned scratch so
  /// probe loops stay allocation-free. The returned view is valid
  /// until the next ResolveRuns call on this accumulator.
  const CsrIndex::Postings* ResolveRuns(const CsrIndex& index,
                                        const uint64_t* keys, size_t n) {
    if (runs_.size() < n) runs_.Resize(n);
    index.FindBatch(keys, n, runs_.data());
    return runs_.data();
  }

  /// Jumps the probe epoch (wrap stress tests only): the next Begin
  /// increments — or, from 0xFFFFFFFF, clears and restarts — from here.
  void SetEpochForTesting(uint32_t epoch) { epoch_ = epoch; }

 private:
  AlignedBuffer<uint64_t> stamps_;    // id -> (epoch << 32) | count
  AlignedBuffer<uint32_t> touched_;   // first-touch ids + lane slack
  AlignedBuffer<uint32_t> selected_;  // select output + lane slack
  AlignedBuffer<CsrIndex::Postings> runs_;  // FindBatch output scratch
  uint32_t* touched_tail_ = nullptr;
  uint32_t epoch_ = 0;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_CSR_INDEX_H_
