#include "index/prepared_index.h"

#include <algorithm>

#include "util/timer.h"

namespace aujoin {

std::shared_ptr<const PreparedIndex> PreparedIndex::Build(
    const Knowledge& knowledge, const MsimOptions& msim,
    const std::vector<Record>& s, const std::vector<Record>* t) {
  // make_shared needs a public constructor; the factory is the only
  // caller, so a private-new shared_ptr keeps the invariant instead.
  std::shared_ptr<PreparedIndex> index(new PreparedIndex());
  index->knowledge_ = knowledge;
  index->msim_ = msim;
  index->s_records_ = &s;
  index->t_records_ = (t == nullptr) ? &s : t;

  WallTimer timer;
  PebbleGenerator generator(knowledge, msim);
  index->s_prepared_.reserve(s.size());
  for (const Record& r : s) {
    PreparedRecord pr;
    pr.pebbles = generator.Generate(r, &index->gram_dict_);
    pr.num_tokens = r.num_tokens();
    index->s_prepared_.push_back(std::move(pr));
  }
  if (t != nullptr && t != &s) {
    index->t_prepared_.reserve(t->size());
    for (const Record& r : *t) {
      PreparedRecord pr;
      pr.pebbles = generator.Generate(r, &index->gram_dict_);
      pr.num_tokens = r.num_tokens();
      index->t_prepared_.push_back(std::move(pr));
    }
  }

  for (const auto& pr : index->s_prepared_) {
    index->order_.CountRecord(pr.pebbles);
  }
  for (const auto& pr : index->t_prepared_) {
    index->order_.CountRecord(pr.pebbles);
  }
  index->order_.Finalize();
  for (auto& pr : index->s_prepared_) index->order_.SortPebbles(&pr.pebbles);
  for (auto& pr : index->t_prepared_) index->order_.SortPebbles(&pr.pebbles);
  index->prepare_seconds_ = timer.Seconds();
  return index;
}

const CsrIndex& PreparedIndex::ServingIndex(double* built_seconds) const {
  if (built_seconds != nullptr) *built_seconds = 0.0;
  // Double-checked build: the atomic flag's release store publishes the
  // completed index; the acquire load on the fast path pairs with it.
  if (!serving_built_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(serving_mutex_);
    if (!serving_built_.load(std::memory_order_relaxed)) {
      WallTimer timer;
      const std::vector<PreparedRecord>& prepared = t_prepared();
      InvertedIndex staging;
      std::vector<uint64_t> keys;
      for (size_t i = 0; i < prepared.size(); ++i) {
        keys.clear();
        keys.reserve(prepared[i].pebbles.pebbles.size());
        for (const Pebble& p : prepared[i].pebbles.pebbles) {
          keys.push_back(p.key);
        }
        // Add dedupes the record's repeated keys itself — one posting
        // per distinct key, even for duplicate-heavy pebble lists.
        staging.Add(static_cast<uint32_t>(i), keys);
      }
      serving_index_ = CsrIndex::Freeze(staging);
      double seconds = timer.Seconds();
      index_seconds_.store(seconds, std::memory_order_relaxed);
      if (built_seconds != nullptr) *built_seconds = seconds;
      serving_built_.store(true, std::memory_order_release);
    }
  }
  return serving_index_;
}

double PreparedIndex::index_seconds() const {
  return serving_built_.load(std::memory_order_acquire)
             ? index_seconds_.load(std::memory_order_relaxed)
             : 0.0;
}

RecordPebbles PreparedIndex::GenerateQueryPebbles(
    const Record& query) const {
  PebbleGenerator generator(knowledge_, msim_);
  std::unordered_map<std::string, uint64_t> overlay;
  RecordPebbles rp = generator.Generate(query, gram_dict_, &overlay);
  order_.SortPebbles(&rp);
  return rp;
}

}  // namespace aujoin
