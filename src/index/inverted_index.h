#ifndef AUJOIN_INDEX_INVERTED_INDEX_H_
#define AUJOIN_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aujoin {

/// Inverted index from pebble key to the ids of records whose signature
/// contains the key (Algorithms 3 and 6 build one per collection).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds every key of one record's signature.
  void Add(uint32_t record_id, const std::vector<uint64_t>& keys) {
    for (uint64_t k : keys) postings_[k].push_back(record_id);
  }

  /// The posting list for a key, or nullptr.
  const std::vector<uint32_t>* Find(uint64_t key) const {
    auto it = postings_.find(key);
    return it == postings_.end() ? nullptr : &it->second;
  }

  size_t num_keys() const { return postings_.size(); }

  uint64_t total_postings() const {
    uint64_t n = 0;
    for (const auto& [k, v] : postings_) n += v.size();
    return n;
  }

 private:
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_INVERTED_INDEX_H_
