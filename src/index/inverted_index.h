#ifndef AUJOIN_INDEX_INVERTED_INDEX_H_
#define AUJOIN_INDEX_INVERTED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aujoin {

/// Mutable inverted index from pebble key to the ids of records whose
/// signature contains the key (Algorithms 3 and 6 build one per
/// collection). This is the *build-time staging structure* only: the
/// probe paths freeze it into a CsrIndex (index/csr_index.h) and scan
/// that, so the pointer-chasing map never sits on a hot path.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds every distinct key of one record's signature. Repeated keys
  /// within the call insert one posting, not one per occurrence: a
  /// record with duplicated signature keys must not be counted twice by
  /// the overlap merge (that inflated postings, candidates and verify
  /// work). Sorted key lists dedupe in place; unsorted ones through a
  /// scratch copy.
  void Add(uint32_t record_id, const std::vector<uint64_t>& keys) {
    if (std::is_sorted(keys.begin(), keys.end())) {
      const uint64_t* prev = nullptr;
      for (const uint64_t& k : keys) {
        if (prev != nullptr && *prev == k) continue;
        postings_[k].push_back(record_id);
        prev = &k;
      }
      return;
    }
    scratch_ = keys;
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    for (uint64_t k : scratch_) postings_[k].push_back(record_id);
  }

  /// The posting list for a key, or nullptr.
  const std::vector<uint32_t>* Find(uint64_t key) const {
    auto it = postings_.find(key);
    return it == postings_.end() ? nullptr : &it->second;
  }

  /// Every (key -> posting list) entry; what CsrIndex::Freeze consumes.
  const std::unordered_map<uint64_t, std::vector<uint32_t>>& postings()
      const {
    return postings_;
  }

  size_t num_keys() const { return postings_.size(); }

  uint64_t total_postings() const {
    uint64_t n = 0;
    for (const auto& [k, v] : postings_) n += v.size();
    return n;
  }

 private:
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  std::vector<uint64_t> scratch_;
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_INVERTED_INDEX_H_
