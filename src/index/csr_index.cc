#include "index/csr_index.h"

#include <algorithm>
#include <utility>

namespace aujoin {

void CsrIndex::BindOwned() {
  keys_ = owned_keys_.data();
  offsets_ = owned_offsets_.data();
  postings_ = owned_postings_.data();
  slots_ = owned_slots_.data();
  num_keys_ = owned_keys_.size();
  num_postings_ = owned_postings_.size();
  num_slots_ = owned_slots_.size();
}

CsrIndex CsrIndex::Freeze(const InvertedIndex& staging) {
  CsrIndex out;
  const auto& postings_map = staging.postings();
  out.owned_keys_.reserve(postings_map.size());
  for (const auto& [key, ids] : postings_map) {
    if (!ids.empty()) out.owned_keys_.push_back(key);
  }
  // Ascending key order makes the layout (and every probe's posting
  // scan) deterministic regardless of the staging map's bucket order.
  std::sort(out.owned_keys_.begin(), out.owned_keys_.end());

  out.owned_offsets_.resize(out.owned_keys_.size() + 1, 0);
  uint64_t total = 0;
  for (const auto& [key, ids] : postings_map) total += ids.size();

  out.owned_postings_.reserve(total);
  std::vector<uint32_t> run;
  for (size_t slot = 0; slot < out.owned_keys_.size(); ++slot) {
    out.owned_offsets_[slot] =
        static_cast<uint32_t>(out.owned_postings_.size());
    run = postings_map.at(out.owned_keys_[slot]);
    // The staging Add dedupes within one record, but the same record may
    // legitimately be Added more than once (or out of id order) by an
    // arbitrary builder; the frozen contract is sorted + distinct.
    std::sort(run.begin(), run.end());
    run.erase(std::unique(run.begin(), run.end()), run.end());
    for (uint32_t id : run) {
      out.record_universe_ =
          std::max(out.record_universe_, static_cast<size_t>(id) + 1);
    }
    out.owned_postings_.insert(out.owned_postings_.end(), run.begin(),
                               run.end());
  }
  out.owned_offsets_[out.owned_keys_.size()] =
      static_cast<uint32_t>(out.owned_postings_.size());

  // Linear-probe table at <= 50% load: next power of two >= 2 * keys.
  size_t table_size = 1;
  while (table_size < out.owned_keys_.size() * 2) table_size <<= 1;
  out.owned_slots_.assign(out.owned_keys_.empty() ? 0 : table_size,
                          kEmptySlot);
  out.mask_ = table_size - 1;
  for (size_t slot = 0; slot < out.owned_keys_.size(); ++slot) {
    size_t h = MixKey(out.owned_keys_[slot]) & out.mask_;
    while (out.owned_slots_[h] != kEmptySlot) h = (h + 1) & out.mask_;
    out.owned_slots_[h] = static_cast<uint32_t>(slot);
  }
  out.BindOwned();
  return out;
}

Result<CsrIndex> CsrIndex::FromSections(const uint64_t* keys, size_t num_keys,
                                        const uint32_t* offsets,
                                        const uint32_t* postings,
                                        size_t num_postings,
                                        const uint32_t* slots, size_t num_slots,
                                        size_t record_universe,
                                        std::shared_ptr<const void> owner) {
  // Checksums catch bit rot, but a checksum-valid file written by a
  // buggy (or hostile) producer could still encode structure whose use
  // would be out-of-bounds reads or an unterminated probe loop. Reject
  // anything Find could trip over.
  if (num_keys > 0 && (keys == nullptr || offsets == nullptr)) {
    return Status::Corruption("CSR sections missing keys/offsets arrays");
  }
  for (size_t i = 0; i + 1 < num_keys; ++i) {
    if (keys[i] >= keys[i + 1]) {
      return Status::Corruption("CSR keys not strictly ascending at slot " +
                                std::to_string(i));
    }
  }
  if (offsets != nullptr && offsets[0] != 0) {
    return Status::Corruption("CSR offsets do not start at zero");
  }
  for (size_t i = 0; i < num_keys; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("CSR offsets not monotone at slot " +
                                std::to_string(i));
    }
  }
  uint32_t last_offset = offsets == nullptr ? 0 : offsets[num_keys];
  if (last_offset != num_postings) {
    return Status::Corruption("CSR offsets end at " +
                              std::to_string(last_offset) +
                              ", postings hold " +
                              std::to_string(num_postings) + " entries");
  }
  for (size_t i = 0; i < num_postings; ++i) {
    if (postings[i] >= record_universe) {
      return Status::Corruption(
          "CSR posting id " + std::to_string(postings[i]) +
          " outside record universe " + std::to_string(record_universe));
    }
  }
  if (num_keys == 0) {
    if (num_slots != 0) {
      return Status::Corruption("CSR slot table nonempty for an empty index");
    }
  } else {
    if (slots == nullptr) {
      return Status::Corruption("CSR sections missing the slot table");
    }
    if (num_slots == 0 || (num_slots & (num_slots - 1)) != 0) {
      return Status::Corruption("CSR slot table size " +
                                std::to_string(num_slots) +
                                " is not a power of two");
    }
    size_t occupied = 0;
    for (size_t i = 0; i < num_slots; ++i) {
      if (slots[i] == kEmptySlot) continue;
      if (slots[i] >= num_keys) {
        return Status::Corruption("CSR slot entry " + std::to_string(slots[i]) +
                                  " outside key range");
      }
      ++occupied;
    }
    // A full table would make an absent-key probe loop forever; exactly
    // num_keys occupied entries also rules out duplicate slot targets.
    if (occupied != num_keys || occupied == num_slots) {
      return Status::Corruption(
          "CSR slot table occupancy " + std::to_string(occupied) + " of " +
          std::to_string(num_slots) + " inconsistent with " +
          std::to_string(num_keys) + " keys");
    }
  }

  CsrIndex out;
  out.owner_ = std::move(owner);
  out.keys_ = keys;
  out.offsets_ = offsets;
  out.postings_ = postings;
  out.slots_ = slots;
  out.num_keys_ = num_keys;
  out.num_postings_ = num_postings;
  out.num_slots_ = num_slots;
  out.mask_ = num_slots == 0 ? 0 : num_slots - 1;
  out.record_universe_ = record_universe;
  return out;
}

}  // namespace aujoin
