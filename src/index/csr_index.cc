#include "index/csr_index.h"

#include <algorithm>

namespace aujoin {

CsrIndex CsrIndex::Freeze(const InvertedIndex& staging) {
  CsrIndex out;
  const auto& postings_map = staging.postings();
  out.keys_.reserve(postings_map.size());
  for (const auto& [key, ids] : postings_map) {
    if (!ids.empty()) out.keys_.push_back(key);
  }
  // Ascending key order makes the layout (and every probe's posting
  // scan) deterministic regardless of the staging map's bucket order.
  std::sort(out.keys_.begin(), out.keys_.end());

  out.offsets_.resize(out.keys_.size() + 1, 0);
  uint64_t total = 0;
  for (const auto& [key, ids] : postings_map) total += ids.size();

  out.postings_.reserve(total);
  std::vector<uint32_t> run;
  for (size_t slot = 0; slot < out.keys_.size(); ++slot) {
    out.offsets_[slot] = static_cast<uint32_t>(out.postings_.size());
    run = postings_map.at(out.keys_[slot]);
    // The staging Add dedupes within one record, but the same record may
    // legitimately be Added more than once (or out of id order) by an
    // arbitrary builder; the frozen contract is sorted + distinct.
    std::sort(run.begin(), run.end());
    run.erase(std::unique(run.begin(), run.end()), run.end());
    for (uint32_t id : run) {
      out.record_universe_ =
          std::max(out.record_universe_, static_cast<size_t>(id) + 1);
    }
    out.postings_.insert(out.postings_.end(), run.begin(), run.end());
  }
  out.offsets_[out.keys_.size()] =
      static_cast<uint32_t>(out.postings_.size());

  // Linear-probe table at <= 50% load: next power of two >= 2 * keys.
  size_t table_size = 1;
  while (table_size < out.keys_.size() * 2) table_size <<= 1;
  out.slots_.assign(out.keys_.empty() ? 0 : table_size, kEmptySlot);
  out.mask_ = table_size - 1;
  for (size_t slot = 0; slot < out.keys_.size(); ++slot) {
    size_t h = MixKey(out.keys_[slot]) & out.mask_;
    while (out.slots_[h] != kEmptySlot) h = (h + 1) & out.mask_;
    out.slots_[h] = static_cast<uint32_t>(slot);
  }
  return out;
}

}  // namespace aujoin
