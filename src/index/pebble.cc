#include "index/pebble.h"

#include <cmath>

#include "text/qgram.h"
#include "util/hash.h"

namespace aujoin {
namespace {

/// One implementation behind both Generate overloads; `gram_id` maps a
/// gram text to its pebble id (interning or overlay lookup). Templated
/// so the per-gram call inlines on the collection-build hot path.
template <typename GramId>
RecordPebbles GenerateWith(const Record& record, const Knowledge& knowledge,
                           const MsimOptions& options, GramId&& gram_id) {
  RecordPebbles rp;
  rp.segments = EnumerateSegments(record, knowledge);
  for (uint32_t seg_idx = 0; seg_idx < rp.segments.size(); ++seg_idx) {
    const WellDefinedSegment& seg = rp.segments[seg_idx];
    // Exact-span pebbles witness the equality contribution of
    // MsimOptions::exact_match. When the Jaccard measure is enabled they
    // are redundant for the filter bound — identical texts share all
    // their grams, whose weights sum to exactly 1.0 — and their 1.0
    // weight would inflate the TW/W insertion bounds of Lemmas 1-2,
    // shrinking the feasible tau. So they are emitted only when no gram
    // pebbles exist to witness equality.
    if (options.exact_match && !(options.measures & kMeasureJaccard)) {
      TokenSpan span = record.Span(seg.span.begin, seg.span.end);
      uint64_t h = HashTokenSpan(span.data(), span.size());
      rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kExact, h), 1.0,
                                  seg_idx, kMeasureExactBit});
    }
    if (options.measures & kMeasureJaccard) {
      std::string text = SegmentText(record, seg.span, *knowledge.vocab);
      std::vector<std::string> grams = QGrams(text, options.q);
      if (!grams.empty()) {
        // Per-gram contribution bound: sim <= sum of shared grams' min
        // side weight, with weight 1/|G| for Jaccard/Dice and
        // 1/sqrt(|G|) for Cosine (see GramMeasure).
        double w =
            options.gram_measure == GramMeasure::kCosine
                ? 1.0 / std::sqrt(static_cast<double>(grams.size()))
                : 1.0 / static_cast<double>(grams.size());
        for (const auto& gram : grams) {
          rp.pebbles.push_back(
              Pebble{MakePebbleKey(PebbleType::kGram, gram_id(gram)), w,
                     seg_idx, kMeasureJaccard});
        }
      }
    }
    if ((options.measures & kMeasureSynonym) && seg.HasSynonym()) {
      for (const RuleMatch& m : seg.rule_matches) {
        double w = knowledge.rules->rule(m.rule).closeness;
        rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kSynonym,
                                                  m.rule),
                                    w, seg_idx, kMeasureSynonym});
      }
    }
    if ((options.measures & kMeasureTaxonomy) && seg.HasTaxonomy()) {
      for (NodeId n : seg.taxonomy_nodes) {
        double w = 1.0 / static_cast<double>(knowledge.taxonomy->Depth(n));
        for (NodeId a : knowledge.taxonomy->AncestorsInclusive(n)) {
          rp.pebbles.push_back(Pebble{MakePebbleKey(PebbleType::kTaxonomy, a),
                                      w, seg_idx, kMeasureTaxonomy});
        }
      }
    }
  }
  return rp;
}

}  // namespace

RecordPebbles PebbleGenerator::Generate(const Record& record,
                                        Vocabulary* gram_dict) const {
  return GenerateWith(record, knowledge_, options_,
                      [gram_dict](const std::string& gram) -> uint64_t {
                        return gram_dict->Intern(gram);
                      });
}

RecordPebbles PebbleGenerator::Generate(
    const Record& record, const Vocabulary& gram_dict,
    std::unordered_map<std::string, uint64_t>* overlay) const {
  return GenerateWith(
      record, knowledge_, options_,
      [&gram_dict, overlay](const std::string& gram) -> uint64_t {
        TokenId id = gram_dict.Find(gram);
        if (id != Vocabulary::kNotFound) return id;
        auto [it, inserted] =
            overlay->emplace(gram, gram_dict.size() + overlay->size());
        return it->second;
      });
}

}  // namespace aujoin
