/// \file
/// The shared immutable prepared index — the "index once, probe many"
/// half of the serving architecture. PreparedIndex::Build runs the
/// prepare step (pebble generation + global frequency order) exactly
/// once for a pair of collections; afterwards the object is immutable
/// and every const method is safe to call from any number of threads
/// concurrently. The monolithic join (JoinContext), the partitioned
/// pipeline's block contexts, the online searcher (UnifiedSearcher)
/// and the Engine serving API (Engine::Search / Engine::BatchSearch)
/// all borrow one PreparedIndex instead of owning private copies.

#ifndef AUJOIN_INDEX_PREPARED_INDEX_H_
#define AUJOIN_INDEX_PREPARED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/knowledge.h"
#include "core/measures.h"
#include "core/record.h"
#include "index/csr_index.h"
#include "index/global_order.h"
#include "index/pebble.h"
#include "util/status.h"

namespace aujoin {

class Env;

/// A record with its pebbles sorted by the global order, ready for
/// signature selection.
struct PreparedRecord {
  RecordPebbles pebbles;
  size_t num_tokens = 0;
};

/// Build-once, read-many prepared state for one pair of collections
/// (pass `t == nullptr` for a self-join): both sides' pebbles, the
/// shared gram dictionary and the global frequency order, plus a
/// lazily built full-key inverted index over the T side for online
/// search ("the serving index").
///
/// Thread-safety model (the immutable-SST idea): Build is the only
/// mutating phase and returns a shared_ptr to a const PreparedIndex;
/// all const methods afterwards are concurrency-safe. The lazy serving
/// index is double-checked under an internal mutex, so the first
/// probes may block on its construction but never observe a partial
/// index. Records are borrowed, not copied; they must outlive every
/// holder of the index.
class PreparedIndex {
 public:
  /// Runs the prepare step: pebble generation for both collections and
  /// the global frequency order. The only way to obtain an instance.
  static std::shared_ptr<const PreparedIndex> Build(
      const Knowledge& knowledge, const MsimOptions& msim,
      const std::vector<Record>& s, const std::vector<Record>* t);

  bool self_join() const { return t_records_ == s_records_; }
  const std::vector<Record>& s_records() const { return *s_records_; }
  const std::vector<Record>& t_records() const { return *t_records_; }
  const std::vector<PreparedRecord>& s_prepared() const {
    return s_prepared_;
  }
  const std::vector<PreparedRecord>& t_prepared() const {
    return self_join() ? s_prepared_ : t_prepared_;
  }
  const Knowledge& knowledge() const { return knowledge_; }
  const MsimOptions& msim_options() const { return msim_; }
  const GlobalOrder& global_order() const { return order_; }
  /// The gram dictionary both collections' gram pebbles were interned
  /// into. Read-only after Build; query-time generation overlays it.
  const Vocabulary& gram_dict() const { return gram_dict_; }
  /// Wall seconds of Build (pebbles + global order).
  double prepare_seconds() const { return prepare_seconds_; }

  /// The full-key index over the T side (every distinct pebble key of
  /// every record, not just signature prefixes) — what online search
  /// probes. Staged through a mutable InvertedIndex and frozen into a
  /// CSR layout, so every probe is a sequential posting scan. Built on
  /// first use under a mutex; subsequent calls are wait-free reads of
  /// the completed index. When `built_seconds` is given it receives the
  /// build time if and only if THIS call performed the build (0.0
  /// otherwise), so concurrent first probes charge the cost exactly
  /// once.
  const CsrIndex& ServingIndex(double* built_seconds = nullptr) const;

  /// Wall seconds spent building the serving index; 0.0 until the
  /// first ServingIndex() call forces construction.
  double index_seconds() const;

  /// Generates a query's pebbles against the immutable gram dictionary
  /// and sorts them by the global order — the const, concurrency-safe
  /// twin of the build-time generation. Grams the indexed collections
  /// never produced cannot match anything, so instead of interning
  /// them this assigns per-call overlay ids past the dictionary (two
  /// occurrences of the same unseen gram in one query still collide
  /// with each other, keeping distinct-key counts and weights exact).
  RecordPebbles GenerateQueryPebbles(const Record& query) const;

  /// Serialises the prepared state (both sides' pebble tables, the gram
  /// dictionary, the global order and the frozen serving CSR) into the
  /// versioned snapshot format at `path`, forcing the serving index to
  /// exist first. The written file embeds fingerprints of the borrowed
  /// records and knowledge so Load can refuse a mismatched world. All
  /// I/O goes through `env` (nullptr = Env::Default()).
  /// Implemented in storage/index_snapshot.cc.
  Status Save(const std::string& path, Env* env = nullptr) const;

  /// Rebuilds a prepared index from a snapshot instead of re-running
  /// pebble generation. The caller supplies the same knowledge, options
  /// and record collections the snapshot was built from (records are
  /// borrowed exactly as in Build); fingerprint mismatches return
  /// kFailedPrecondition, damaged files kCorruption — never a partially
  /// loaded index. The CSR serving sections are served zero-copy out of
  /// the snapshot mapping, which the returned index keeps alive.
  /// Implemented in storage/index_snapshot.cc.
  static Result<std::shared_ptr<const PreparedIndex>> Load(
      const Knowledge& knowledge, const MsimOptions& msim,
      const std::vector<Record>& s, const std::vector<Record>* t,
      const std::string& path, Env* env = nullptr);

 private:
  PreparedIndex() = default;

  Knowledge knowledge_;
  MsimOptions msim_;
  Vocabulary gram_dict_;
  GlobalOrder order_;
  std::vector<PreparedRecord> s_prepared_;
  std::vector<PreparedRecord> t_prepared_;
  const std::vector<Record>* s_records_ = nullptr;
  const std::vector<Record>* t_records_ = nullptr;
  double prepare_seconds_ = 0.0;

  // Lazy serving index: `serving_built_` is the release/acquire flag
  // that publishes `serving_index_` + `index_seconds_` once built. The
  // stats field is atomic so a stats poller racing the builder thread
  // reads a whole double, never torn halves (relaxed is enough: the
  // builder stores it before the release store of the flag, and every
  // reader acquires the flag first).
  mutable std::mutex serving_mutex_;
  mutable std::atomic<bool> serving_built_{false};
  mutable CsrIndex serving_index_;
  mutable std::atomic<double> index_seconds_{0.0};
};

}  // namespace aujoin

#endif  // AUJOIN_INDEX_PREPARED_INDEX_H_
