#include "index/global_order.h"

#include <algorithm>

namespace aujoin {

void GlobalOrder::CountRecord(const RecordPebbles& rp) {
  // Count each distinct key once per record (document frequency).
  std::vector<uint64_t> keys;
  keys.reserve(rp.pebbles.size());
  for (const Pebble& p : rp.pebbles) keys.push_back(p.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint64_t k : keys) ++freq_[k];
  finalized_ = false;
}

void GlobalOrder::CountCollection(
    const std::vector<RecordPebbles>& collection) {
  for (const auto& rp : collection) CountRecord(rp);
}

void GlobalOrder::Finalize() {
  std::vector<std::pair<uint64_t, uint64_t>> items;  // (key, freq)
  items.reserve(freq_.size());
  for (const auto& [k, f] : freq_) items.emplace_back(k, f);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  rank_.clear();
  rank_.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rank_[items[i].first] = i + 1;  // rank 0 is reserved for unseen keys
  }
  finalized_ = true;
}

uint64_t GlobalOrder::Rank(uint64_t key) const {
  auto it = rank_.find(key);
  return it == rank_.end() ? 0 : it->second;
}

uint64_t GlobalOrder::Frequency(uint64_t key) const {
  auto it = freq_.find(key);
  return it == freq_.end() ? 0 : it->second;
}

std::vector<GlobalOrder::RankedKey> GlobalOrder::ExportRankOrder() const {
  std::vector<RankedKey> rows(rank_.size());
  for (const auto& [key, rank] : rank_) {
    rows[rank - 1] = RankedKey{key, Frequency(key)};
  }
  return rows;
}

void GlobalOrder::ImportRankOrder(const RankedKey* rows, size_t count) {
  freq_.clear();
  rank_.clear();
  freq_.reserve(count);
  rank_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    freq_[rows[i].key] = rows[i].frequency;
    rank_[rows[i].key] = i + 1;
  }
  finalized_ = true;
}

void GlobalOrder::SortPebbles(RecordPebbles* rp) const {
  std::stable_sort(rp->pebbles.begin(), rp->pebbles.end(),
                   [this](const Pebble& a, const Pebble& b) {
                     uint64_t ra = Rank(a.key), rb = Rank(b.key);
                     if (ra != rb) return ra < rb;
                     return a.key < b.key;
                   });
}

}  // namespace aujoin
