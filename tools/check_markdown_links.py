#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[ref]: target`, and fails (exit 1) listing
each relative target that does not exist on disk. External links
(http/https/mailto) and pure in-page anchors (#...) are skipped —
this is an offline structural check, not a crawler.

Usage: python3 tools/check_markdown_links.py [root_dir]
"""

import os
import re
import sys

# Inline [text](target) — target ends at the first unescaped ')' or
# space (markdown titles: [t](file "title")). Reference defs [r]: target.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Fenced code blocks must not contribute false links.
FENCE = re.compile(r"```.*?```", re.DOTALL)


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", ".claude"}
            and not d.startswith("build-")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    with open(path, encoding="utf-8") as handle:
        text = FENCE.sub("", handle.read())
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    broken = []
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            candidate = os.path.join(root, resolved.lstrip("/"))
        else:
            candidate = os.path.join(os.path.dirname(path), resolved)
        if not os.path.exists(candidate):
            broken.append(target)
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = 0
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        for target in check_file(path, root):
            print(f"BROKEN {os.path.relpath(path, root)}: {target}")
            failures += 1
    print(f"checked {checked} markdown files: "
          f"{failures} broken relative link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
