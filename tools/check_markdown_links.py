#!/usr/bin/env python3
"""Checks that links in the repo's markdown files resolve.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[ref]: target`, and fails (exit 1) listing
each target that does not resolve:

- relative file targets must exist on disk;
- `#anchor` fragments — both in-page (`#section`) and cross-file
  (`other.md#section`) — must name a heading in the target document,
  using GitHub's slugification (lowercase, punctuation stripped,
  spaces to hyphens, duplicates suffixed -1, -2, ...).

External links (http/https/mailto) are skipped — this is an offline
structural check, not a crawler.

Usage: python3 tools/check_markdown_links.py [root_dir]
"""

import os
import re
import sys

# Inline [text](target) — target ends at the first unescaped ')' or
# space (markdown titles: [t](file "title")). Reference defs [r]: target.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Fenced code blocks must not contribute false links or headings.
FENCE = re.compile(r"```.*?```", re.DOTALL)

HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
# Inline markup GitHub strips before slugifying heading text.
INLINE_CODE = re.compile(r"`([^`]*)`")
MD_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def github_slug(text):
    """GitHub's heading-to-anchor slug (ASCII approximation)."""
    text = INLINE_CODE.sub(r"\1", text)
    text = MD_LINK_TEXT.sub(r"\1", text)
    text = text.strip().lower()
    # Keep word characters, spaces and hyphens; drop the rest.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(markdown_text):
    """The set of valid anchors for one document, with -N dedup."""
    anchors = set()
    counts = {}
    for match in HEADING.finditer(FENCE.sub("", markdown_text)):
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", ".claude"}
            and not d.startswith("build-")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root, anchor_cache):
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    text = FENCE.sub("", raw)
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    broken = []

    def anchors_of(md_path):
        md_path = os.path.normpath(md_path)
        if md_path not in anchor_cache:
            with open(md_path, encoding="utf-8") as target_handle:
                anchor_cache[md_path] = heading_anchors(target_handle.read())
        return anchor_cache[md_path]

    for target in targets:
        if target.startswith(SKIP_SCHEMES):
            continue
        resolved, _, fragment = target.partition("#")
        if resolved:
            if resolved.startswith("/"):
                candidate = os.path.join(root, resolved.lstrip("/"))
            else:
                candidate = os.path.join(os.path.dirname(path), resolved)
            if not os.path.exists(candidate):
                broken.append(target)
                continue
        else:
            candidate = path  # pure in-page anchor
        if fragment and candidate.endswith(".md"):
            if fragment.lower() not in anchors_of(candidate):
                broken.append(target)
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = 0
    checked = 0
    anchor_cache = {}
    for path in sorted(markdown_files(root)):
        checked += 1
        for target in check_file(path, root, anchor_cache):
            print(f"BROKEN {os.path.relpath(path, root)}: {target}")
            failures += 1
    print(f"checked {checked} markdown files: "
          f"{failures} broken link(s)/anchor(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
