#!/usr/bin/env python3
"""Guards BENCH_<name>.json result AND candidate counts against
checked-in expectations.

The smoke grid runs on a seeded generated corpus, so every
(algorithm, theta, tau) cell's match count is deterministic — any drift
is a real behaviour change (better recall, a broken filter, a changed
default) and must be acknowledged by regenerating the expectations
file, not silently absorbed. Result counts must also agree across the
threads/partitioning dimensions (the parity contract), so result cells
are keyed without them: every run of a key must report the same count.

Candidate counts (`candidates` — V_tau, what survives the signature
filter and gets verified) are guarded too, so accidental filter
weakening — e.g. the duplicate-posting bug class, where repeated
signature keys double-count overlaps past the tau threshold — fails
the smoke job even when verification still discards the extra pairs
and `results` stays unchanged. Candidate cells additionally key on the
partition limit: partition blocks select signatures against
slice-local global orders, so partitioned candidate counts
legitimately differ from monolithic ones (results may not). Across
thread counts, candidates must agree exactly.

Index provenance (`index_source`) is guarded the same way when the
expectations file carries an "index_source" section: a run expected to
serve from a mounted snapshot ("snapshot") must not silently fall back
to rebuilding ("rebuilt") — the smoke job uses this to pin the CLI's
--snapshot path actually serving from the .aujsnap file.

Expectations file schema (sections optional):

  {"results": {"<alg> theta=<t> tau=<u>": N, ...},
   "candidates": {"<alg> theta=<t> tau=<u> partition=<p>": N, ...},
   "index_source": {"<alg> theta=<t> tau=<u>": "snapshot"|"rebuilt", ...}}

Usage:
  python3 tools/check_bench_counts.py BENCH_smoke.json \
      bench/expected/smoke_counts.json [--update]

--update rewrites the expectations file from the report (use after an
intentional change, and say why in the commit).
"""

import json
import sys


def result_key(run):
    return "{} theta={:g} tau={:g}".format(
        run["algorithm"], run["theta"], run["tau"])


def candidate_key(run):
    return "{} partition={}".format(
        result_key(run), run.get("max_partition_records", 0))


def collect_counts(report):
    """(results, candidates, index_sources) cell maps; fails on failed
    or inconsistent runs."""
    results = {}
    candidates = {}
    sources = {}
    errors = []
    for run in report.get("runs", []):
        key = result_key(run)
        if not run.get("ok", False):
            errors.append(f"FAILED RUN {key}: {run.get('error', '?')}")
            continue
        count = run["results"]
        if key in results and results[key] != count:
            errors.append(
                f"INCONSISTENT {key}: {results[key]} vs {count} across "
                f"threads/partitioning (parity violation)")
        results[key] = count
        ckey = candidate_key(run)
        ccount = run["candidates"]
        if ckey in candidates and candidates[ckey] != ccount:
            errors.append(
                f"INCONSISTENT candidates {ckey}: {candidates[ckey]} vs "
                f"{ccount} across threads (parity violation)")
        candidates[ckey] = ccount
        source = run.get("index_source", "")
        if source:
            if key in sources and sources[key] != source:
                errors.append(
                    f"INCONSISTENT index_source {key}: {sources[key]} vs "
                    f"{source}")
            sources[key] = source
    return results, candidates, sources, errors


def compare(section, counts, expected, report_path, expected_path, errors):
    for key, want in sorted(expected.items()):
        if key not in counts:
            print(f"MISSING {section} {key}: expected {want}, cell not in "
                  f"{report_path} (grid shrank?)")
            errors.append(key)
        elif counts[key] != want:
            print(f"DRIFT {section} {key}: expected {want}, got "
                  f"{counts[key]}")
            errors.append(key)
    for key in sorted(set(counts) - set(expected)):
        print(f"NEW {section} {key}: {counts[key]} not in {expected_path} "
              f"(run with --update to record)")
        errors.append(key)


def main():
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__)
        return 2
    report_path, expected_path = args
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)

    results, candidates, sources, errors = collect_counts(report)
    for message in errors:
        print(message)

    if update:
        expected = {"results": results, "candidates": candidates}
        if sources:
            expected["index_source"] = sources
        with open(expected_path, "w", encoding="utf-8") as handle:
            json.dump(expected, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {expected_path} ({len(results)} result cells, "
              f"{len(candidates)} candidate cells, "
              f"{len(sources)} index-source cells)")
        return 1 if errors else 0

    with open(expected_path, encoding="utf-8") as handle:
        expected = json.load(handle)

    compare("results", results, expected.get("results", {}), report_path,
            expected_path, errors)
    compare("candidates", candidates, expected.get("candidates", {}),
            report_path, expected_path, errors)
    # index_source cells are opt-in: only guard keys the expectations
    # name (a rebuilt-serving report legitimately has none).
    for key, want in sorted(expected.get("index_source", {}).items()):
        got = sources.get(key, "")
        if got != want:
            print(f"DRIFT index_source {key}: expected {want!r}, got "
                  f"{got!r} (snapshot serving silently fell back?)")
            errors.append(key)

    print(f"checked {len(expected.get('results', {}))} result + "
          f"{len(expected.get('candidates', {}))} candidate + "
          f"{len(expected.get('index_source', {}))} index-source cells "
          f"against {len(results)} + {len(candidates)} + {len(sources)} "
          f"report cells: {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
