#!/usr/bin/env python3
"""Guards BENCH_<name>.json result AND candidate counts against
checked-in expectations.

The smoke grid runs on a seeded generated corpus, so every
(algorithm, theta, tau) cell's match count is deterministic — any drift
is a real behaviour change (better recall, a broken filter, a changed
default) and must be acknowledged by regenerating the expectations
file, not silently absorbed. Result counts must also agree across the
threads/partitioning dimensions (the parity contract), so result cells
are keyed without them: every run of a key must report the same count.

Candidate counts (`candidates` — V_tau, what survives the signature
filter and gets verified) are guarded too, so accidental filter
weakening — e.g. the duplicate-posting bug class, where repeated
signature keys double-count overlaps past the tau threshold — fails
the smoke job even when verification still discards the extra pairs
and `results` stays unchanged. Candidate cells additionally key on the
partition limit: partition blocks select signatures against
slice-local global orders, so partitioned candidate counts
legitimately differ from monolithic ones (results may not). Across
thread counts, candidates must agree exactly.

Index provenance (`index_source`) is guarded the same way when the
expectations file carries an "index_source" section: a run expected to
serve from a mounted snapshot ("snapshot") must not silently fall back
to rebuilding ("rebuilt") — the smoke job uses this to pin the CLI's
--snapshot path actually serving from the .aujsnap file.

Sharded runs (stats.shards > 0) key with a " shards=<n>" suffix, so an
expectations file written from a --shards run pins both the shard
count (a run that silently fell back to monolithic loses the suffix
and shows up as MISSING + NEW) and the scatter-gather counts.
Monolithic runs keep the historical suffix-free keys — existing
expectations files are untouched.

Expectations file schema (sections optional):

  {"results": {"<alg> theta=<t> tau=<u>[ shards=<n>]": N, ...},
   "candidates": {"<alg> theta=<t> tau=<u>[ shards=<n>] partition=<p>": N,
                  ...},
   "index_source": {"<alg> theta=<t> tau=<u>": "snapshot"|"rebuilt", ...}}

On any mismatch the script ends with a key-level diff: every guarded
key in a  expected | actual  table, tagged ok/DRIFT/MISSING/NEW, so a
CI failure shows the whole picture rather than the first bad cell.

Usage:
  python3 tools/check_bench_counts.py BENCH_smoke.json \
      bench/expected/smoke_counts.json [--update]

--update rewrites the expectations file from the report (use after an
intentional change, and say why in the commit).
"""

import json
import sys


def result_key(run):
    key = "{} theta={:g} tau={:g}".format(
        run["algorithm"], run["theta"], run["tau"])
    # Sharded cells get their own keys: the scatter-gather parity
    # contract says their counts EQUAL the monolithic ones, but keying
    # them separately means a --shards run that silently fell back to
    # monolithic (shards == 0) fails loudly instead of matching.
    shards = run.get("shards", 0)
    if shards > 0:
        key += " shards={}".format(shards)
    return key


def candidate_key(run):
    return "{} partition={}".format(
        result_key(run), run.get("max_partition_records", 0))


def collect_counts(report):
    """(results, candidates, index_sources) cell maps; fails on failed
    or inconsistent runs."""
    results = {}
    candidates = {}
    sources = {}
    errors = []
    for run in report.get("runs", []):
        key = result_key(run)
        if not run.get("ok", False):
            errors.append(f"FAILED RUN {key}: {run.get('error', '?')}")
            continue
        count = run["results"]
        if key in results and results[key] != count:
            errors.append(
                f"INCONSISTENT {key}: {results[key]} vs {count} across "
                f"threads/partitioning (parity violation)")
        results[key] = count
        ckey = candidate_key(run)
        ccount = run["candidates"]
        if ckey in candidates and candidates[ckey] != ccount:
            errors.append(
                f"INCONSISTENT candidates {ckey}: {candidates[ckey]} vs "
                f"{ccount} across threads (parity violation)")
        candidates[ckey] = ccount
        source = run.get("index_source", "")
        if source:
            if key in sources and sources[key] != source:
                errors.append(
                    f"INCONSISTENT index_source {key}: {sources[key]} vs "
                    f"{source}")
            sources[key] = source
    return results, candidates, sources, errors


def compare(section, counts, expected, report_path, expected_path, errors,
            diff_rows):
    for key, want in sorted(expected.items()):
        if key not in counts:
            print(f"MISSING {section} {key}: expected {want}, cell not in "
                  f"{report_path} (grid shrank?)")
            errors.append(key)
            diff_rows.append((section, key, want, None, "MISSING"))
        elif counts[key] != want:
            print(f"DRIFT {section} {key}: expected {want}, got "
                  f"{counts[key]}")
            errors.append(key)
            diff_rows.append((section, key, want, counts[key], "DRIFT"))
        else:
            diff_rows.append((section, key, want, counts[key], "ok"))
    for key in sorted(set(counts) - set(expected)):
        print(f"NEW {section} {key}: {counts[key]} not in {expected_path} "
              f"(run with --update to record)")
        errors.append(key)
        diff_rows.append((section, key, None, counts[key], "NEW"))


def print_diff(diff_rows):
    """Key-level expected-vs-actual table; the one artifact to read
    when CI fails."""
    width = max(len(f"{section} {key}") for section, key, _, _, _ in
                diff_rows)
    print("--- key-level diff (expected | actual) ---")
    for section, key, want, got, status in diff_rows:
        cell = f"{section} {key}".ljust(width)
        want_s = "-" if want is None else str(want)
        got_s = "-" if got is None else str(got)
        print(f"  {cell}  {want_s:>10} | {got_s:<10} {status}")


def main():
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__)
        return 2
    report_path, expected_path = args
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)

    results, candidates, sources, errors = collect_counts(report)
    for message in errors:
        print(message)

    if update:
        expected = {"results": results, "candidates": candidates}
        if sources:
            expected["index_source"] = sources
        with open(expected_path, "w", encoding="utf-8") as handle:
            json.dump(expected, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {expected_path} ({len(results)} result cells, "
              f"{len(candidates)} candidate cells, "
              f"{len(sources)} index-source cells)")
        return 1 if errors else 0

    with open(expected_path, encoding="utf-8") as handle:
        expected = json.load(handle)

    diff_rows = []
    compare("results", results, expected.get("results", {}), report_path,
            expected_path, errors, diff_rows)
    compare("candidates", candidates, expected.get("candidates", {}),
            report_path, expected_path, errors, diff_rows)
    # index_source cells are opt-in: only guard keys the expectations
    # name (a rebuilt-serving report legitimately has none).
    for key, want in sorted(expected.get("index_source", {}).items()):
        got = sources.get(key, "")
        if got != want:
            print(f"DRIFT index_source {key}: expected {want!r}, got "
                  f"{got!r} (snapshot serving silently fell back?)")
            errors.append(key)
        diff_rows.append(("index_source", key, want, got or None,
                          "ok" if got == want else "DRIFT"))

    if errors and diff_rows:
        print_diff(diff_rows)
    print(f"checked {len(expected.get('results', {}))} result + "
          f"{len(expected.get('candidates', {}))} candidate + "
          f"{len(expected.get('index_source', {}))} index-source cells "
          f"against {len(results)} + {len(candidates)} + {len(sources)} "
          f"report cells: {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
