#!/usr/bin/env python3
"""Guards BENCH_<name>.json result counts against checked-in expectations.

The smoke grid runs on a seeded generated corpus, so every
(algorithm, theta, tau) cell's match count is deterministic — any drift
is a real behaviour change (better recall, a broken filter, a changed
default) and must be acknowledged by regenerating the expectations
file, not silently absorbed. Counts must also agree across the
threads/partitioning dimensions (the parity contract), so cells are
keyed without them: every run of a key must report the same count.

Usage:
  python3 tools/check_bench_counts.py BENCH_smoke.json \
      bench/expected/smoke_counts.json [--update]

--update rewrites the expectations file from the report (use after an
intentional change, and say why in the commit).
"""

import json
import sys


def cell_key(run):
    return "{} theta={:g} tau={:g}".format(
        run["algorithm"], run["theta"], run["tau"])


def collect_counts(report):
    """Map of cell key -> result count; fails on failed or inconsistent
    runs."""
    counts = {}
    errors = []
    for run in report.get("runs", []):
        key = cell_key(run)
        if not run.get("ok", False):
            errors.append(f"FAILED RUN {key}: {run.get('error', '?')}")
            continue
        results = run["results"]
        if key in counts and counts[key] != results:
            errors.append(
                f"INCONSISTENT {key}: {counts[key]} vs {results} across "
                f"threads/partitioning (parity violation)")
        counts[key] = results
    return counts, errors


def main():
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__)
        return 2
    report_path, expected_path = args
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)

    counts, errors = collect_counts(report)
    for message in errors:
        print(message)

    if update:
        with open(expected_path, "w", encoding="utf-8") as handle:
            json.dump(counts, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {expected_path} ({len(counts)} cells)")
        return 1 if errors else 0

    with open(expected_path, encoding="utf-8") as handle:
        expected = json.load(handle)

    for key, want in sorted(expected.items()):
        if key not in counts:
            print(f"MISSING {key}: expected {want} results, cell not in "
                  f"{report_path} (grid shrank?)")
            errors.append(key)
        elif counts[key] != want:
            print(f"DRIFT {key}: expected {want} results, got "
                  f"{counts[key]}")
            errors.append(key)
    for key in sorted(set(counts) - set(expected)):
        print(f"NEW {key}: {counts[key]} results not in {expected_path} "
              f"(run with --update to record)")
        errors.append(key)

    print(f"checked {len(expected)} expected cells against "
          f"{len(counts)} report cells: {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
