// aujoin — the command-line driver over the Engine facade.
//
// Turns the library into an end-to-end system: ingest a real dataset
// (CSV/TSV/JSONL/plain lines) with optional synonym-rule and taxonomy
// files, then join, auto-tune, or summarise it — one command, no code.
//
//   aujoin join  --input=data/poi.csv --columns=name,city --header
//                --rules=data/poi_rules.tsv --taxonomy=data/poi_taxonomy.tsv
//                --theta=0.7 --tau=2 [--algorithm=unified] [--out=-]
//                [--stats_out=BENCH_cli.json] [--require_nonzero]
//   aujoin query --input=... [--queries=FILE] [--topk=10] [--theta=0.7]
//                [--threads=0] [--snapshot=FILE] [--wal=FILE]
//                [--stats_out=BENCH_query.json]
//   aujoin append --input=... --wal=append.wal [--records=FILE]
//                [--snapshot=ckpt.aujsnap] [--checkpoint]
//   aujoin snapshot --input=... --snapshot=index.aujsnap
//   aujoin tune  --input=... [--theta=0.8] [--sample=0.05]
//   aujoin stats --input=... [--rules=...] [--taxonomy=...]
//
// `join` streams matched pairs to stdout (or --out=FILE) through a
// MatchSink as verification batches complete; --stats_out writes the
// same BENCH_<name>.json schema as bench/harness (see
// docs/bench-schema.md). `query` serves online similarity search over
// the ingested collection from a shared immutable PreparedIndex —
// queries come from a file or stdin, one per line, fanned across the
// engine's thread pool. `append` grows the ingested collection with
// durable, WAL-logged appends (docs/wal-format.md); a later `query
// --wal=FILE` (or another `append`) replays the log — and mounts the
// checkpoint written by `append --checkpoint` — so acknowledged
// appends survive crashes. `snapshot` persists the prepared index as a
// versioned on-disk snapshot (docs/snapshot-format.md) that later
// query/join invocations mount with --snapshot=FILE, skipping
// preparation entirely. `tune` runs Algorithm 7 and reports the
// suggested overlap constraint tau as JSON. `stats` ingests and prints
// the dataset manifest. Full flag reference: docs/cli.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "dataset/dataset.h"
#include "harness.h"
#include "shard/sharded_index.h"
#include "storage/generational_index.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/json.h"
#include "util/timer.h"

namespace aujoin {
namespace {

constexpr const char* kUsage = R"(usage: aujoin <command> [--flags]

commands:
  join      ingest a dataset and run a similarity self- or R x S join
  query     ingest a dataset, index it once, answer similarity queries
  append    grow the ingested collection with durable WAL-logged appends
  snapshot  ingest a dataset, prepare its index, persist it to disk
  tune      run Algorithm 7 to suggest the overlap constraint tau
  stats     ingest a dataset and print its manifest as JSON

ingestion flags (all commands):
  --input=FILE           records file (required)
  --input2=FILE          second collection for an R x S join (join only)
  --format=auto          auto | lines | csv | tsv | jsonl
  --columns=a,b          record text columns (header names / JSONL keys)
  --column_indices=0,2   zero-based positional columns (CSV/TSV)
  --header               first CSV/TSV row is a header
  --skip_malformed       drop malformed rows instead of failing
  --max_records=N        ingest at most N records (0 = all)
  --keep_case            do not lowercase tokens
  --split_punctuation    treat ASCII punctuation as token delimiters
  --rules=FILE           synonym rules TSV (lhs <TAB> rhs [<TAB> closeness])
  --taxonomy=FILE        taxonomy TSV (node_id <TAB> parent_id <TAB> name)

engine flags (join, query, tune):
  --measures=TJS         measure combination (J, TS, TJS, ...)
  --q=3                  gram length for the J measure
  --threads=1            worker threads (0 = all hardware threads)
  --partition=0          partitioned pipeline record bound (0 = monolithic)
  --shards=0             first-class shards (0 = monolithic): joins run
                         shard-pair blocks, queries scatter-gather across
                         per-shard indexes; results identical either way
  --shard_by=range       shard placement: range | hash
  --spill_budget_bytes=0 out-of-core joins: spill sorted result runs to
                         temp files past this in-memory bound (0 = never)
  --spill_dir=DIR        directory for spill temp files (default ".")

join flags:
  --algorithm=unified    unified | kjoin | pkduck | adaptjoin | combination
  --snapshot=FILE        serve from a persisted index snapshot (unified,
                         monolithic, self-join only; hard error on mismatch)
  --theta=0.8            similarity threshold
  --tau=2                overlap constraint (0 = pick with Algorithm 7)
  --sample=0.05          tuner sampling probability when --tau=0
  --out=-                pairs output file (- = stdout)
  --output_format=tsv    tsv | csv
  --ids_only             emit id pairs without record texts
  --stats_out=FILE       write run stats in the BENCH_<name>.json schema
  --name=cli             report name for --stats_out
  --require_nonzero      exit 1 when the join finds zero matches

query flags:
  --queries=FILE         query texts, one per line (- or omitted = stdin)
  --snapshot=FILE        serve from a persisted index snapshot instead of
                         rebuilding (hard error when it does not match)
  --wal=FILE             replay (and keep serving) the append WAL: appended
                         records survive crashes and answer queries; with
                         --snapshot the snapshot is the append checkpoint
  --theta=0.8            similarity threshold
  --tau=1                overlap constraint on the query signature
  --topk=0               keep only the k best matches per query (0 = all)
  --out=-                matches output file (- = stdout)
  --output_format=tsv    tsv | csv (query_index, match_id, similarity[, texts])
  --ids_only             drop the query/match texts from the output
  --stats_out=FILE       write serving stats in the BENCH_<name>.json schema
  --name=query           report name for --stats_out
  --require_nonzero      exit 1 when no query finds any match

append flags:
  --wal=FILE             write-ahead log path (required); replayed first,
                         then every append is logged + fsynced before it
                         is acknowledged
  --records=FILE         texts to append, one per line (- or omitted = stdin)
  --snapshot=FILE        checkpoint path: mounted on start when it exists,
                         written by --checkpoint
  --checkpoint           after appending, refreeze + write the checkpoint
                         and reset the WAL (requires --snapshot=FILE)
  --wal_checkpoint_bytes=0  auto-checkpoint whenever the WAL grows past
                         this many bytes (requires --snapshot=FILE;
                         0 = manual --checkpoint only)
  --ready_file=FILE      after the batch is durable, write the appended
                         count here (crash-injection harnesses wait for it)
  --linger_seconds=0     sleep this long before exiting (gives kill -9
                         harnesses a stable window)
  --stats_out=FILE       write append/recovery stats in the BENCH schema
  --name=append          report name for --stats_out

snapshot flags:
  --snapshot=FILE        output snapshot path (required)
  --stats_out=FILE       write build/save stats in the BENCH schema
  --name=snapshot        report name for --stats_out

tune flags:
  --theta=0.8            similarity threshold to tune for
  --tau_universe=1,2,..  candidate taus (default 1,2,3,4,5,6,8)
  --sample=0.01          Bernoulli sampling probability per side
)";

/// Builds the DatasetSpec shared by every subcommand from flags.
/// Returns false (with a message on stderr) on unparsable flag values.
bool SpecFromFlags(const Flags& flags, DatasetSpec* spec) {
  spec->records_path = flags.GetString("input", "");
  if (spec->records_path.empty()) {
    std::fprintf(stderr, "error: --input is required\n");
    return false;
  }
  spec->records2_path = flags.GetString("input2", "");
  Result<DatasetFormat> format =
      ParseDatasetFormat(flags.GetString("format", "auto"));
  if (!format.ok()) {
    std::fprintf(stderr, "error: %s\n", format.status().ToString().c_str());
    return false;
  }
  spec->reader.format = *format;
  std::string columns = flags.GetString("columns", "");
  if (!columns.empty()) {
    spec->reader.columns = SplitString(columns, ',');
  }
  std::string indices = flags.GetString("column_indices", "");
  if (!indices.empty()) {
    for (const std::string& field : SplitString(indices, ',')) {
      spec->reader.column_indices.push_back(
          static_cast<size_t>(std::atoll(field.c_str())));
    }
  }
  spec->reader.has_header = flags.GetBool("header", false);
  spec->reader.on_malformed = flags.GetBool("skip_malformed", false)
                                  ? MalformedRowPolicy::kSkip
                                  : MalformedRowPolicy::kFail;
  spec->reader.max_records =
      static_cast<size_t>(flags.GetInt("max_records", 0));
  spec->tokenizer.lowercase = !flags.GetBool("keep_case", false);
  spec->tokenizer.split_punctuation =
      flags.GetBool("split_punctuation", false);
  spec->rules_path = flags.GetString("rules", "");
  spec->taxonomy_path = flags.GetString("taxonomy", "");
  return true;
}

Engine EngineFromFlags(const Flags& flags, const Dataset& dataset) {
  ShardBy shard_by = ShardBy::kRange;
  std::string shard_by_name = flags.GetString("shard_by", "range");
  if (!ParseShardBy(shard_by_name, &shard_by)) {
    std::fprintf(stderr, "error: unknown --shard_by=%s (range | hash)\n",
                 shard_by_name.c_str());
    std::exit(1);
  }
  return EngineBuilder()
      .SetKnowledge(dataset.knowledge())
      .SetMeasures(flags.GetString("measures", "TJS"))
      .SetQ(static_cast<int>(flags.GetInt("q", 3)))
      .SetThreads(static_cast<int>(flags.GetInt("threads", 1)))
      .SetMaxPartitionRecords(
          static_cast<size_t>(flags.GetInt("partition", 0)))
      .SetNumShards(static_cast<size_t>(flags.GetInt("shards", 0)))
      .SetShardBy(shard_by)
      .SetSpillBudgetBytes(
          static_cast<size_t>(flags.GetInt("spill_budget_bytes", 0)))
      .SetSpillDir(flags.GetString("spill_dir", ""))
      .SetWalCheckpointBytes(
          static_cast<size_t>(flags.GetInt("wal_checkpoint_bytes", 0)))
      .Build();
}

/// CSV-quotes a text field when it needs it.
std::string CsvField(const std::string& text) {
  if (text.find_first_of(",\"\r\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted += '"';
  return quoted;
}

/// Stdout-or-file row output with TSV/CSV formatting — the plumbing
/// shared by the join and query subcommands (--out, --output_format,
/// --ids_only).
struct OutputTarget {
  std::ofstream file;
  std::ostream* out = nullptr;
  std::string path;
  bool csv = false;
  bool ids_only = false;
  char sep = '\t';

  /// Applies the CSV quoting policy to a text field.
  std::string Text(const std::string& text) const {
    return csv ? CsvField(text) : text;
  }

  /// Flushes and reports a write failure; true on success.
  bool Finish() {
    out->flush();
    if (!*out) {
      std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
      return false;
    }
    return true;
  }
};

bool OpenOutput(const Flags& flags, OutputTarget* target) {
  target->path = flags.GetString("out", "-");
  if (target->path != "-") {
    target->file.open(target->path);
    if (!target->file) {
      std::fprintf(stderr, "error: cannot open %s\n", target->path.c_str());
      return false;
    }
  }
  target->out = target->path == "-" ? &std::cout : &target->file;
  target->csv = flags.GetString("output_format", "tsv") == "csv";
  target->ids_only = flags.GetBool("ids_only", false);
  target->sep = target->csv ? ',' : '\t';
  return true;
}

/// Scaffolds the single-run BENCH_<name>.json report both subcommands
/// write for --stats_out: everything shared between join and query
/// runs; the caller fills the run's algorithm/variant/stats/timings.
BenchReport MakeCliReport(const Flags& flags, const Dataset& dataset,
                          const char* default_name, BenchRun* run) {
  BenchReport report;
  report.name = flags.GetString("name", default_name);
  report.profile = "dataset";
  report.num_records = dataset.records.size();
  report.dataset_manifest_json = dataset.manifest.ToJson();
  run->measures = flags.GetString("measures", "TJS");
  run->threads = static_cast<int>(flags.GetInt("threads", 1));
  run->num_records = dataset.records.size();
  run->ok = true;
  run->peak_rss_bytes = CurrentPeakRssBytes();
  return report;
}

/// Writes the report; false (with a message) on I/O failure.
bool WriteCliReport(const BenchReport& report, const std::string& path) {
  if (!report.WriteJsonFile(path)) {
    std::fprintf(stderr, "error: failed to write %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

/// Mounts --snapshot into the engine when the flag is set. Failure is a
/// hard error, not a silent rebuild: a CI run that claims snapshot
/// serving must actually serve from the snapshot.
bool MaybeLoadSnapshot(const Flags& flags, Engine* engine) {
  std::string path = flags.GetString("snapshot", "");
  if (path.empty()) return true;
  Status status = engine->LoadIndex(path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: cannot mount snapshot %s: %s\n",
                 path.c_str(), status.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "snapshot: mounted %s in %.3fs\n", path.c_str(),
               engine->snapshot_load_seconds());
  return true;
}

int RunSnapshot(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  if (!spec.records2_path.empty()) {
    std::fprintf(stderr,
                 "error: snapshot persists a single collection; --input2 is "
                 "a join-only flag\n");
    return 1;
  }
  std::string path = flags.GetString("snapshot", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: --snapshot=FILE is required\n");
    return 1;
  }
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records);
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 0));
  double prepare_seconds = 0.0;
  if (shards == 0) {
    // Force the monolithic index now so its build time is reported
    // separately from the write; sharded saves build per shard inside
    // SaveIndex itself.
    Result<std::shared_ptr<const PreparedIndex>> index =
        engine.ServingIndex();
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    prepare_seconds = (*index)->prepare_seconds();
  }
  WallTimer save_timer;
  Status status = engine.SaveIndex(path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  double save_seconds = save_timer.Seconds();
  uint64_t snapshot_bytes = 0;
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe) snapshot_bytes = static_cast<uint64_t>(probe.tellg());
  }
  if (shards > 0) {
    // The manifest is tiny; the payload lives in the per-shard files.
    for (size_t s = 0; s < shards; ++s) {
      std::ifstream probe(ShardedIndex::ShardFileName(path, s),
                          std::ios::binary | std::ios::ate);
      if (probe) snapshot_bytes += static_cast<uint64_t>(probe.tellg());
    }
  }
  std::fprintf(stderr,
               "snapshot: %zu records -> %s (%llu bytes, %zu shard files) "
               "prepare=%.3fs write=%.3fs\n",
               dataset->records.size(), path.c_str(),
               static_cast<unsigned long long>(snapshot_bytes), shards,
               prepare_seconds, save_seconds);

  std::string stats_out = flags.GetString("stats_out", "");
  if (!stats_out.empty()) {
    BenchRun run;
    BenchReport report = MakeCliReport(flags, *dataset, "snapshot", &run);
    run.algorithm = "snapshot";
    run.variant = path;
    run.stats.prepare_seconds = prepare_seconds;
    run.stats.shards = shards;
    run.total_seconds = run.stats.prepare_seconds + save_seconds;
    run.wall_seconds = run.total_seconds;
    run.has_snapshot = true;
    run.snapshot_write_seconds = save_seconds;
    run.snapshot_bytes = snapshot_bytes;
    report.runs.push_back(run);
    if (!WriteCliReport(report, stats_out)) return 1;
  }
  return 0;
}

int RunStats(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", dataset->manifest.ToJson().c_str());
  return 0;
}

int RunJoin(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records,
                    dataset->records2.empty() ? nullptr : &dataset->records2);
  const std::vector<Record>& t_side =
      dataset->records2.empty() ? dataset->records : dataset->records2;

  std::string algorithm = flags.GetString("algorithm", "unified");
  EngineJoinOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  int tau = static_cast<int>(flags.GetInt("tau", 2));
  options.tau = tau > 0 ? tau : 1;

  if (!flags.GetString("snapshot", "").empty()) {
    // Only the monolithic unified join rides the shared PreparedIndex
    // the snapshot restores; the partitioned pipeline and the baseline
    // algorithms prepare their own state and would silently ignore it.
    if (algorithm != "unified" || flags.GetInt("partition", 0) != 0 ||
        flags.GetInt("shards", 0) != 0 || !dataset->records2.empty()) {
      std::fprintf(stderr,
                   "error: --snapshot requires --algorithm=unified, no "
                   "--partition, no --shards and no --input2 (the snapshot "
                   "restores the shared monolithic self-join index; sharded "
                   "snapshots serve `query`)\n");
      return 1;
    }
    if (!MaybeLoadSnapshot(flags, &engine)) return 1;
  }

  // Output plumbing: streamed through a CallbackSink as verification
  // batches complete.
  OutputTarget target;
  if (!OpenOutput(flags, &target)) return 1;

  uint64_t written = 0;
  CallbackSink sink([&](uint32_t a, uint32_t b) {
    std::ostream& out = *target.out;
    out << a << target.sep << b;
    if (!target.ids_only) {
      out << target.sep << target.Text(dataset->records[a].text)
          << target.sep << target.Text(t_side[b].text);
    }
    out << '\n';
    ++written;
    return true;
  });

  JoinStats stats;
  WallTimer wall;
  if (tau <= 0) {
    if (algorithm != "unified") {
      std::fprintf(stderr,
                   "error: --tau=0 (auto-tune) requires --algorithm=unified\n");
      return 1;
    }
    TunerOptions tuner;
    tuner.theta = options.theta;
    tuner.method = options.method;
    tuner.sample_prob_s = tuner.sample_prob_t =
        flags.GetDouble("sample", 0.05);
    TauRecommendation rec;
    Result<JoinResult> result =
        engine.JoinWithSuggestedTau(options, tuner, &rec);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "algorithm 7 suggested tau=%d (%.3fs)\n",
                 rec.best_tau, rec.seconds);
    options.tau = rec.best_tau;
    for (const auto& [a, b] : result->pairs) sink.OnMatch(a, b);
    stats = result->stats;
  } else {
    Result<JoinStats> run = engine.Join(algorithm, options, &sink);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    stats = *run;
  }
  double wall_seconds = wall.Seconds();

  if (!target.Finish()) return 1;
  std::fprintf(stderr,
               "join[%s]: %llu pairs (processed=%llu candidates=%llu) "
               "filter=%.3fs verify=%.3fs wall=%.3fs\n",
               algorithm.c_str(), static_cast<unsigned long long>(written),
               static_cast<unsigned long long>(stats.processed_pairs),
               static_cast<unsigned long long>(stats.candidates),
               stats.signature_seconds + stats.filter_seconds,
               stats.verify_seconds, wall_seconds);

  std::string stats_out = flags.GetString("stats_out", "");
  if (!stats_out.empty()) {
    BenchRun run;
    BenchReport report = MakeCliReport(flags, *dataset, "cli", &run);
    run.algorithm = algorithm;
    run.theta = options.theta;
    run.tau = options.tau;
    run.max_partition_records =
        static_cast<size_t>(flags.GetInt("partition", 0));
    run.stats = stats;
    run.index_source = engine.index_source();
    run.snapshot_load_ms = engine.snapshot_load_seconds() * 1000.0;
    run.total_seconds = stats.TotalSeconds(/*include_prepare=*/true);
    run.wall_seconds = wall_seconds;
    report.runs.push_back(run);
    if (!WriteCliReport(report, stats_out)) return 1;
  }

  if (flags.GetBool("require_nonzero", false) && written == 0) {
    std::fprintf(stderr, "error: join found zero matches\n");
    return 1;
  }
  return 0;
}

int RunQuery(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  if (!spec.records2_path.empty()) {
    // Silently serving --input while a second collection was loaded
    // would answer every query from the wrong side; fail instead.
    std::fprintf(stderr,
                 "error: query serves a single collection; --input2 is a "
                 "join-only flag\n");
    return 1;
  }
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records);

  const std::string wal_path = flags.GetString("wal", "");
  double wal_recovery_seconds = 0.0;
  if (!wal_path.empty()) {
    // Append-serving recovery. This must happen BEFORE query
    // tokenisation: recovery re-interns the appended texts in their
    // original order, and query tokens interned ahead of them would
    // shift the ids and break the checkpoint fingerprints.
    WallTimer recovery_timer;
    Status status = engine.EnableAppend(
        wal_path,
        [&](const std::string& text) {
          return MakeRecord(0, text, &dataset->vocab, spec.tokenizer);
        },
        flags.GetString("snapshot", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "error: cannot recover WAL %s: %s\n",
                   wal_path.c_str(), status.ToString().c_str());
      return 1;
    }
    wal_recovery_seconds = recovery_timer.Seconds();
    std::fprintf(stderr,
                 "wal: recovered %llu appended records from %s in %.3fs "
                 "(serving %zu records)\n",
                 static_cast<unsigned long long>(
                     engine.wal_recovered_records()),
                 wal_path.c_str(), wal_recovery_seconds,
                 engine.generational_index()->size());
  } else if (!MaybeLoadSnapshot(flags, &engine)) {
    return 1;
  }

  // Query texts: one per line from --queries (or stdin), tokenised into
  // the dataset's vocabulary with the same normalisation — interning
  // happens here, before the immutable index is built.
  std::string queries_path = flags.GetString("queries", "-");
  std::ifstream queries_file;
  if (queries_path != "-") {
    queries_file.open(queries_path);
    if (!queries_file) {
      std::fprintf(stderr, "error: cannot open %s\n", queries_path.c_str());
      return 1;
    }
  }
  std::istream& queries_in =
      queries_path == "-" ? std::cin : queries_file;
  std::vector<Record> queries;
  std::string line;
  while (std::getline(queries_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blank lines, including whitespace-only ones: a trailing
    // newline or stray spaces piped through stdin must not become a
    // real (zero-token) query that inflates `queries` and skews the
    // QPS --stats_out reports.
    if (line.find_first_not_of(" \t\f\v\r") == std::string::npos) continue;
    queries.push_back(MakeRecord(static_cast<uint32_t>(queries.size()), line,
                                 &dataset->vocab, spec.tokenizer));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries read from %s\n",
                 queries_path.c_str());
    return 1;
  }

  EngineSearchOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  options.tau = static_cast<int>(flags.GetInt("tau", 1));
  options.k = static_cast<size_t>(flags.GetInt("topk", 0));

  OutputTarget target;
  if (!OpenOutput(flags, &target)) return 1;

  uint64_t written = 0;
  SearchStats stats;
  WallTimer wall;
  Status status = engine.BatchSearch(
      queries, options,
      [&](uint32_t query_index, const UnifiedSearcher::Match& m) {
        std::ostream& out = *target.out;
        out << query_index << target.sep << m.id << target.sep
            << m.similarity;
        if (!target.ids_only) {
          // In append mode the matched id can point past the ingested
          // dataset (a recovered or staged append).
          out << target.sep << target.Text(queries[query_index].text)
              << target.sep
              << target.Text(engine.append_mode()
                                 ? engine.generational_index()->TextOf(m.id)
                                 : dataset->records[m.id].text);
        }
        out << '\n';
        ++written;
        return true;
      },
      &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  double wall_seconds = wall.Seconds();

  if (!target.Finish()) return 1;
  std::fprintf(stderr,
               "query: %llu queries, %llu matches (candidates=%llu) "
               "index=%.3fs search=%.3fs wall=%.3fs\n",
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(written),
               static_cast<unsigned long long>(stats.query_candidates),
               stats.index_seconds, stats.search_seconds, wall_seconds);

  std::string stats_out = flags.GetString("stats_out", "");
  if (!stats_out.empty()) {
    BenchRun run;
    BenchReport report = MakeCliReport(flags, *dataset, "query", &run);
    run.algorithm = "search";
    char variant[64];
    std::snprintf(variant, sizeof(variant), "topk=%zu", options.k);
    run.variant = variant;
    run.theta = options.theta;
    run.tau = options.tau;
    if (engine.append_mode()) {
      // The generational frozen index is the serving base; asking
      // ServingIndex() here would force a redundant rebuild.
      run.stats.prepare_seconds =
          engine.generational_index()->frozen_index()->prepare_seconds();
      run.num_records = engine.generational_index()->size();
      run.has_wal = true;
      run.wal_recovery_seconds = wal_recovery_seconds;
      run.wal_recovered_records = engine.wal_recovered_records();
      std::ifstream probe(wal_path, std::ios::binary | std::ios::ate);
      if (probe) run.wal_bytes = static_cast<uint64_t>(probe.tellg());
    } else {
      Result<std::shared_ptr<const PreparedIndex>> index =
          engine.ServingIndex();
      run.stats.prepare_seconds =
          index.ok() ? (*index)->prepare_seconds() : 0.0;
    }
    run.stats.index_seconds = stats.index_seconds;
    run.stats.queries = stats.queries;
    run.stats.query_candidates = stats.query_candidates;
    run.stats.results = stats.results;
    run.stats.shards = stats.shards;
    // Cold-start provenance: lets bench scripts tell a snapshot-served
    // run from a rebuilt one without parsing stderr.
    run.index_source = engine.index_source();
    run.snapshot_load_ms = engine.snapshot_load_seconds() * 1000.0;
    // search_seconds already covers any serving-index build it forced.
    run.total_seconds = run.stats.prepare_seconds + stats.search_seconds;
    run.wall_seconds = wall_seconds;
    report.runs.push_back(run);
    if (!WriteCliReport(report, stats_out)) return 1;
  }

  if (flags.GetBool("require_nonzero", false) && written == 0) {
    std::fprintf(stderr, "error: search found zero matches\n");
    return 1;
  }
  return 0;
}

int RunAppend(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  if (!spec.records2_path.empty()) {
    std::fprintf(stderr,
                 "error: append grows a single collection; --input2 is a "
                 "join-only flag\n");
    return 1;
  }
  std::string wal_path = flags.GetString("wal", "");
  if (wal_path.empty()) {
    std::fprintf(stderr, "error: --wal=FILE is required\n");
    return 1;
  }
  std::string checkpoint_path = flags.GetString("snapshot", "");
  bool do_checkpoint = flags.GetBool("checkpoint", false);
  if (do_checkpoint && checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --checkpoint requires --snapshot=FILE\n");
    return 1;
  }
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records);

  WallTimer recovery_timer;
  Status status = engine.EnableAppend(
      wal_path,
      [&](const std::string& text) {
        return MakeRecord(0, text, &dataset->vocab, spec.tokenizer);
      },
      checkpoint_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: cannot open WAL %s: %s\n", wal_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  double recovery_seconds = recovery_timer.Seconds();
  std::fprintf(stderr,
               "wal: recovered %llu appended records in %.3fs; serving %zu "
               "records\n",
               static_cast<unsigned long long>(engine.wal_recovered_records()),
               recovery_seconds, engine.generational_index()->size());

  // Texts to append: one per non-blank line of --records (- = stdin).
  std::string records_path = flags.GetString("records", "-");
  std::ifstream records_file;
  if (records_path != "-") {
    records_file.open(records_path);
    if (!records_file) {
      std::fprintf(stderr, "error: cannot open %s\n", records_path.c_str());
      return 1;
    }
  }
  std::istream& records_in =
      records_path == "-" ? std::cin : records_file;

  uint64_t appended = 0;
  std::string line;
  WallTimer append_timer;
  while (std::getline(records_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t\f\v\r") == std::string::npos) continue;
    Result<uint32_t> id = engine.Append(line);
    if (!id.ok()) {
      std::fprintf(stderr, "error: append failed after %llu records: %s\n",
                   static_cast<unsigned long long>(appended),
                   id.status().ToString().c_str());
      return 1;
    }
    ++appended;
  }
  double append_seconds = append_timer.Seconds();
  std::fprintf(stderr,
               "append: %llu records in %.3fs (%.0f records/s, one fsync "
               "per append); serving %zu records\n",
               static_cast<unsigned long long>(appended), append_seconds,
               append_seconds > 0 ? appended / append_seconds : 0.0,
               engine.generational_index()->size());
  if (engine.auto_checkpoints() > 0) {
    std::fprintf(stderr, "checkpoint: %llu size-triggered (WAL > %lld B)\n",
                 static_cast<unsigned long long>(engine.auto_checkpoints()),
                 static_cast<long long>(
                     flags.GetInt("wal_checkpoint_bytes", 0)));
  }
  if (!engine.auto_checkpoint_status().ok()) {
    std::fprintf(stderr, "warning: auto-checkpoint failed: %s\n",
                 engine.auto_checkpoint_status().ToString().c_str());
  }

  // Readiness AFTER the batch is durable: from the moment this file
  // exists a kill -9 must lose nothing, which is exactly what the CI
  // crash-recovery smoke asserts.
  std::string ready_file = flags.GetString("ready_file", "");
  if (!ready_file.empty()) {
    std::ofstream ready(ready_file);
    ready << appended << "\n";
    ready.flush();
    if (!ready) {
      std::fprintf(stderr, "error: cannot write %s\n", ready_file.c_str());
      return 1;
    }
  }

  if (do_checkpoint) {
    WallTimer checkpoint_timer;
    status = engine.Checkpoint(checkpoint_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: checkpoint failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "checkpoint: %s written in %.3fs, WAL reset\n",
                 checkpoint_path.c_str(), checkpoint_timer.Seconds());
  }

  std::string stats_out = flags.GetString("stats_out", "");
  if (!stats_out.empty()) {
    BenchRun run;
    BenchReport report = MakeCliReport(flags, *dataset, "append", &run);
    run.algorithm = "append";
    run.variant = do_checkpoint ? "checkpoint" : "wal";
    run.num_records = engine.generational_index()->size();
    run.stats.results = appended;
    run.has_wal = true;
    run.wal_append_records_per_sec =
        append_seconds > 0 ? appended / append_seconds : 0.0;
    run.wal_recovery_seconds = recovery_seconds;
    run.wal_recovered_records = engine.wal_recovered_records();
    {
      std::ifstream probe(wal_path, std::ios::binary | std::ios::ate);
      if (probe) run.wal_bytes = static_cast<uint64_t>(probe.tellg());
    }
    run.total_seconds = recovery_seconds + append_seconds;
    run.wall_seconds = run.total_seconds;
    report.runs.push_back(run);
    if (!WriteCliReport(report, stats_out)) return 1;
  }

  int64_t linger = flags.GetInt("linger_seconds", 0);
  if (linger > 0) {
    std::fprintf(stderr, "lingering %llds (kill window)...\n",
                 static_cast<long long>(linger));
    std::this_thread::sleep_for(std::chrono::seconds(linger));
  }
  return 0;
}

int RunTune(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records);

  EngineJoinOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  TunerOptions tuner;
  tuner.theta = options.theta;
  tuner.sample_prob_s = tuner.sample_prob_t = flags.GetDouble("sample", 0.01);
  std::vector<int64_t> universe = flags.GetIntList("tau_universe", {});
  if (!universe.empty()) {
    tuner.tau_universe.clear();
    for (int64_t tau : universe) {
      tuner.tau_universe.push_back(static_cast<int>(tau));
    }
  }

  TauRecommendation rec;
  Result<JoinResult> result =
      engine.JoinWithSuggestedTau(options, tuner, &rec);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::string json = "{";
  AppendJsonKey("best_tau", &json);
  AppendJsonUint(static_cast<uint64_t>(rec.best_tau), &json);
  json += ", ";
  AppendJsonKey("iterations", &json);
  AppendJsonUint(static_cast<uint64_t>(rec.iterations), &json);
  json += ", ";
  AppendJsonKey("converged", &json);
  json += rec.converged ? "true" : "false";
  json += ", ";
  AppendJsonKey("suggest_seconds", &json);
  AppendJsonDouble(rec.seconds, &json);
  json += ", ";
  AppendJsonKey("tau_universe", &json);
  json += "[";
  for (size_t i = 0; i < tuner.tau_universe.size(); ++i) {
    if (i > 0) json += ", ";
    AppendJsonUint(static_cast<uint64_t>(tuner.tau_universe[i]), &json);
  }
  json += "], ";
  AppendJsonKey("estimated_cost", &json);
  json += "[";
  for (size_t i = 0; i < rec.estimated_cost.size(); ++i) {
    if (i > 0) json += ", ";
    AppendJsonDouble(rec.estimated_cost[i], &json);
  }
  json += "], ";
  AppendJsonKey("results", &json);
  AppendJsonUint(result->pairs.size(), &json);
  json += "}";
  std::printf("%s\n", json.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (flags.positional().empty()) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string& command = flags.positional()[0];
  if (command == "join") return RunJoin(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "append") return RunAppend(flags);
  if (command == "snapshot") return RunSnapshot(flags);
  if (command == "tune") return RunTune(flags);
  if (command == "stats") return RunStats(flags);
  std::fprintf(stderr, "error: unknown command '%s'\n\n%s", command.c_str(),
               kUsage);
  return 1;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
