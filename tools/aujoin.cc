// aujoin — the command-line driver over the Engine facade.
//
// Turns the library into an end-to-end system: ingest a real dataset
// (CSV/TSV/JSONL/plain lines) with optional synonym-rule and taxonomy
// files, then join, auto-tune, or summarise it — one command, no code.
//
//   aujoin join  --input=data/poi.csv --columns=name,city --header
//                --rules=data/poi_rules.tsv --taxonomy=data/poi_taxonomy.tsv
//                --theta=0.7 --tau=2 [--algorithm=unified] [--out=-]
//                [--stats_out=BENCH_cli.json] [--require_nonzero]
//   aujoin tune  --input=... [--theta=0.8] [--sample=0.05]
//   aujoin stats --input=... [--rules=...] [--taxonomy=...]
//
// `join` streams matched pairs to stdout (or --out=FILE) through a
// MatchSink as verification batches complete; --stats_out writes the
// same BENCH_<name>.json schema as bench/harness (see
// docs/bench-schema.md). `tune` runs Algorithm 7 and reports the
// suggested overlap constraint tau as JSON. `stats` ingests and prints
// the dataset manifest. Full flag reference: docs/cli.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "dataset/dataset.h"
#include "harness.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/json.h"
#include "util/timer.h"

namespace aujoin {
namespace {

constexpr const char* kUsage = R"(usage: aujoin <command> [--flags]

commands:
  join    ingest a dataset and run a similarity self- or R x S join
  tune    run Algorithm 7 to suggest the overlap constraint tau
  stats   ingest a dataset and print its manifest as JSON

ingestion flags (all commands):
  --input=FILE           records file (required)
  --input2=FILE          second collection for an R x S join (join only)
  --format=auto          auto | lines | csv | tsv | jsonl
  --columns=a,b          record text columns (header names / JSONL keys)
  --column_indices=0,2   zero-based positional columns (CSV/TSV)
  --header               first CSV/TSV row is a header
  --skip_malformed       drop malformed rows instead of failing
  --max_records=N        ingest at most N records (0 = all)
  --keep_case            do not lowercase tokens
  --split_punctuation    treat ASCII punctuation as token delimiters
  --rules=FILE           synonym rules TSV (lhs <TAB> rhs [<TAB> closeness])
  --taxonomy=FILE        taxonomy TSV (node_id <TAB> parent_id <TAB> name)

engine flags (join, tune):
  --measures=TJS         measure combination (J, TS, TJS, ...)
  --q=3                  gram length for the J measure
  --threads=1            worker threads (0 = all hardware threads)
  --partition=0          partitioned pipeline record bound (0 = monolithic)

join flags:
  --algorithm=unified    unified | kjoin | pkduck | adaptjoin | combination
  --theta=0.8            similarity threshold
  --tau=2                overlap constraint (0 = pick with Algorithm 7)
  --sample=0.05          tuner sampling probability when --tau=0
  --out=-                pairs output file (- = stdout)
  --output_format=tsv    tsv | csv
  --ids_only             emit id pairs without record texts
  --stats_out=FILE       write run stats in the BENCH_<name>.json schema
  --name=cli             report name for --stats_out
  --require_nonzero      exit 1 when the join finds zero matches

tune flags:
  --theta=0.8            similarity threshold to tune for
  --tau_universe=1,2,..  candidate taus (default 1,2,3,4,5,6,8)
  --sample=0.01          Bernoulli sampling probability per side
)";

/// Builds the DatasetSpec shared by every subcommand from flags.
/// Returns false (with a message on stderr) on unparsable flag values.
bool SpecFromFlags(const Flags& flags, DatasetSpec* spec) {
  spec->records_path = flags.GetString("input", "");
  if (spec->records_path.empty()) {
    std::fprintf(stderr, "error: --input is required\n");
    return false;
  }
  spec->records2_path = flags.GetString("input2", "");
  Result<DatasetFormat> format =
      ParseDatasetFormat(flags.GetString("format", "auto"));
  if (!format.ok()) {
    std::fprintf(stderr, "error: %s\n", format.status().ToString().c_str());
    return false;
  }
  spec->reader.format = *format;
  std::string columns = flags.GetString("columns", "");
  if (!columns.empty()) {
    spec->reader.columns = SplitString(columns, ',');
  }
  std::string indices = flags.GetString("column_indices", "");
  if (!indices.empty()) {
    for (const std::string& field : SplitString(indices, ',')) {
      spec->reader.column_indices.push_back(
          static_cast<size_t>(std::atoll(field.c_str())));
    }
  }
  spec->reader.has_header = flags.GetBool("header", false);
  spec->reader.on_malformed = flags.GetBool("skip_malformed", false)
                                  ? MalformedRowPolicy::kSkip
                                  : MalformedRowPolicy::kFail;
  spec->reader.max_records =
      static_cast<size_t>(flags.GetInt("max_records", 0));
  spec->tokenizer.lowercase = !flags.GetBool("keep_case", false);
  spec->tokenizer.split_punctuation =
      flags.GetBool("split_punctuation", false);
  spec->rules_path = flags.GetString("rules", "");
  spec->taxonomy_path = flags.GetString("taxonomy", "");
  return true;
}

Engine EngineFromFlags(const Flags& flags, const Dataset& dataset) {
  return EngineBuilder()
      .SetKnowledge(dataset.knowledge())
      .SetMeasures(flags.GetString("measures", "TJS"))
      .SetQ(static_cast<int>(flags.GetInt("q", 3)))
      .SetThreads(static_cast<int>(flags.GetInt("threads", 1)))
      .SetMaxPartitionRecords(
          static_cast<size_t>(flags.GetInt("partition", 0)))
      .Build();
}

/// CSV-quotes a text field when it needs it.
std::string CsvField(const std::string& text) {
  if (text.find_first_of(",\"\r\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted += '"';
  return quoted;
}

int RunStats(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", dataset->manifest.ToJson().c_str());
  return 0;
}

int RunJoin(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ingested: %s\n", dataset->manifest.ToJson().c_str());

  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records,
                    dataset->records2.empty() ? nullptr : &dataset->records2);
  const std::vector<Record>& t_side =
      dataset->records2.empty() ? dataset->records : dataset->records2;

  std::string algorithm = flags.GetString("algorithm", "unified");
  EngineJoinOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  int tau = static_cast<int>(flags.GetInt("tau", 2));
  options.tau = tau > 0 ? tau : 1;

  // Output plumbing: stdout or a file, TSV or CSV, streamed through a
  // CallbackSink as verification batches complete.
  std::string out_path = flags.GetString("out", "-");
  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;
  bool csv = flags.GetString("output_format", "tsv") == "csv";
  bool ids_only = flags.GetBool("ids_only", false);
  char sep = csv ? ',' : '\t';

  uint64_t written = 0;
  CallbackSink sink([&](uint32_t a, uint32_t b) {
    out << a << sep << b;
    if (!ids_only) {
      const std::string& ta = dataset->records[a].text;
      const std::string& tb = t_side[b].text;
      out << sep << (csv ? CsvField(ta) : ta) << sep
          << (csv ? CsvField(tb) : tb);
    }
    out << '\n';
    ++written;
    return true;
  });

  JoinStats stats;
  WallTimer wall;
  if (tau <= 0) {
    if (algorithm != "unified") {
      std::fprintf(stderr,
                   "error: --tau=0 (auto-tune) requires --algorithm=unified\n");
      return 1;
    }
    TunerOptions tuner;
    tuner.theta = options.theta;
    tuner.method = options.method;
    tuner.sample_prob_s = tuner.sample_prob_t =
        flags.GetDouble("sample", 0.05);
    TauRecommendation rec;
    Result<JoinResult> result =
        engine.JoinWithSuggestedTau(options, tuner, &rec);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "algorithm 7 suggested tau=%d (%.3fs)\n",
                 rec.best_tau, rec.seconds);
    options.tau = rec.best_tau;
    for (const auto& [a, b] : result->pairs) sink.OnMatch(a, b);
    stats = result->stats;
  } else {
    Result<JoinStats> run = engine.Join(algorithm, options, &sink);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    stats = *run;
  }
  double wall_seconds = wall.Seconds();

  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: failed writing %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "join[%s]: %llu pairs (processed=%llu candidates=%llu) "
               "filter=%.3fs verify=%.3fs wall=%.3fs\n",
               algorithm.c_str(), static_cast<unsigned long long>(written),
               static_cast<unsigned long long>(stats.processed_pairs),
               static_cast<unsigned long long>(stats.candidates),
               stats.signature_seconds + stats.filter_seconds,
               stats.verify_seconds, wall_seconds);

  std::string stats_out = flags.GetString("stats_out", "");
  if (!stats_out.empty()) {
    BenchReport report;
    report.name = flags.GetString("name", "cli");
    report.profile = "dataset";
    report.num_records = dataset->records.size();
    report.dataset_manifest_json = dataset->manifest.ToJson();
    BenchRun run;
    run.algorithm = algorithm;
    run.measures = flags.GetString("measures", "TJS");
    run.theta = options.theta;
    run.tau = options.tau;
    run.threads = static_cast<int>(flags.GetInt("threads", 1));
    run.max_partition_records =
        static_cast<size_t>(flags.GetInt("partition", 0));
    run.num_records = dataset->records.size();
    run.ok = true;
    run.stats = stats;
    run.total_seconds = stats.TotalSeconds(/*include_prepare=*/true);
    run.wall_seconds = wall_seconds;
    run.peak_rss_bytes = CurrentPeakRssBytes();
    report.runs.push_back(run);
    if (!report.WriteJsonFile(stats_out)) {
      std::fprintf(stderr, "error: failed to write %s\n", stats_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", stats_out.c_str());
  }

  if (flags.GetBool("require_nonzero", false) && written == 0) {
    std::fprintf(stderr, "error: join found zero matches\n");
    return 1;
  }
  return 0;
}

int RunTune(const Flags& flags) {
  DatasetSpec spec;
  if (!SpecFromFlags(flags, &spec)) return 1;
  Result<Dataset> dataset = LoadDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Engine engine = EngineFromFlags(flags, *dataset);
  engine.SetRecords(dataset->records);

  EngineJoinOptions options;
  options.theta = flags.GetDouble("theta", 0.8);
  TunerOptions tuner;
  tuner.theta = options.theta;
  tuner.sample_prob_s = tuner.sample_prob_t = flags.GetDouble("sample", 0.01);
  std::vector<int64_t> universe = flags.GetIntList("tau_universe", {});
  if (!universe.empty()) {
    tuner.tau_universe.clear();
    for (int64_t tau : universe) {
      tuner.tau_universe.push_back(static_cast<int>(tau));
    }
  }

  TauRecommendation rec;
  Result<JoinResult> result =
      engine.JoinWithSuggestedTau(options, tuner, &rec);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::string json = "{";
  AppendJsonKey("best_tau", &json);
  AppendJsonUint(static_cast<uint64_t>(rec.best_tau), &json);
  json += ", ";
  AppendJsonKey("iterations", &json);
  AppendJsonUint(static_cast<uint64_t>(rec.iterations), &json);
  json += ", ";
  AppendJsonKey("converged", &json);
  json += rec.converged ? "true" : "false";
  json += ", ";
  AppendJsonKey("suggest_seconds", &json);
  AppendJsonDouble(rec.seconds, &json);
  json += ", ";
  AppendJsonKey("tau_universe", &json);
  json += "[";
  for (size_t i = 0; i < tuner.tau_universe.size(); ++i) {
    if (i > 0) json += ", ";
    AppendJsonUint(static_cast<uint64_t>(tuner.tau_universe[i]), &json);
  }
  json += "], ";
  AppendJsonKey("estimated_cost", &json);
  json += "[";
  for (size_t i = 0; i < rec.estimated_cost.size(); ++i) {
    if (i > 0) json += ", ";
    AppendJsonDouble(rec.estimated_cost[i], &json);
  }
  json += "], ";
  AppendJsonKey("results", &json);
  AppendJsonUint(result->pairs.size(), &json);
  json += "}";
  std::printf("%s\n", json.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (flags.positional().empty()) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string& command = flags.positional()[0];
  if (command == "join") return RunJoin(flags);
  if (command == "tune") return RunTune(flags);
  if (command == "stats") return RunStats(flags);
  std::fprintf(stderr, "error: unknown command '%s'\n\n%s", command.c_str(),
               kUsage);
  return 1;
}

}  // namespace
}  // namespace aujoin

int main(int argc, char** argv) { return aujoin::Run(argc, argv); }
