#include <algorithm>

#include <gtest/gtest.h>

#include "index/global_order.h"
#include "join/signature.h"
#include "test_fixtures.h"

namespace aujoin {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  SignatureTest() : generator_(world_.knowledge(), MsimOptions{}) {}

  // Prepares a small collection and returns sorted pebbles per record.
  std::vector<RecordPebbles> Prepare(const std::vector<std::string>& texts) {
    std::vector<RecordPebbles> out;
    records_.clear();
    for (size_t i = 0; i < texts.size(); ++i) {
      records_.push_back(world_.MakeRec(static_cast<uint32_t>(i), texts[i]));
      out.push_back(generator_.Generate(records_.back(), &gram_dict_));
    }
    order_ = GlobalOrder();
    order_.CountCollection(out);
    order_.Finalize();
    for (auto& rp : out) order_.SortPebbles(&rp);
    return out;
  }

  Figure1World world_;
  Vocabulary gram_dict_;
  PebbleGenerator generator_;
  GlobalOrder order_;
  std::vector<Record> records_;
};

TEST_F(SignatureTest, AccumulatedSimilarityIsMonotone) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop"});
  for (const auto& rp : prepared) {
    auto as = ComputeAccumulatedSimilarity(rp);
    for (size_t i = 1; i + 1 < as.size(); ++i) {
      EXPECT_GE(as[i] + 1e-12, as[i + 1]);
    }
    EXPECT_DOUBLE_EQ(as[rp.pebbles.size() + 1], 0.0);
  }
}

TEST_F(SignatureTest, AccumulatedSimilarityTotal) {
  // For "cafe": one segment; AS(1) = max over measures of the full bucket
  // sums = max(J: 3 * 1/3, S: 1) = 1.
  auto prepared = Prepare({"cafe"});
  auto as = ComputeAccumulatedSimilarity(prepared[0]);
  EXPECT_NEAR(as[1], 1.0, 1e-12);
}

TEST_F(SignatureTest, UFilterKeepsFewerThanAll) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop",
                           "cake gateau food", "helsingki espresso cafe"});
  SignatureOptions opts;
  opts.theta = 0.8;
  opts.method = FilterMethod::kUFilter;
  for (size_t i = 0; i < prepared.size(); ++i) {
    Signature sig = SelectSignature(prepared[i], records_[i].num_tokens(),
                                    opts);
    EXPECT_GT(sig.prefix_len, 0u);
    EXPECT_LT(sig.prefix_len, prepared[i].pebbles.size());
  }
}

TEST_F(SignatureTest, HigherTauGivesLongerSignatures) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop",
                           "cake gateau food"});
  SignatureOptions opts;
  opts.theta = 0.8;
  opts.method = FilterMethod::kAuHeuristic;
  for (size_t i = 0; i < prepared.size(); ++i) {
    size_t prev = 0;
    for (int tau = 1; tau <= 4; ++tau) {
      opts.tau = tau;
      Signature sig = SelectSignature(prepared[i], records_[i].num_tokens(),
                                      opts);
      EXPECT_GE(sig.prefix_len, prev);
      prev = sig.prefix_len;
    }
  }
}

TEST_F(SignatureTest, DpNeverLongerThanHeuristic) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop",
                           "cake gateau food", "coffee shop cake espresso"});
  for (size_t i = 0; i < prepared.size(); ++i) {
    for (int tau : {2, 3, 4}) {
      for (double theta : {0.75, 0.85, 0.95}) {
        SignatureOptions h;
        h.theta = theta;
        h.tau = tau;
        h.method = FilterMethod::kAuHeuristic;
        SignatureOptions d = h;
        d.method = FilterMethod::kAuDp;
        size_t hs =
            SelectSignature(prepared[i], records_[i].num_tokens(), h)
                .prefix_len;
        size_t ds =
            SelectSignature(prepared[i], records_[i].num_tokens(), d)
                .prefix_len;
        EXPECT_LE(ds, hs) << "tau=" << tau << " theta=" << theta
                          << " record=" << i;
      }
    }
  }
}

TEST_F(SignatureTest, UFilterEqualsHeuristicTau1) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop"});
  for (size_t i = 0; i < prepared.size(); ++i) {
    SignatureOptions u;
    u.theta = 0.8;
    u.method = FilterMethod::kUFilter;
    SignatureOptions h;
    h.theta = 0.8;
    h.tau = 1;
    h.method = FilterMethod::kAuHeuristic;
    EXPECT_EQ(
        SelectSignature(prepared[i], records_[i].num_tokens(), u).prefix_len,
        SelectSignature(prepared[i], records_[i].num_tokens(), h).prefix_len);
  }
}

TEST_F(SignatureTest, LowerThetaGivesLongerSignatures) {
  auto prepared = Prepare({"espresso cafe helsinki", "latte coffee shop"});
  SignatureOptions opts;
  opts.method = FilterMethod::kAuDp;
  opts.tau = 2;
  for (size_t i = 0; i < prepared.size(); ++i) {
    opts.theta = 0.95;
    size_t high =
        SelectSignature(prepared[i], records_[i].num_tokens(), opts)
            .prefix_len;
    opts.theta = 0.7;
    size_t low =
        SelectSignature(prepared[i], records_[i].num_tokens(), opts)
            .prefix_len;
    EXPECT_GE(low, high);
  }
}

TEST_F(SignatureTest, KeysAreDistinctAndFromPrefix) {
  auto prepared = Prepare({"espresso cafe helsinki"});
  SignatureOptions opts;
  opts.theta = 0.8;
  opts.tau = 2;
  opts.method = FilterMethod::kAuDp;
  Signature sig =
      SelectSignature(prepared[0], records_[0].num_tokens(), opts);
  auto keys = sig.keys;
  std::sort(keys.begin(), keys.end());
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  EXPECT_LE(sig.keys.size(), sig.prefix_len);
}

TEST_F(SignatureTest, EmptyRecordYieldsEmptySignature) {
  auto prepared = Prepare({""});
  SignatureOptions opts;
  Signature sig = SelectSignature(prepared[0], 0, opts);
  EXPECT_EQ(sig.prefix_len, 0u);
  EXPECT_TRUE(sig.keys.empty());
}

}  // namespace
}  // namespace aujoin
