// Tests for first-class shards: shard-plan invariants, exact
// sharded-vs-monolithic join parity across every registry algorithm and
// both placement schemes (the PR's acceptance criterion), scatter-gather
// serving parity (similarity values included), per-shard snapshot
// round trips with lazy mounting, the spill-to-disk out-of-core path
// (parity, bounded buffering, no temp-file leaks, kill-point typed
// errors), and concurrent sharded queries. Every suite name contains
// "Shard" so the TSan CI job's ctest filter picks the whole file up.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "datagen/corpus_gen.h"
#include "datagen/synonym_gen.h"
#include "datagen/taxonomy_gen.h"
#include "join/partition.h"
#include "shard/shard_plan.h"
#include "shard/sharded_index.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "test_fixtures.h"

namespace aujoin {
namespace {

using PairVec = std::vector<std::pair<uint32_t, uint32_t>>;

#define ASSERT_OK(expr)                              \
  do {                                               \
    const auto status_ = (expr);                     \
    ASSERT_TRUE(status_.ok()) << status_.ToString(); \
  } while (0)

std::string TempPath(const std::string& name) {
  // Per-process suffix: ctest runs every case as its own process, and
  // concurrent cases of one fixture would otherwise share a filename.
  std::string path = ::testing::TempDir() + "aujoin_shard_" + name + "." +
                     std::to_string(::getpid());
  std::remove(path.c_str());
  return path;
}

/// Files named like spill runs left in `dir` — must always be zero,
/// since runs are unlinked the instant they are mapped.
std::vector<std::string> SpillLeaks(const std::string& dir) {
  std::vector<std::string> leaks;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return leaks;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind("aujoin-spill-", 0) == 0) leaks.push_back(name);
  }
  ::closedir(d);
  return leaks;
}

// -------------------------------------------------------- shard plans

TEST(ShardPlanTest, RangePlanIsContiguousBalancedAndExhaustive) {
  for (size_t n : {0u, 1u, 7u, 64u, 101u}) {
    for (size_t shards : {1u, 2u, 4u, 7u, 150u}) {
      ShardPlan plan = ShardPlan::Make(n, shards, ShardBy::kRange);
      EXPECT_TRUE(plan.contiguous);
      EXPECT_EQ(plan.num_shards(), shards);
      size_t total = 0, min_size = n + 1, max_size = 0;
      uint32_t next = 0;
      for (const std::vector<uint32_t>& ids : plan.shard_ids) {
        for (uint32_t id : ids) EXPECT_EQ(id, next++);
        total += ids.size();
        min_size = std::min(min_size, ids.size());
        max_size = std::max(max_size, ids.size());
      }
      EXPECT_EQ(total, n) << "n=" << n << " shards=" << shards;
      if (n >= shards) {
        EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " s=" << shards;
      }
    }
  }
}

TEST(ShardPlanTest, HashPlanIsDeterministicDisjointAndSorted) {
  const size_t n = 101;
  ShardPlan a = ShardPlan::Make(n, 4, ShardBy::kHash);
  ShardPlan b = ShardPlan::Make(n, 4, ShardBy::kHash);
  ASSERT_EQ(a.num_shards(), 4u);
  EXPECT_FALSE(a.contiguous);
  EXPECT_EQ(a.shard_ids, b.shard_ids) << "the plan is a pure function";

  std::vector<int> owner(n, -1);
  for (size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_TRUE(std::is_sorted(a.shard_ids[s].begin(), a.shard_ids[s].end()));
    for (uint32_t id : a.shard_ids[s]) {
      ASSERT_LT(id, n);
      EXPECT_EQ(owner[id], -1) << "record " << id << " in two shards";
      owner[id] = static_cast<int>(s);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(owner[i], -1) << "record " << i << " unassigned";
  }
  // Interleaving: with 101 records over 4 hash shards, no shard should
  // be a contiguous range (that would mean the hash degenerated).
  size_t contiguous_shards = 0;
  for (const std::vector<uint32_t>& ids : a.shard_ids) {
    if (ids.size() >= 2 && ids.back() - ids.front() + 1 == ids.size()) {
      ++contiguous_shards;
    }
  }
  EXPECT_EQ(contiguous_shards, 0u);
}

TEST(ShardPlanTest, SingleShardIsContiguousUnderBothSchemes) {
  for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
    ShardPlan plan = ShardPlan::Make(10, 1, by);
    EXPECT_TRUE(plan.contiguous);
    ASSERT_EQ(plan.num_shards(), 1u);
    EXPECT_EQ(plan.shard_ids[0].size(), 10u);
  }
}

TEST(ShardPlanTest, FromPartitionsLiftsThePartitionPlan) {
  PartitionPlan partitions = PartitionPlan::Shard(10, 4);
  ShardPlan plan = ShardPlan::FromPartitions(partitions, 10);
  EXPECT_TRUE(plan.contiguous);
  ASSERT_EQ(plan.num_shards(), partitions.num_partitions());
  for (size_t p = 0; p < partitions.num_partitions(); ++p) {
    const Partition& part = partitions.partitions[p];
    ASSERT_EQ(plan.shard_ids[p].size(), part.size());
    EXPECT_EQ(plan.shard_ids[p].front(), part.begin);
    EXPECT_EQ(plan.shard_ids[p].back(), part.end - 1);
  }
}

TEST(ShardPlanTest, ShardByNamesRoundTrip) {
  ShardBy by;
  ASSERT_TRUE(ParseShardBy("range", &by));
  EXPECT_EQ(by, ShardBy::kRange);
  ASSERT_TRUE(ParseShardBy("hash", &by));
  EXPECT_EQ(by, ShardBy::kHash);
  EXPECT_FALSE(ParseShardBy("modulo", &by));
  EXPECT_STREQ(ShardByName(ShardBy::kRange), "range");
  EXPECT_STREQ(ShardByName(ShardBy::kHash), "hash");
}

// ------------------------------------------------- join parity fixture

/// The Figure-1 fixture strings with planted duplicates (records 1/6
/// and 0/7 near-duplicates), same shape as the pipeline parity suite.
class ShardJoinTest : public ::testing::Test {
 protected:
  ShardJoinTest() {
    texts_ = {
        "coffee shop latte helsingki",
        "espresso cafe helsinki",
        "cake gateau",
        "apple cake",
        "latte espresso coffee",
        "random words here",
        "espresso cafe helsinki",  // exact duplicate of record 1
        "coffee shop latte helsinki",
    };
    for (size_t i = 0; i < texts_.size(); ++i) {
      records_.push_back(world_.MakeRec(static_cast<uint32_t>(i), texts_[i]));
    }
  }

  Engine MakeEngine(size_t num_shards, ShardBy shard_by = ShardBy::kRange,
                    int num_threads = 1, size_t spill_budget = 0,
                    const std::string& spill_dir = "") {
    Engine engine = EngineBuilder()
                        .SetKnowledge(world_.knowledge())
                        .SetMeasures("TJS")
                        .SetQ(2)
                        .SetThreads(num_threads)
                        .SetNumShards(num_shards)
                        .SetShardBy(shard_by)
                        .SetSpillBudgetBytes(spill_budget)
                        .SetSpillDir(spill_dir)
                        .Build();
    engine.SetRecords(records_);
    return engine;
  }

  Figure1World world_;
  std::vector<std::string> texts_;
  std::vector<Record> records_;
};

// The acceptance criterion: for every registry algorithm, both
// placement schemes and every shard count, the sharded join must
// produce the identical sorted match set as the monolithic one.
TEST_F(ShardJoinTest, ShardedMatchesMonolithicForEveryAlgorithm) {
  Engine monolithic = MakeEngine(0);
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
      Engine sharded = MakeEngine(shards, by);
      for (const std::string& name : AlgorithmRegistry::Global().Names()) {
        Result<JoinResult> mono =
            monolithic.Join(name, {.theta = 0.7, .tau = 2});
        Result<JoinResult> shard =
            sharded.Join(name, {.theta = 0.7, .tau = 2});
        ASSERT_TRUE(mono.ok()) << name;
        ASSERT_TRUE(shard.ok())
            << name << " shards=" << shards << " by=" << ShardByName(by);
        EXPECT_EQ(shard->pairs, mono->pairs)
            << name << " shards=" << shards << " by=" << ShardByName(by);
      }
    }
  }
}

TEST_F(ShardJoinTest, ShardedStatsRecordThePlanShape) {
  Engine sharded = MakeEngine(4);
  Result<JoinResult> result = sharded.Join("unified", {.theta = 0.7});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.shards, 4u);
  EXPECT_EQ(result->stats.partition_blocks, 10u);  // upper triangle of 4
  EXPECT_EQ(result->stats.spill_runs, 0u);

  Engine monolithic = MakeEngine(0);
  Result<JoinResult> mono = monolithic.Join("unified", {.theta = 0.7});
  ASSERT_TRUE(mono.ok());
  EXPECT_EQ(mono->stats.shards, 0u);
}

TEST_F(ShardJoinTest, HashShardedEmissionIsSortedAndExactlyOnce) {
  for (size_t shards : {2u, 4u, 7u}) {
    Engine engine = MakeEngine(shards, ShardBy::kHash);
    for (const std::string& name : AlgorithmRegistry::Global().Names()) {
      PairVec streamed;
      std::map<std::pair<uint32_t, uint32_t>, int> seen;
      CallbackSink sink([&](uint32_t a, uint32_t b) {
        streamed.emplace_back(a, b);
        ++seen[{a, b}];
        return true;
      });
      Result<JoinStats> stats =
          engine.Join(name, {.theta = 0.7, .tau = 2}, &sink);
      ASSERT_TRUE(stats.ok()) << name;
      EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end())) << name;
      EXPECT_EQ(seen.count({1, 6}), 1u) << name << " shards=" << shards;
      for (const auto& [pair, count] : seen) {
        EXPECT_EQ(count, 1) << name << " pair (" << pair.first << ","
                            << pair.second << ") shards=" << shards;
        EXPECT_LT(pair.first, pair.second) << name;
      }
    }
  }
}

TEST_F(ShardJoinTest, ThreadCountDoesNotChangeShardedOutput) {
  for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
    Engine serial = MakeEngine(4, by, 1);
    Engine parallel = MakeEngine(4, by, 0);
    Result<JoinResult> a = serial.Join("unified", {.theta = 0.7, .tau = 2});
    Result<JoinResult> b = parallel.Join("unified", {.theta = 0.7, .tau = 2});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->pairs, b->pairs) << ShardByName(by);
  }
}

TEST_F(ShardJoinTest, EarlyTerminationStopsTheShardedJoin) {
  for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
    Engine engine = MakeEngine(4, by, 2);
    Result<JoinResult> all = engine.Join("unified", {.theta = 0.7, .tau = 2});
    ASSERT_TRUE(all.ok());
    ASSERT_GE(all->pairs.size(), 2u);

    CountingSink limited(1);
    Result<JoinStats> stats =
        engine.Join("unified", {.theta = 0.7, .tau = 2}, &limited);
    ASSERT_TRUE(stats.ok()) << ShardByName(by);
    EXPECT_EQ(limited.count(), 1u) << ShardByName(by);
    EXPECT_EQ(stats->results, 1u) << ShardByName(by);
  }
}

TEST_F(ShardJoinTest, ShardedRsJoinMatchesMonolithic) {
  std::vector<Record> others = {
      world_.MakeRec(0, "espresso cafe helsinki"),
      world_.MakeRec(1, "apple cake"),
      world_.MakeRec(2, "coffee shop latte helsingki"),
      world_.MakeRec(3, "unrelated filler tokens"),
      world_.MakeRec(4, "latte espresso coffee"),
  };
  Engine monolithic = MakeEngine(0);
  monolithic.SetRecords(records_, &others);
  Result<JoinResult> mono = monolithic.Join("unified", {.theta = 0.8});
  ASSERT_TRUE(mono.ok());
  ASSERT_FALSE(mono->pairs.empty());

  for (size_t shards : {2u, 4u, 7u}) {
    for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
      Engine sharded = MakeEngine(shards, by, 2);
      sharded.SetRecords(records_, &others);
      Result<JoinResult> shard = sharded.Join("unified", {.theta = 0.8});
      ASSERT_TRUE(shard.ok())
          << "shards=" << shards << " by=" << ShardByName(by);
      EXPECT_EQ(shard->pairs, mono->pairs)
          << "shards=" << shards << " by=" << ShardByName(by);
    }
  }
}

// Parity on a generated corpus big enough for a real shard grid.
TEST(ShardCorpusTest, GeneratedCorpusShardParityAcrossAlgorithms) {
  Vocabulary vocab;
  TaxonomyGenOptions tax;
  tax.num_nodes = 300;
  Taxonomy taxonomy = GenerateTaxonomy(tax, &vocab);
  SynonymGenOptions syn;
  syn.num_rules = 400;
  RuleSet rules = GenerateSynonyms(syn, taxonomy, &vocab);
  Knowledge knowledge{&vocab, &rules, &taxonomy};

  CorpusProfile profile = CorpusProfile::Med(120);
  GroundTruthOptions truth;
  truth.num_pairs = 30;
  CorpusGenerator gen(&vocab, &taxonomy, &rules);
  Corpus corpus = gen.Generate(profile, truth);

  Engine monolithic = EngineBuilder()
                          .SetKnowledge(knowledge)
                          .SetMeasures("TJS")
                          .SetQ(3)
                          .Build();
  monolithic.SetRecords(corpus.records);

  for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
    Engine sharded = EngineBuilder()
                         .SetKnowledge(knowledge)
                         .SetMeasures("TJS")
                         .SetQ(3)
                         .SetThreads(0)
                         .SetNumShards(4)
                         .SetShardBy(by)
                         .Build();
    sharded.SetRecords(corpus.records);
    for (const std::string& name : AlgorithmRegistry::Global().Names()) {
      Result<JoinResult> mono =
          monolithic.Join(name, {.theta = 0.75, .tau = 2});
      Result<JoinResult> shard =
          sharded.Join(name, {.theta = 0.75, .tau = 2});
      ASSERT_TRUE(mono.ok()) << name;
      ASSERT_TRUE(shard.ok()) << name << " by=" << ShardByName(by);
      EXPECT_EQ(shard->pairs, mono->pairs)
          << name << " by=" << ShardByName(by);
      EXPECT_FALSE(shard->pairs.empty()) << name;
    }
  }
}

// --------------------------------------------------- serving parity

class ShardServingTest : public ShardJoinTest {};

TEST_F(ShardServingTest, SearchMatchesMonolithicIncludingSimilarities) {
  Engine monolithic = MakeEngine(0);
  EngineSearchOptions options;
  options.theta = 0.5;
  options.tau = 1;
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
      Engine sharded = MakeEngine(shards, by, 0);
      for (const Record& query : records_) {
        Result<std::vector<UnifiedSearcher::Match>> mono =
            monolithic.Search(query, options);
        SearchStats stats;
        Result<std::vector<UnifiedSearcher::Match>> shard =
            sharded.Search(query, options, &stats);
        ASSERT_OK(mono.status());
        ASSERT_OK(shard.status());
        // Match operator== covers (id, similarity): ranked order AND
        // scores must agree exactly.
        EXPECT_EQ(*shard, *mono)
            << "query " << query.id << " shards=" << shards << " by="
            << ShardByName(by);
        EXPECT_EQ(stats.shards, shards);
      }
    }
  }
}

TEST_F(ShardServingTest, TopKMatchesTheMonolithicPrefix) {
  Engine monolithic = MakeEngine(0);
  Engine sharded = MakeEngine(4, ShardBy::kHash);
  EngineSearchOptions options;
  options.theta = 0.4;
  options.tau = 1;
  for (const Record& query : records_) {
    for (size_t k : {1u, 2u, 3u, 100u}) {
      Result<std::vector<UnifiedSearcher::Match>> mono =
          monolithic.TopK(query, k, options);
      Result<std::vector<UnifiedSearcher::Match>> shard =
          sharded.TopK(query, k, options);
      ASSERT_OK(mono.status());
      ASSERT_OK(shard.status());
      EXPECT_EQ(*shard, *mono) << "query " << query.id << " k=" << k;
    }
  }
}

TEST_F(ShardServingTest, BatchSearchMatchesMonolithic) {
  EngineSearchOptions options;
  options.theta = 0.5;
  options.tau = 1;
  auto run_batch = [&](Engine& engine, SearchStats* stats) {
    std::vector<std::pair<uint32_t, uint32_t>> hits;
    std::vector<double> sims;
    Status status = engine.BatchSearch(
        records_, options,
        [&](uint32_t q, const UnifiedSearcher::Match& m) {
          hits.emplace_back(q, m.id);
          sims.push_back(m.similarity);
          return true;
        },
        stats);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return std::make_pair(hits, sims);
  };

  Engine monolithic = MakeEngine(0, ShardBy::kRange, 0);
  SearchStats mono_stats;
  auto mono = run_batch(monolithic, &mono_stats);
  ASSERT_FALSE(mono.first.empty());

  for (size_t shards : {2u, 4u, 7u}) {
    for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
      Engine sharded = MakeEngine(shards, by, 0);
      SearchStats stats;
      auto shard = run_batch(sharded, &stats);
      EXPECT_EQ(shard, mono)
          << "shards=" << shards << " by=" << ShardByName(by);
      EXPECT_EQ(stats.shards, shards);
      EXPECT_EQ(stats.queries, mono_stats.queries);
      EXPECT_EQ(stats.results, mono_stats.results);
    }
  }
}

// ------------------------------------------------ per-shard snapshots

class ShardSnapshotTest : public ShardJoinTest {};

TEST_F(ShardSnapshotTest, SaveLoadRoundTripServesIdentically) {
  const std::string path = TempPath("roundtrip.aujsnap");
  Engine writer = MakeEngine(4, ShardBy::kHash);
  ASSERT_OK(writer.SaveIndex(path));
  EXPECT_TRUE(Env::Default()->FileExists(path)) << "manifest missing";
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(
        Env::Default()->FileExists(ShardedIndex::ShardFileName(path, s)))
        << "shard file " << s << " missing";
  }

  Engine reader = MakeEngine(4, ShardBy::kHash);
  ASSERT_OK(reader.LoadIndex(path));
  EXPECT_STREQ(reader.index_source(), "snapshot");

  EngineSearchOptions options;
  options.theta = 0.5;
  options.tau = 1;
  for (const Record& query : records_) {
    Result<std::vector<UnifiedSearcher::Match>> built =
        writer.Search(query, options);
    Result<std::vector<UnifiedSearcher::Match>> mounted =
        reader.Search(query, options);
    ASSERT_OK(built.status());
    ASSERT_OK(mounted.status());
    EXPECT_EQ(*mounted, *built) << "query " << query.id;
  }

  std::remove(path.c_str());
  for (size_t s = 0; s < 4; ++s) {
    std::remove(ShardedIndex::ShardFileName(path, s).c_str());
  }
}

TEST_F(ShardSnapshotTest, LazyMountTouchesOnlyTheProbedShards) {
  const std::string path = TempPath("lazy.aujsnap");
  {
    Engine writer = MakeEngine(4, ShardBy::kRange);
    ASSERT_OK(writer.SaveIndex(path));
  }
  Engine reader = MakeEngine(4, ShardBy::kRange);
  ASSERT_OK(reader.LoadIndex(path));
  const ShardedIndex* sharded = reader.sharded_index();
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_resident_shards(), 0u)
      << "LoadIndex must arm lazy mounts, not map every shard";

  // One direct shard probe mounts exactly that shard.
  ASSERT_OK(sharded->ShardIndex(2).status());
  EXPECT_EQ(sharded->num_resident_shards(), 1u);

  std::remove(path.c_str());
  for (size_t s = 0; s < 4; ++s) {
    std::remove(ShardedIndex::ShardFileName(path, s).c_str());
  }
}

TEST_F(ShardSnapshotTest, MismatchedShardCountIsRefused) {
  const std::string path = TempPath("mismatch.aujsnap");
  {
    Engine writer = MakeEngine(4, ShardBy::kRange);
    ASSERT_OK(writer.SaveIndex(path));
  }
  Engine reader = MakeEngine(2, ShardBy::kRange);
  Status loaded = reader.LoadIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);

  Engine hash_reader = MakeEngine(4, ShardBy::kHash);
  Status hash_loaded = hash_reader.LoadIndex(path);
  ASSERT_FALSE(hash_loaded.ok());
  EXPECT_EQ(hash_loaded.code(), StatusCode::kFailedPrecondition);

  std::remove(path.c_str());
  for (size_t s = 0; s < 4; ++s) {
    std::remove(ShardedIndex::ShardFileName(path, s).c_str());
  }
}

TEST_F(ShardSnapshotTest, TamperedShardFileIsTypedAtFirstProbe) {
  const std::string path = TempPath("tamper.aujsnap");
  {
    Engine writer = MakeEngine(2, ShardBy::kRange);
    ASSERT_OK(writer.SaveIndex(path));
  }
  // Truncate shard 1's file: the manifest still validates, the lazy
  // mount of shard 1 must fail typed — and only when probed.
  const std::string victim = ShardedIndex::ShardFileName(path, 1);
  Result<uint64_t> size = Env::Default()->GetFileSize(victim);
  ASSERT_OK(size.status());
  ASSERT_OK(Env::Default()->TruncateFile(victim, *size / 2));

  Engine reader = MakeEngine(2, ShardBy::kRange);
  ASSERT_OK(reader.LoadIndex(path));
  const ShardedIndex* sharded = reader.sharded_index();
  ASSERT_NE(sharded, nullptr);
  ASSERT_OK(sharded->ShardIndex(0).status());  // the undamaged shard mounts
  Result<std::shared_ptr<const PreparedIndex>> damaged =
      sharded->ShardIndex(1);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);

  // A full query (which scatters to every shard) surfaces the same
  // typed error instead of serving partial results.
  EngineSearchOptions options;
  options.theta = 0.5;
  Result<std::vector<UnifiedSearcher::Match>> scattered =
      reader.Search(records_[0], options);
  ASSERT_FALSE(scattered.ok());
  EXPECT_EQ(scattered.status().code(), StatusCode::kCorruption);

  std::remove(path.c_str());
  for (size_t s = 0; s < 2; ++s) {
    std::remove(ShardedIndex::ShardFileName(path, s).c_str());
  }
}

TEST_F(ShardSnapshotTest, MissingManifestIsTypedIoError) {
  Engine reader = MakeEngine(4, ShardBy::kRange);
  Status loaded = reader.LoadIndex(TempPath("no_such.aujsnap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.code(), StatusCode::kOk);
}

// ------------------------------------------------- spill-to-disk joins

class ShardSpillTest : public ShardJoinTest {};

TEST_F(ShardSpillTest, SpillingJoinMatchesInMemoryAndLeavesNoTempFiles) {
  const std::string dir = TempPath("spill_dir");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);

  Engine monolithic = MakeEngine(0);
  Result<JoinResult> mono = monolithic.Join("unified", {.theta = 0.7, .tau = 2});
  ASSERT_TRUE(mono.ok());
  ASSERT_GE(mono->pairs.size(), 3u);

  for (ShardBy by : {ShardBy::kRange, ShardBy::kHash}) {
    // An 8-byte budget spills after every buffered pair.
    Engine spilling = MakeEngine(4, by, 2, /*spill_budget=*/8, dir);
    Result<JoinResult> spilled =
        spilling.Join("unified", {.theta = 0.7, .tau = 2});
    ASSERT_TRUE(spilled.ok()) << ShardByName(by);
    EXPECT_EQ(spilled->pairs, mono->pairs) << ShardByName(by);
    EXPECT_GT(spilled->stats.spill_runs, 0u) << ShardByName(by);
    EXPECT_GT(spilled->stats.spill_pairs, 0u) << ShardByName(by);
    EXPECT_GT(spilled->stats.spill_bytes, 0u) << ShardByName(by);
    EXPECT_EQ(SpillLeaks(dir), std::vector<std::string>{})
        << ShardByName(by);
  }
  ::rmdir(dir.c_str());
}

TEST_F(ShardSpillTest, PartitionedJoinSpillsThroughTheSamePath) {
  const std::string dir = TempPath("spill_part_dir");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  Engine monolithic = MakeEngine(0);
  Result<JoinResult> mono =
      monolithic.Join("unified", {.theta = 0.7, .tau = 2});
  ASSERT_TRUE(mono.ok());

  // Partition mode (max_partition_records) with a spill budget: the
  // pipeline's collect-and-merge engages even though the plan is
  // contiguous.
  Engine spilling = EngineBuilder()
                        .SetKnowledge(world_.knowledge())
                        .SetMeasures("TJS")
                        .SetQ(2)
                        .SetMaxPartitionRecords(3)
                        .SetSpillBudgetBytes(8)
                        .SetSpillDir(dir)
                        .Build();
  spilling.SetRecords(records_);
  Result<JoinResult> spilled =
      spilling.Join("unified", {.theta = 0.7, .tau = 2});
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(spilled->pairs, mono->pairs);
  EXPECT_GT(spilled->stats.spill_runs, 0u);
  EXPECT_EQ(SpillLeaks(dir), std::vector<std::string>{});
  ::rmdir(dir.c_str());
}

TEST_F(ShardSpillTest, EveryKillPointSurfacesTypedErrorsAndNoLeaks) {
  const std::string dir = TempPath("spill_kill_dir");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  // The directory may survive an earlier (aborted) run; start clean so the
  // per-kill-point leak checks only see this sweep's files.
  for (const std::string& stale : SpillLeaks(dir)) {
    ::unlink((dir + "/" + stale).c_str());
  }

  Engine oracle = MakeEngine(0);
  Result<JoinResult> expected =
      oracle.Join("unified", {.theta = 0.7, .tau = 2});
  ASSERT_TRUE(expected.ok());

  bool completed = false;
  int kill = 0;
  for (; kill < 200 && !completed; ++kill) {
    FaultInjectionEnv fenv(Env::Default());
    Engine engine = EngineBuilder()
                        .SetKnowledge(world_.knowledge())
                        .SetMeasures("TJS")
                        .SetQ(2)
                        .SetThreads(2)
                        .SetNumShards(4)
                        .SetShardBy(ShardBy::kHash)
                        .SetSpillBudgetBytes(8)
                        .SetSpillDir(dir)
                        .SetEnv(&fenv)
                        .Build();
    engine.SetRecords(records_);
    fenv.FailAfterOps(kill);
    Result<JoinResult> join = engine.Join("unified", {.theta = 0.7, .tau = 2});
    bool fired = fenv.fault_fired();
    fenv.ClearFault();
    if (join.ok()) {
      // Either the fault hit after the last spill I/O or never fired:
      // the results must be the full, exact set.
      EXPECT_EQ(join->pairs, expected->pairs) << "kill " << kill;
      completed = !fired;
    } else {
      // A typed error, never UB — and the join must not half-emit.
      EXPECT_TRUE(fired) << "kill " << kill << ": "
                         << join.status().ToString();
      EXPECT_NE(join.status().code(), StatusCode::kOk);
    }
    // With a sticky fault armed, even the writer's best-effort cleanup
    // unlink fails — exactly like a process that died mid-spill. What
    // matters is what a *crash* leaves behind: spill files are never
    // published with a directory fsync, so SimulateCrash must erase
    // every unpublished creation and leave the directory empty.
    ASSERT_TRUE(fenv.SimulateCrash().ok()) << "kill " << kill;
    EXPECT_EQ(SpillLeaks(dir), std::vector<std::string>{})
        << "kill " << kill;
  }
  ASSERT_TRUE(completed) << "workload never completed within " << kill
                         << " kill points";
  EXPECT_GT(kill, 2) << "spill workload too short to be a meaningful sweep";
  ::rmdir(dir.c_str());
}

// ------------------------------------------------ concurrent serving

// Many threads race Search / TopK / BatchSearch against ONE sharded
// engine whose shards build lazily — the TSan job runs this under
// `ctest -R Shard` to certify the per-shard double-checked publication.
TEST(ShardConcurrencyTest, ConcurrentQueriesAgreeWithTheMonolithicOracle) {
  Figure1World world;
  std::vector<std::string> texts = {
      "coffee shop latte helsingki", "espresso cafe helsinki",
      "cake gateau",                 "apple cake",
      "latte espresso coffee",       "random words here",
      "espresso cafe helsinki",      "coffee shop latte helsinki",
  };
  std::vector<Record> records;
  for (size_t i = 0; i < texts.size(); ++i) {
    records.push_back(world.MakeRec(static_cast<uint32_t>(i), texts[i]));
  }

  EngineSearchOptions options;
  options.theta = 0.5;
  options.tau = 1;

  Engine monolithic = EngineBuilder()
                          .SetKnowledge(world.knowledge())
                          .SetMeasures("TJS")
                          .SetQ(2)
                          .Build();
  monolithic.SetRecords(records);
  std::vector<std::vector<UnifiedSearcher::Match>> oracle;
  for (const Record& query : records) {
    Result<std::vector<UnifiedSearcher::Match>> matches =
        monolithic.Search(query, options);
    ASSERT_OK(matches.status());
    oracle.push_back(*matches);
  }

  Engine sharded = EngineBuilder()
                       .SetKnowledge(world.knowledge())
                       .SetMeasures("TJS")
                       .SetQ(2)
                       .SetThreads(2)
                       .SetNumShards(4)
                       .SetShardBy(ShardBy::kHash)
                       .Build();
  sharded.SetRecords(records);

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t qi = static_cast<size_t>(t + round) % records.size();
        if (t % 2 == 0) {
          Result<std::vector<UnifiedSearcher::Match>> got =
              sharded.Search(records[qi], options);
          if (!got.ok()) {
            ++errors;
          } else if (*got != oracle[qi]) {
            ++mismatches;
          }
        } else {
          Result<std::vector<UnifiedSearcher::Match>> got =
              sharded.TopK(records[qi], 2, options);
          std::vector<UnifiedSearcher::Match> want = oracle[qi];
          if (want.size() > 2) want.resize(2);
          if (!got.ok()) {
            ++errors;
          } else if (*got != want) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace aujoin
